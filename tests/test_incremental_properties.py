"""Property-based checks of the incremental maintenance path.

Hypothesis generates random base contexts and random batches (with and
without eviction, with and without items new to the universe); on every
one of them the repaired artifacts must be *exactly* the ones a fresh
full mine of the extended context produces.  The comparison itself is
``update_mining(..., verify="oracle")``, which raises
:class:`~repro.errors.OracleMismatchError` the moment any repaired
family, generator map or lattice edge disagrees with the oracle — so
every property here is "the update runs and nothing raises", plus a few
explicit cross-checks on the fly.

The dedicated 63/64/65-item cases pin the packed-word boundary: one
uint64 word exactly full, one item short and one item over.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.lattice import IcebergLattice
from repro.data.context import TransactionDatabase
from repro.experiments.harness import mine_itemsets
from repro.incremental import SlidingWindow, update_mining

BASE_POOL = ["a", "b", "c", "d", "e", "f"]
# batches may introduce items the base universe never saw
BATCH_POOL = BASE_POOL + ["g", "h"]


def rows_strategy(pool, min_rows, max_rows):
    return st.lists(
        st.sets(st.sampled_from(pool), min_size=0, max_size=len(pool)),
        min_size=min_rows,
        max_size=max_rows,
    )


@st.composite
def update_cases(draw):
    base = draw(rows_strategy(BASE_POOL, 1, 8))
    batch = draw(rows_strategy(BATCH_POOL, 0, 4))
    minsup = draw(st.sampled_from([0.1, 0.25, 0.5]))
    # cap the eviction at the batch size so the context never shrinks
    # (a shrinking context is a documented fallback, tested separately)
    removed = draw(st.integers(0, min(len(base) - 1, len(batch))))
    return base, batch, minsup, removed


@settings(max_examples=60, deadline=None)
@given(update_cases())
def test_repaired_artifacts_equal_fresh_mine(case):
    base, batch, minsup, removed = case
    db = TransactionDatabase(base, item_order=BASE_POOL)
    mining = mine_itemsets(db, minsup)
    result = update_mining(
        mining,
        batch,
        removed_count=removed,
        damage_threshold=1.0,
        verify="oracle",
        lattice=IcebergLattice(mining.closed),
    )
    assert result.statistics.mode == "incremental"
    assert result.mining.database.n_objects == len(base) + len(batch) - removed
    # the repaired closed family backs both the generator family and the
    # repaired lattice (the store's identity requirement)
    assert result.mining.generator_family.closed_family is result.mining.closed
    if result.lattice is not None:
        assert result.lattice.closed_family is result.mining.closed


@settings(max_examples=25, deadline=None)
@given(update_cases())
def test_repaired_bases_equal_fresh_bases(case):
    base, batch, minsup, _ = case
    db = TransactionDatabase(base, item_order=BASE_POOL)
    result = update_mining(
        mine_itemsets(db, minsup), batch, damage_threshold=1.0, verify="oracle"
    )
    from repro.bases.registry import build_bases
    fresh = mine_itemsets(result.mining.database, minsup)
    repaired_bases = build_bases(result.mining.basis_context(minconf=0.6), ["dg", "all"])
    fresh_bases = build_bases(fresh.basis_context(minconf=0.6), ["dg", "all"])
    for name in ("dg", "all"):
        assert (
            sorted(map(str, repaired_bases[name].rules))
            == sorted(map(str, fresh_bases[name].rules))
        )


@settings(max_examples=15, deadline=None)
@given(
    n_items=st.sampled_from([63, 64, 65]),
    data=st.data(),
)
def test_word_boundary_universes(n_items, data):
    pool = [f"i{j:02d}" for j in range(n_items)]
    wide_rows = st.lists(
        st.sets(st.sampled_from(pool), min_size=1, max_size=12),
        min_size=2,
        max_size=6,
    )
    base = data.draw(wide_rows)
    batch = data.draw(
        st.lists(st.sets(st.sampled_from(pool), min_size=1, max_size=12),
                 min_size=1, max_size=3)
    )
    db = TransactionDatabase(base, item_order=pool)
    mining = mine_itemsets(db, 0.2)
    result = update_mining(
        mining,
        batch,
        damage_threshold=1.0,
        verify="oracle",
        lattice=IcebergLattice(mining.closed),
    )
    assert result.statistics.mode == "incremental"
    assert result.mining.database.n_items == n_items


@settings(max_examples=20, deadline=None)
@given(
    base=rows_strategy(BASE_POOL, 2, 6),
    batches=st.lists(rows_strategy(BATCH_POOL, 1, 3), min_size=1, max_size=3),
)
def test_sliding_window_stays_exact_over_many_steps(base, batches):
    window = SlidingWindow(
        TransactionDatabase(base, item_order=BASE_POOL),
        0.25,
        capacity=len(base) + 3,
        damage_threshold=1.0,
        verify="oracle",
        track_lattice=True,
    )
    for batch in batches:
        window.append(batch)
        assert len(window) <= window.capacity
        assert window.lattice is not None
        assert window.lattice.closed_family is window.closed
