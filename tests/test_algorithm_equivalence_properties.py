"""Property-based cross-checks between the mining algorithms.

Hypothesis generates arbitrary small contexts; on each of them the four
miners must be mutually consistent:

* Close, A-Close and CHARM return identical closed families;
* the closed family, expanded by the smallest-closed-superset rule,
  reproduces exactly the Apriori frequent family (Definition 1's
  "generating set" property);
* the closures of all Apriori itemsets are exactly the closed family.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import AClose, Apriori, Charm, Close, TransactionDatabase

ITEM_POOL = ["a", "b", "c", "d", "e"]


@st.composite
def mining_cases(draw):
    n_rows = draw(st.integers(min_value=1, max_value=10))
    rows = [
        draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=len(ITEM_POOL)))
        for _ in range(n_rows)
    ]
    minsup = draw(st.sampled_from([0.1, 0.2, 0.4, 0.6]))
    return TransactionDatabase(rows, item_order=ITEM_POOL), minsup


@settings(max_examples=80, deadline=None)
@given(mining_cases())
def test_close_aclose_charm_agree(case):
    db, minsup = case
    close_family = Close(minsup).mine(db).to_dict()
    assert AClose(minsup).mine(db).to_dict() == close_family
    assert Charm(minsup).mine(db).to_dict() == close_family


@settings(max_examples=80, deadline=None)
@given(mining_cases())
def test_closed_family_generates_frequent_family(case):
    db, minsup = case
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    assert closed.expand_to_frequent_itemsets().to_dict() == frequent.to_dict()


@settings(max_examples=80, deadline=None)
@given(mining_cases())
def test_closed_family_is_the_closure_image_of_frequent_family(case):
    db, minsup = case
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    assert {db.closure(itemset) for itemset in frequent} == set(closed)


@settings(max_examples=80, deadline=None)
@given(mining_cases())
def test_inferred_supports_match_database_supports(case):
    db, minsup = case
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    for itemset in frequent:
        assert closed.inferred_support_count(itemset) == db.support_count(itemset)
