"""Tests for the interestingness measures."""

from __future__ import annotations

import math

import pytest

from repro.analysis.metrics import (
    RuleMetrics,
    confidence,
    conviction,
    cosine,
    jaccard,
    leverage,
    lift,
    rule_metrics,
)
from repro.core.itemset import Itemset
from repro.core.rules import AssociationRule
from repro.errors import InvalidParameterError


class TestScalarMeasures:
    def test_confidence(self):
        assert confidence(0.4, 0.8) == pytest.approx(0.5)
        assert confidence(0.0, 0.0) == 0.0

    def test_confidence_rejects_non_probabilities(self):
        with pytest.raises(InvalidParameterError):
            confidence(1.4, 0.5)

    def test_lift_at_independence_is_one(self):
        assert lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_lift_above_and_below_independence(self):
        assert lift(0.4, 0.5, 0.5) > 1.0
        assert lift(0.1, 0.5, 0.5) < 1.0
        assert lift(0.1, 0.5, 0.0) == 0.0

    def test_leverage_at_independence_is_zero(self):
        assert leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)
        assert leverage(0.4, 0.5, 0.5) == pytest.approx(0.15)

    def test_conviction(self):
        assert conviction(0.4, 0.5, 0.5) == pytest.approx(0.5 / 0.2)
        assert conviction(0.25, 0.5, 0.5) == pytest.approx(1.0)
        assert math.isinf(conviction(0.5, 0.5, 0.7))

    def test_jaccard(self):
        assert jaccard(0.2, 0.5, 0.4) == pytest.approx(0.2 / 0.7)
        assert jaccard(0.0, 0.0, 0.0) == 0.0

    def test_cosine(self):
        assert cosine(0.2, 0.4, 0.4) == pytest.approx(0.5)
        assert cosine(0.2, 0.0, 0.4) == 0.0


class TestRuleMetrics:
    @pytest.fixture()
    def supports(self, toy_db):
        return lambda itemset: toy_db.support(itemset)

    def test_metrics_of_a_toy_rule(self, toy_db, supports):
        rule = AssociationRule(
            Itemset("c"), Itemset("a"), support=toy_db.support(Itemset("ac")),
            confidence=0.75,
        )
        metrics = RuleMetrics(rule, supports)
        assert metrics.confidence == pytest.approx(0.75)
        assert metrics.lift == pytest.approx(0.75 / 0.6)
        assert metrics.leverage == pytest.approx(0.6 - 0.8 * 0.6)
        assert metrics.jaccard == pytest.approx(0.6 / (0.8 + 0.6 - 0.6))

    def test_exact_rule_has_infinite_conviction(self, toy_db, supports):
        rule = AssociationRule(
            Itemset("a"), Itemset("c"), support=0.6, confidence=1.0
        )
        metrics = RuleMetrics(rule, supports)
        assert math.isinf(metrics.conviction)

    def test_as_dict_contains_every_measure(self, toy_db, supports):
        rule = AssociationRule(Itemset("b"), Itemset("c"), support=0.6, confidence=0.75)
        payload = RuleMetrics(rule, supports).as_dict()
        assert set(payload) == {
            "support",
            "confidence",
            "lift",
            "leverage",
            "conviction",
            "jaccard",
            "cosine",
        }

    def test_rule_metrics_batch(self, toy_db, supports):
        rules = [
            AssociationRule(Itemset("c"), Itemset("a"), support=0.6, confidence=0.75),
            AssociationRule(Itemset("a"), Itemset("c"), support=0.6, confidence=1.0),
        ]
        results = rule_metrics(rules, supports)
        assert len(results) == 2
        assert results[0].rule is rules[0]
