"""Hypothesis property suite for the columnar rule-set operations.

The :class:`~repro.core.rulearrays.RuleArrays` key-based set operations
(union / difference / intersection), the universe re-packing
(``project_to``) and the object round trip must agree with the
object-level :class:`~repro.core.rules.RuleSet` oracle on random rule
collections — including universes of 63/64/65 items, the widths that
straddle the packed uint64 word boundary, and operand pairs packed over
*different* universes (which exercises the automatic alignment path).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.itemset import Itemset
from repro.core.rulearrays import RuleArrays, sorted_universe
from repro.core.rules import AssociationRule, RuleSet

#: Universe sizes under test; 63/64/65 straddle the word boundary.
UNIVERSE_SIZES = (1, 2, 5, 63, 64, 65)

#: One shared label pool; a universe of size n is its prefix.
ITEM_POOL = tuple(f"i{position:02d}" for position in range(max(UNIVERSE_SIZES)))


def assert_same_arrays(left: RuleArrays, right: RuleArrays) -> None:
    """Byte-identical columns (same universe, same rows, same stats)."""
    assert left.universe == right.universe
    assert np.array_equal(left.antecedents.words, right.antecedents.words)
    assert np.array_equal(left.consequents.words, right.consequents.words)
    assert np.array_equal(left.support, right.support)
    assert np.array_equal(left.confidence, right.confidence)
    assert np.array_equal(left.support_count, right.support_count)


@st.composite
def rules_over(draw, universe: tuple[str, ...], max_rules: int = 12):
    """A random list of well-formed rules over a fixed universe.

    Rule sides are drawn as index sets so word-boundary bits (62..65)
    are as likely as any other; statistics are drawn from a small grid
    so that duplicate keys (same sides, same stats) occur and exercise
    the first-wins dedup semantics.
    """
    n_rules = draw(st.integers(min_value=0, max_value=max_rules))
    rules = []
    indices = st.integers(min_value=0, max_value=len(universe) - 1)
    for _ in range(n_rules):
        consequent = draw(st.sets(indices, min_size=1, max_size=4))
        antecedent = draw(
            st.sets(
                indices.filter(lambda i: i not in consequent),
                min_size=0,
                max_size=4,
            )
        )
        confidence = draw(st.sampled_from((0.25, 0.5, 0.75, 1.0)))
        support = draw(st.sampled_from((0.1, 0.2, 0.4))) * confidence
        count = draw(st.sampled_from((None, 1, 2, 7)))
        rules.append(
            AssociationRule(
                Itemset(universe[i] for i in antecedent),
                Itemset(universe[i] for i in consequent),
                support=support,
                confidence=confidence,
                support_count=count,
            )
        )
    return rules


@st.composite
def rule_pair_with_universes(draw):
    """Two rule lists over (possibly different) word-boundary universes."""
    size_a = draw(st.sampled_from(UNIVERSE_SIZES))
    size_b = draw(st.sampled_from(UNIVERSE_SIZES))
    universe_a = ITEM_POOL[:size_a]
    universe_b = ITEM_POOL[:size_b]
    return (
        universe_a,
        draw(rules_over(universe_a)),
        universe_b,
        draw(rules_over(universe_b)),
    )


def oracle(rules) -> RuleSet:
    """The object-level oracle (insertion-order, first-wins dedup)."""
    return RuleSet(rules)


@given(data=rule_pair_with_universes())
@settings(max_examples=80, deadline=None)
def test_union_matches_ruleset_oracle(data):
    universe_a, rules_a, universe_b, rules_b = data
    arrays = RuleArrays.from_rules(rules_a, universe_a).union(
        RuleArrays.from_rules(rules_b, universe_b)
    )
    expected = oracle(rules_a).union(oracle(rules_b))
    assert RuleSet.from_arrays(arrays).same_rules_and_statistics(expected)


@given(data=rule_pair_with_universes())
@settings(max_examples=80, deadline=None)
def test_difference_matches_ruleset_oracle(data):
    universe_a, rules_a, universe_b, rules_b = data
    arrays = RuleArrays.from_rules(rules_a, universe_a).difference(
        RuleArrays.from_rules(rules_b, universe_b)
    )
    expected = oracle(rules_a).difference(oracle(rules_b))
    assert RuleSet.from_arrays(arrays).same_rules_and_statistics(expected)


@given(data=rule_pair_with_universes())
@settings(max_examples=80, deadline=None)
def test_intersection_matches_ruleset_oracle(data):
    universe_a, rules_a, universe_b, rules_b = data
    arrays = RuleArrays.from_rules(rules_a, universe_a).intersection(
        RuleArrays.from_rules(rules_b, universe_b)
    )
    expected = oracle(rules_a).intersection(oracle(rules_b))
    assert RuleSet.from_arrays(arrays).same_rules_and_statistics(expected)


@pytest.mark.parametrize("size", UNIVERSE_SIZES)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_project_to_round_trip(size, data):
    """Projecting to a padded superset universe and back is lossless."""
    universe = ITEM_POOL[:size]
    rules = data.draw(rules_over(universe))
    arrays = RuleArrays.from_rules(rules, universe).deduplicated()
    # Pad with fresh items so the target width crosses a different word
    # count, then interleave canonically — bit positions all move.
    extra = tuple(f"z{position:02d}" for position in range(3))
    widened = sorted_universe(universe + extra)
    projected = arrays.project_to(widened)
    assert projected.universe == tuple(widened)
    back = projected.project_to(universe)
    assert_same_arrays(back, arrays)
    # The projection must not change any rule's identity or statistics.
    assert RuleSet.from_arrays(projected).same_rules_and_statistics(
        RuleSet.from_arrays(arrays)
    )


@pytest.mark.parametrize("size", UNIVERSE_SIZES)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_from_rules_object_round_trip(size, data):
    """Packing rules into columns and iterating them back is lossless."""
    universe = ITEM_POOL[:size]
    rules = data.draw(rules_over(universe))
    arrays = RuleArrays.from_rules(rules, universe)
    back = list(arrays.iter_rules())
    assert len(back) == len(rules)
    for original, rebuilt in zip(rules, back):
        assert original.key() == rebuilt.key()
        assert original.same_statistics(rebuilt)
    # Wrapping dedups exactly like RuleSet insertion (first wins).
    assert RuleSet.from_arrays(arrays).same_rules_and_statistics(oracle(rules))
