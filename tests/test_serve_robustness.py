"""Request-robustness behavior of the serving app and HTTP transport.

In-process (no forking): the per-request deadline, the bounded
in-flight gate with its ``Retry-After`` hint, the observability bypass
for ``/healthz``/``/metrics``, the transient-accept-error tolerance of
the server loop, and the new ``/metrics`` counters.  The multi-process
supervisor is exercised end-to-end in ``test_chaos.py``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.data.context import TransactionDatabase
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.serve import ServeApp, serve_in_thread
from repro.testing import clear_faults, set_faults, wait_until_healthy

FIG1 = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("robust") / "fig1.npz"
    db = TransactionDatabase(FIG1, name="fig1")
    mining = mine_itemsets(db, minsup=0.4)
    return save_artifacts(path, mining, build_rule_artifacts(mining, 0.7))


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    clear_faults()


class TestDeadline:
    def test_slow_request_exceeds_deadline(self, store_path):
        app = ServeApp(store_path, watch=False, request_timeout=0.01)
        set_faults("serve.request:slow:0.05")
        status, payload = app.handle("GET", "/bases/dg/rules")
        assert status == 503
        assert payload["error"]["code"] == "deadline_exceeded"
        status, metrics = app.handle("GET", "/metrics")
        assert metrics["deadline_exceeded_total"] == 1

    def test_healthz_bypasses_fault_seam_and_deadline(self, store_path):
        app = ServeApp(store_path, watch=False, request_timeout=0.01)
        set_faults("serve.request:slow:0.05")
        status, payload = app.handle("GET", "/healthz")
        assert status == 200 and payload["status"] == "ok"

    def test_no_deadline_by_default(self, store_path):
        app = ServeApp(store_path, watch=False)
        set_faults("serve.request:slow:0.02")
        status, _payload = app.handle("GET", "/bases/dg/rules")
        assert status == 200

    def test_fast_request_fits_deadline(self, store_path):
        app = ServeApp(store_path, watch=False, request_timeout=30.0)
        status, _payload = app.handle("GET", "/bases/dg/rules")
        assert status == 200


class TestInflightGate:
    def test_overload_rejected_immediately(self, store_path):
        app = ServeApp(store_path, watch=False, max_inflight=1)
        assert app._inflight.acquire(blocking=False)  # occupy the slot
        try:
            status, payload = app.handle("GET", "/bases/dg/rules")
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
        finally:
            app._inflight.release()
        status, _payload = app.handle("GET", "/bases/dg/rules")
        assert status == 200  # slot free again
        status, metrics = app.handle("GET", "/metrics")
        assert metrics["rejected_total"] == 1

    def test_observability_bypasses_gate(self, store_path):
        app = ServeApp(store_path, watch=False, max_inflight=1)
        assert app._inflight.acquire(blocking=False)
        try:
            for path in ("/healthz", "/metrics"):
                status, _payload = app.handle("GET", path)
                assert status == 200
        finally:
            app._inflight.release()

    def test_retry_after_header_on_the_wire(self, store_path):
        app = ServeApp(store_path, watch=False, max_inflight=1)
        server, _thread = serve_in_thread(app)
        host, port = server.server_address[:2]
        try:
            wait_until_healthy(host, port)
            assert app._inflight.acquire(blocking=False)
            try:
                connection = http.client.HTTPConnection(host, port, timeout=30)
                connection.request("GET", "/bases/dg/rules")
                response = connection.getresponse()
                response.read()
                assert response.status == 503
                assert response.getheader("Retry-After") == "1"
                connection.close()
            finally:
                app._inflight.release()
        finally:
            server.shutdown()
            server.server_close()


class TestAcceptErrors:
    def test_transient_accept_errors_do_not_kill_the_server(self, store_path):
        set_faults("serve.accept:error:3")
        app = ServeApp(store_path, watch=False)
        server, _thread = serve_in_thread(app)
        host, port = server.server_address[:2]
        try:
            # The injected OSErrors are swallowed by the accept loop;
            # queued connections are served once the budget is spent.
            payload = wait_until_healthy(host, port, timeout=30)
            assert payload["status"] == "ok"
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request("GET", "/bases")
            response = connection.getresponse()
            assert response.status == 200
            json.loads(response.read())
            connection.close()
        finally:
            server.shutdown()
            server.server_close()


class TestMetricsSurface:
    def test_new_counters_present_and_zero(self, store_path):
        app = ServeApp(store_path, watch=False)
        _status, metrics = app.handle("GET", "/metrics")
        for key in (
            "rejected_total",
            "deadline_exceeded_total",
            "integrity_failures",
        ):
            assert metrics[key] == 0

    def test_extra_metrics_merged(self, store_path):
        app = ServeApp(
            store_path,
            watch=False,
            extra_metrics=lambda: {"worker": 7, "worker_restarts_total": 2},
        )
        _status, metrics = app.handle("GET", "/metrics")
        assert metrics["worker"] == 7
        assert metrics["worker_restarts_total"] == 2
