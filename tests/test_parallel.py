"""The parallel execution layer: executor semantics and byte-identity.

The determinism contract of :mod:`repro.core.parallel` is that a worker
count only changes *where* block computations run, never what they
compute: any ``workers`` value must produce output byte-identical to the
serial oracle.  This suite pins that contract at every level the seam
touches — the executor primitives themselves, the packed containment /
Hasse kernels (hypothesis-checked against the dense numpy oracle,
including uint64 word-boundary widths), the closure engine, the lattices
and all nine registered rule bases — plus the thread-safety of the
shared caches and the CSR-only ``retain_containment=False`` store mode.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import TransactionDatabase
from repro.bases.registry import registered_names
from repro.core.bitmatrix import BitMatrix, packed_containment
from repro.core.families import ClosedItemsetFamily
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice
from repro.core.luxenburger import LuxenburgerBasis
from repro.core.parallel import (
    WORKERS_ENV_VAR,
    KernelExecutor,
    get_executor,
    resolve_workers,
    shard_spans,
)
from repro.data.synthetic import make_rule_dense_family, make_star_closed_family
from repro.engine import make_engine
from repro.errors import InvalidParameterError
from repro.experiments.harness import build_rule_artifacts, mine_itemsets
from repro.store import load_run, save_run

WORKER_COUNTS = (1, 2, 8)

ALL_BASES = ",".join(sorted(registered_names()))


# ----------------------------------------------------------------------
# Executor primitives
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(None) == 3

    def test_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self, monkeypatch):
        import os

        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_workers(-1)

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(InvalidParameterError):
            resolve_workers(None)


class TestKernelExecutor:
    def test_serial_backend_below_two_workers(self):
        assert KernelExecutor(1).is_serial
        assert not KernelExecutor(2).is_serial

    def test_nonpositive_workers_raise(self):
        with pytest.raises(InvalidParameterError):
            KernelExecutor(0)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_map_preserves_submission_order(self, workers):
        executor = get_executor(workers)
        items = list(range(97))
        assert executor.map(lambda x: x * x, items) == [x * x for x in items]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_imap_preserves_submission_order(self, workers):
        executor = get_executor(workers)
        items = list(range(53))
        assert list(executor.imap(lambda x: -x, items)) == [-x for x in items]

    def test_imap_is_lazy_with_bounded_prefetch(self):
        executor = get_executor(2)
        produced: list[int] = []

        def work(x: int) -> int:
            produced.append(x)
            return x

        iterator = executor.imap(work, range(100), prefetch=3)
        first = next(iterator)
        assert first == 0
        # At most prefetch results may have been computed ahead of the
        # single one consumed (plus one in-flight submission).
        assert len(produced) <= 1 + 3 + 1

    def test_imap_rejects_nonpositive_prefetch(self):
        with pytest.raises(InvalidParameterError):
            list(get_executor(2).imap(lambda x: x, [1], prefetch=0))

    def test_shard_size_spreads_rows(self):
        executor = KernelExecutor(4)
        size = executor.shard_size(1000)
        assert 1 <= size <= 1000
        assert len(shard_spans(1000, size)) >= 4

    def test_shard_spans_partition(self):
        spans = shard_spans(10, 3)
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]
        with pytest.raises(InvalidParameterError):
            shard_spans(10, 0)

    def test_get_executor_caches_per_count(self):
        assert get_executor(2) is get_executor(2)
        assert get_executor(1) is not get_executor(2)

    def test_get_executor_passes_instances_through(self):
        executor = get_executor(2)
        assert get_executor(executor) is executor


# ----------------------------------------------------------------------
# Sharded packed containment == dense numpy (hypothesis property)
# ----------------------------------------------------------------------
@st.composite
def distinct_bool_rows(draw):
    """A (n, m) bool matrix with pairwise-distinct rows, m around word edges."""
    n_cols = draw(st.integers(min_value=1, max_value=130))
    n_rows = draw(st.integers(min_value=1, max_value=24))
    row_masks = draw(
        st.sets(
            st.integers(min_value=0, max_value=(1 << n_cols) - 1),
            min_size=1,
            max_size=n_rows,
        )
    )
    presence = np.zeros((len(row_masks), n_cols), dtype=bool)
    for row, mask in enumerate(sorted(row_masks)):
        for col in range(n_cols):
            if mask >> col & 1:
                presence[row, col] = True
    return presence


@settings(max_examples=60, deadline=None)
@given(presence=distinct_bool_rows(), workers=st.sampled_from([1, 2, 5]))
def test_sharded_containment_matches_dense_numpy(presence, workers):
    masks = BitMatrix.from_dense(presence).words
    expected = np.all(~presence[:, None, :] | presence[None, :, :], axis=2)
    np.fill_diagonal(expected, False)
    result = packed_containment(masks, executor=get_executor(workers))
    assert np.array_equal(result.to_dense(), expected)


# ----------------------------------------------------------------------
# Lattices, Hasse edges and all nine bases: workers in {1, 2, 8}
# ----------------------------------------------------------------------
def chain_family(n_items: int) -> ClosedItemsetFamily:
    """A prefix-chain closed family over exactly ``n_items`` items.

    Sized to probe the uint64 word boundaries: the top member packs into
    ``ceil(n_items / 64)`` words with ``n_items % 64`` pad bits.
    """
    supports = {
        Itemset(range(size)): n_items + 1 - size for size in range(1, n_items + 1)
    }
    return ClosedItemsetFamily(supports, n_objects=n_items + 1, minsup_count=1)


@pytest.mark.parametrize("n_items", [63, 64, 65])
@pytest.mark.parametrize("strategy", ["packed", "dense"])
def test_lattice_workers_byte_identical_word_boundaries(n_items, strategy):
    family = chain_family(n_items)
    serial = IcebergLattice(family, strategy=strategy, workers=1)
    for workers in WORKER_COUNTS[1:]:
        lattice = IcebergLattice(family, strategy=strategy, workers=workers)
        for side in (0, 1):
            assert np.array_equal(
                lattice.hasse_edge_indices()[side], serial.hasse_edge_indices()[side]
            )
            assert np.array_equal(
                lattice.containment_indices()[side],
                serial.containment_indices()[side],
            )
        assert (
            lattice.order_core.packed_containment_matrix().words.tobytes()
            == serial.order_core.packed_containment_matrix().words.tobytes()
        )


def test_lattice_workers_byte_identical_star_family():
    family = make_star_closed_family(402, n_objects=60)
    serial = IcebergLattice(family, strategy="packed", workers=1)
    assert serial.edge_count() == 2 * 400
    for workers in WORKER_COUNTS[1:]:
        lattice = IcebergLattice(family, strategy="packed", workers=workers)
        for side in (0, 1):
            assert np.array_equal(
                lattice.hasse_edge_indices()[side], serial.hasse_edge_indices()[side]
            )


def assert_rule_arrays_identical(result, oracle, label):
    assert (
        result.antecedents.words.tobytes() == oracle.antecedents.words.tobytes()
    ), label
    assert (
        result.consequents.words.tobytes() == oracle.consequents.words.tobytes()
    ), label
    assert np.array_equal(result.support, oracle.support), label
    assert np.array_equal(result.confidence, oracle.confidence), label
    assert np.array_equal(result.support_count, oracle.support_count), label
    assert result.universe == oracle.universe, label


def assert_artifacts_identical(mining, minconf):
    serial = build_rule_artifacts(mining, minconf, bases=ALL_BASES, workers=1)
    assert len(serial.bases) == 9
    for workers in WORKER_COUNTS[1:]:
        parallel = build_rule_artifacts(
            mining, minconf, bases=ALL_BASES, workers=workers
        )
        for name, built in serial.bases.items():
            assert_rule_arrays_identical(
                parallel.bases[name].rule_arrays,
                built.rule_arrays,
                f"{name} workers={workers}",
            )


def test_all_nine_bases_byte_identical_toy(toy_db):
    assert_artifacts_identical(mine_itemsets(toy_db, 0.4), 0.5)


def test_all_nine_bases_byte_identical_random(random_db):
    assert_artifacts_identical(mine_itemsets(random_db, 0.2), 0.3)


@pytest.mark.parametrize("reduced", [True, False])
def test_rule_dense_emitters_byte_identical(reduced):
    from repro.core.informative import InformativeBasis

    closed, generators = make_rule_dense_family(40, 2)
    lattice = IcebergLattice(closed, strategy="packed")
    # Tiny forced blocks so every worker count really streams many blocks.
    serial_lux = LuxenburgerBasis(
        closed, 0.0, transitive_reduction=reduced, lattice=lattice, block_rows=17
    )
    serial_inf = InformativeBasis(
        generators, 0.0, reduced=reduced, lattice=lattice, block_rows=17
    )
    for workers in WORKER_COUNTS[1:]:
        lux = LuxenburgerBasis(
            closed,
            0.0,
            transitive_reduction=reduced,
            lattice=lattice,
            block_rows=17,
            workers=workers,
        )
        inf = InformativeBasis(
            generators,
            0.0,
            reduced=reduced,
            lattice=lattice,
            block_rows=17,
            workers=workers,
        )
        assert_rule_arrays_identical(
            lux.rules.to_arrays(), serial_lux.rules.to_arrays(), f"lux w={workers}"
        )
        assert_rule_arrays_identical(
            inf.rules.to_arrays(), serial_inf.rules.to_arrays(), f"inf w={workers}"
        )


@pytest.mark.parametrize("reduced", [True, False])
def test_streamed_emitters_are_duplicate_free(reduced):
    """The ``assume_unique`` contract of the streamed CSR emitters.

    Both bases skip the ``RuleSet.from_arrays`` dedup pass because their
    (antecedent, consequent) keys are unique by construction; this pins
    that claim — ``deduplicated()`` returning the same object means the
    key sort found nothing to drop.
    """
    from repro.core.informative import InformativeBasis

    closed, generators = make_rule_dense_family(40, 3)
    lattice = IcebergLattice(closed, strategy="packed")
    for basis in (
        LuxenburgerBasis(
            closed, 0.0, transitive_reduction=reduced, lattice=lattice, block_rows=17
        ),
        InformativeBasis(
            generators, 0.0, reduced=reduced, lattice=lattice, block_rows=17
        ),
    ):
        arrays = basis.rules.to_arrays()
        assert arrays.deduplicated() is arrays


def test_workers_env_var_applies(toy_db, monkeypatch):
    mining = mine_itemsets(toy_db, 0.4)
    monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
    serial = build_rule_artifacts(mining, 0.5, bases=ALL_BASES)
    monkeypatch.setenv(WORKERS_ENV_VAR, "2")
    enveloped = build_rule_artifacts(mining, 0.5, bases=ALL_BASES)
    for name, built in serial.bases.items():
        assert_rule_arrays_identical(
            enveloped.bases[name].rule_arrays, built.rule_arrays, name
        )


# ----------------------------------------------------------------------
# Closure engine: sharded batches and cache thread-safety
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", WORKER_COUNTS[1:])
def test_engine_parallel_closures_identical(toy_db, workers):
    from itertools import combinations

    candidates = [
        frozenset(combo)
        for size in range(0, 4)
        for combo in combinations(toy_db.items, size)
    ]
    serial = make_engine(toy_db, "numpy", workers=1)
    parallel = make_engine(toy_db, "numpy", workers=workers)
    assert serial.closures_and_supports(candidates) == parallel.closures_and_supports(
        candidates
    )
    assert serial.supports(candidates) == parallel.supports(candidates)
    assert serial.extents(candidates) == parallel.extents(candidates)


def test_engine_cache_is_thread_safe(toy_db):
    from itertools import combinations

    engine = make_engine(toy_db, "numpy", cache_size=4, workers=2)
    candidates = [
        frozenset(combo)
        for size in range(1, 4)
        for combo in combinations(toy_db.items, size)
    ]
    oracle = dict(
        zip(candidates, make_engine(toy_db, "numpy").closures_and_supports(candidates))
    )
    errors: list[BaseException] = []

    def hammer() -> None:
        try:
            for _ in range(20):
                for candidate, pair in zip(
                    candidates, engine.closures_and_supports(candidates)
                ):
                    assert pair == oracle[candidate]
                engine.cache_info()
        except BaseException as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


def test_family_closure_index_is_thread_safe(toy_closed):
    # Fresh family so the lazily built index races on first use.
    family = ClosedItemsetFamily(
        toy_closed.to_dict(),
        n_objects=toy_closed.n_objects,
        minsup_count=toy_closed.minsup_count,
    )
    targets = [member for member in family.itemsets()]
    oracle = {member: toy_closed.closure_of(member) for member in targets}
    errors: list[BaseException] = []
    barrier = threading.Barrier(8)

    def probe() -> None:
        try:
            barrier.wait()
            for _ in range(50):
                for member in targets:
                    assert family.closure_of(member) == oracle[member]
        except BaseException as exc:  # pragma: no cover - only on failure
            errors.append(exc)

    threads = [threading.Thread(target=probe) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors


# ----------------------------------------------------------------------
# CSR-only edge store mode (retain_containment=False)
# ----------------------------------------------------------------------
def test_csr_only_core_answers_like_full(toy_closed):
    full = IcebergLattice(toy_closed, strategy="packed")
    lean = IcebergLattice(toy_closed, strategy="packed", retain_containment=False)
    assert full.order_core.retains_containment
    assert not lean.order_core.retains_containment
    for side in (0, 1):
        assert np.array_equal(
            lean.hasse_edge_indices()[side], full.hasse_edge_indices()[side]
        )
        assert np.array_equal(
            lean.containment_indices()[side], full.containment_indices()[side]
        )
    members = full.members
    for smaller in members:
        assert lean.proper_supersets(smaller) == full.proper_supersets(smaller)
        for larger in members:
            assert lean.is_ancestor(smaller, larger) == full.is_ancestor(
                smaller, larger
            )
            assert lean.confidence_between(smaller, larger) == full.confidence_between(
                smaller, larger
            )
    assert (
        lean.order_core.packed_containment_matrix().words.tobytes()
        == full.order_core.packed_containment_matrix().words.tobytes()
    )


def test_store_load_csr_only(tmp_path, toy_closed):
    lattice = IcebergLattice(toy_closed, strategy="packed")
    path = save_run(tmp_path / "run.npz", closed=toy_closed, lattice=lattice)
    lean = load_run(path, retain_containment=False).lattice
    full = load_run(path).lattice
    assert full.order_core.retains_containment
    assert not lean.order_core.retains_containment
    for side in (0, 1):
        assert np.array_equal(
            lean.hasse_edge_indices()[side], lattice.hasse_edge_indices()[side]
        )
    for smaller in lattice.members:
        for larger in lattice.members:
            assert lean.is_ancestor(smaller, larger) == lattice.is_ancestor(
                smaller, larger
            )
    # The reduced Luxenburger rebuild of the serve warm start only needs
    # the Hasse edges — it must work on the CSR-only lattice.
    rebuilt = LuxenburgerBasis(
        lean.closed_family, minconf=0.0, transitive_reduction=True, lattice=lean
    )
    oracle = LuxenburgerBasis(
        toy_closed, minconf=0.0, transitive_reduction=True, lattice=lattice
    )
    assert_rule_arrays_identical(
        rebuilt.rules.to_arrays(), oracle.rules.to_arrays(), "csr-only serve rebuild"
    )


def test_serve_app_defaults_to_csr_only(tmp_path, toy_db):
    from repro.experiments.harness import save_artifacts
    from repro.serve import ServeApp

    mining = mine_itemsets(toy_db, 0.4)
    artifacts = build_rule_artifacts(mining, 0.5)
    path = save_artifacts(tmp_path / "store.npz", mining, artifacts)
    app = ServeApp(path, watch=False)
    derivation = app.loaded.derivation
    assert derivation is not None
    retained = ServeApp(path, watch=False, retain_containment=True)
    status, lean_answer = app.handle("GET", "/bases", {})
    status_r, full_answer = retained.handle("GET", "/bases", {})
    assert (status, lean_answer) == (status_r, full_answer)
