"""Tests of the incremental mining layer (:mod:`repro.incremental`).

Four layers, mirroring the package: the extended-context constructor
and its warm engine hand-off, the delta maintenance of the mined
families (always checked against the fresh-mine oracle), the
Hasse-diagram repair of the iceberg lattice (byte-identical to a
from-scratch build), and the store/CLI/serve wiring that carries a
repaired generation all the way to a watching daemon.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.families import ClosedItemsetFamily
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice
from repro.data.context import TransactionDatabase
from repro.data.synthetic import make_rule_dense_context
from repro.errors import InvalidParameterError, OracleMismatchError
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.incremental import (
    SlidingWindow,
    repair_lattice,
    update_mining,
)
from repro.incremental.store import update_store

from conftest import make_random_db

TOY = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


def random_batch(seed: int, size: int, n_items: int = 8, max_row: int = 6):
    """Batch rows over the same item pool as :func:`make_random_db`."""
    import random

    rng = random.Random(seed ^ 0x5EED)
    return [
        frozenset(f"i{rng.randrange(n_items)}" for _ in range(rng.randint(1, max_row)))
        for _ in range(size)
    ]


def assert_matches_fresh_mine(result, engine=None):
    """The strong form of the oracle: every artifact equals a fresh mine."""
    fresh = mine_itemsets(
        result.mining.database, result.mining.minsup, engine=engine
    )
    assert result.mining.frequent.same_contents(fresh.frequent)
    assert result.mining.closed.same_contents(fresh.closed)
    assert result.mining.generators_by_closure == fresh.generators_by_closure


# ----------------------------------------------------------------------
# Extended contexts and warm engines
# ----------------------------------------------------------------------
class TestExtendedDatabase:
    def test_prefix_and_ids_are_shared(self, toy_db):
        extended = toy_db.extended([["a", "b"], ["c", "f"]])
        assert extended.n_objects == toy_db.n_objects + 2
        assert extended.items[: toy_db.n_items] == toy_db.items
        assert "f" in extended.items
        assert np.array_equal(
            extended.matrix[: toy_db.n_objects, : toy_db.n_items], toy_db.matrix
        )
        assert extended.object_ids[: toy_db.n_objects] == toy_db.object_ids
        assert toy_db.n_objects == 5  # the original is untouched

    def test_new_items_are_appended_sorted(self, toy_db):
        extended = toy_db.extended([["z", "f"], ["g"]])
        assert extended.items == toy_db.items + ("f", "g", "z")

    def test_supports_match_a_fresh_parse(self, toy_db):
        batch = [["a", "c"], ["b", "e", "f"]]
        extended = toy_db.extended(batch)
        fresh = TransactionDatabase(list(toy_db.transactions()) + batch)
        for item in extended.items:
            probe = Itemset([item])
            assert extended.support_count(probe) == fresh.support_count(probe)

    @pytest.mark.parametrize("backend", ["numpy", "bitset"])
    def test_warm_engine_equals_cold_engine(self, toy_db, backend):
        warm_src = toy_db.engine(backend)
        assert warm_src is not None  # materialise before extending
        extended = toy_db.extended([["a", "b", "f"], ["c"]])
        warm = extended.engine(backend)
        cold = type(warm)(extended)
        probes = [
            Itemset(p) for p in ([], ["a"], ["c", "e"], ["f"], ["a", "b", "c"])
        ]
        for probe in probes:
            assert warm.closure(probe) == cold.closure(probe)
            assert warm.support_count(probe) == cold.support_count(probe)

    def test_object_id_length_is_validated(self, toy_db):
        with pytest.raises(InvalidParameterError):
            toy_db.extended([["a"]], object_ids=[1, 2, 3])


# ----------------------------------------------------------------------
# Family / generator maintenance
# ----------------------------------------------------------------------
class TestUpdateMining:
    def test_toy_append_is_incremental_and_exact(self, toy_db):
        mining = mine_itemsets(toy_db, 0.4)
        result = update_mining(
            mining, [["a", "b", "c", "e"]], damage_threshold=1.0, verify="oracle"
        )
        assert result.statistics.mode == "incremental"
        assert result.statistics.n_appended == 1
        assert result.statistics.fallback_reason is None
        assert 0 < result.statistics.damaged_closed <= result.statistics.old_closed
        assert_matches_fresh_mine(result)

    def test_empty_batch_is_a_no_op(self, toy_db):
        mining = mine_itemsets(toy_db, 0.4)
        result = update_mining(mining, [], damage_threshold=1.0, verify="oracle")
        assert result.statistics.mode == "incremental"
        assert result.statistics.damaged_closed == 0
        assert result.mining.frequent.same_contents(mining.frequent)
        assert result.mining.closed.same_contents(mining.closed)

    def test_batch_with_new_universe_items(self, toy_db):
        mining = mine_itemsets(toy_db, 0.3)
        batch = [["a", "f", "g"], ["f", "g"], ["f", "g", "c"]]
        result = update_mining(mining, batch, damage_threshold=1.0, verify="oracle")
        assert result.statistics.mode == "incremental"
        assert result.statistics.new_frequent > 0
        assert_matches_fresh_mine(result)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_contexts_match_oracle(self, seed):
        db = make_random_db(seed)
        mining = mine_itemsets(db, 0.15)
        batch = random_batch(seed, 4)
        result = update_mining(mining, batch, damage_threshold=1.0, verify="oracle")
        assert result.statistics.mode == "incremental"
        assert_matches_fresh_mine(result)

    @pytest.mark.parametrize("backend", ["numpy", "bitset"])
    def test_both_engines_agree(self, backend):
        db = make_random_db(7)
        mining = mine_itemsets(db, 0.2, engine=backend)
        result = update_mining(
            mining,
            random_batch(7, 3),
            damage_threshold=1.0,
            verify="oracle",
            engine=backend,
        )
        assert result.statistics.mode == "incremental"

    def test_removal_keeps_exactness(self):
        db = make_random_db(11)
        mining = mine_itemsets(db, 0.2)
        result = update_mining(
            mining,
            random_batch(11, 3),
            removed_count=3,
            damage_threshold=1.0,
            verify="oracle",
        )
        assert result.statistics.n_removed == 3
        assert result.mining.database.n_objects == db.n_objects
        assert_matches_fresh_mine(result)

    def test_rule_dense_context(self):
        db = make_rule_dense_context(chain_length=10, generator_multiplicity=2)
        mining = mine_itemsets(db, 0.5)
        batch = [list(db.transaction(db.n_objects - 2).as_frozenset())]
        result = update_mining(mining, batch, damage_threshold=1.0, verify="oracle")
        assert result.statistics.mode == "incremental"
        assert_matches_fresh_mine(result)

    def test_damage_threshold_triggers_fallback(self, toy_db):
        mining = mine_itemsets(toy_db, 0.4)
        result = update_mining(
            mining, [["a", "b", "c", "e"]], damage_threshold=0.0, verify="oracle"
        )
        assert result.statistics.mode == "remine"
        assert "damage ratio" in result.statistics.fallback_reason
        assert_matches_fresh_mine(result)

    def test_shrinking_context_falls_back(self, toy_db):
        mining = mine_itemsets(toy_db, 0.4)
        result = update_mining(
            mining, [["a", "c"]], removed_count=3, damage_threshold=1.0,
            verify="oracle",
        )
        assert result.statistics.mode == "remine"
        assert_matches_fresh_mine(result)

    def test_parameter_validation(self, toy_db):
        mining = mine_itemsets(toy_db, 0.4)
        with pytest.raises(InvalidParameterError):
            update_mining(mining, [], damage_threshold=1.5)
        with pytest.raises(InvalidParameterError):
            update_mining(mining, [], verify="sometimes")
        with pytest.raises(InvalidParameterError):
            update_mining(mining, [], removed_count=6)

    def test_statistics_as_dict_round_trips_to_json(self, toy_db):
        import json

        mining = mine_itemsets(toy_db, 0.4)
        result = update_mining(mining, [["b", "e"]], damage_threshold=1.0)
        payload = json.loads(json.dumps(result.statistics.as_dict()))
        assert payload["mode"] == "incremental"
        assert payload["n_appended"] == 1
        assert payload["wall_clock_seconds"] >= 0.0

    def test_oracle_mismatch_is_raised_on_corrupted_input(self, toy_db):
        """A stale mining result (wrong supports) must not verify."""
        mining = mine_itemsets(toy_db, 0.4)
        doctored = {
            itemset: count + 1
            for itemset, count in mining.frequent.to_dict().items()
        }
        from repro.algorithms.base import MiningRun
        from repro.core.families import ItemsetFamily
        from repro.experiments.harness import ItemsetMiningResult

        broken = ItemsetMiningResult(
            database=toy_db,
            minsup=0.4,
            apriori_run=MiningRun(
                algorithm="Apriori",
                database_name=toy_db.name,
                minsup=0.4,
                family=ItemsetFamily(
                    doctored, toy_db.n_objects,
                    minsup_count=mining.frequent.minsup_count,
                ),
            ),
            close_run=mining.close_run,
            generators_by_closure=mining.generators_by_closure,
        )
        with pytest.raises(OracleMismatchError):
            update_mining(
                broken, [["a", "c"]], damage_threshold=1.0, verify="oracle"
            )


# ----------------------------------------------------------------------
# Lattice repair
# ----------------------------------------------------------------------
class TestLatticeRepair:
    def repaired_and_fresh(self, db, minsup, batch, removed_count=0):
        mining = mine_itemsets(db, minsup)
        old_lattice = IcebergLattice(mining.closed)
        result = update_mining(
            mining,
            batch,
            removed_count=removed_count,
            damage_threshold=1.0,
            verify="oracle",
            lattice=old_lattice,
        )
        assert result.statistics.mode == "incremental"
        assert result.lattice is not None
        fresh = IcebergLattice(result.mining.closed)
        return result.lattice, fresh

    def assert_identical(self, repaired, fresh):
        r_rows, r_cols = repaired.hasse_edge_indices()
        f_rows, f_cols = fresh.hasse_edge_indices()
        assert np.array_equal(r_rows, f_rows)
        assert np.array_equal(r_cols, f_cols)
        assert repaired.members == fresh.members
        assert repaired.order_core.packed_containment_matrix().equals(
            fresh.order_core.packed_containment_matrix()
        )
        assert repaired.is_transitive_reduction()

    def test_append_repair_is_byte_identical(self, toy_db):
        repaired, fresh = self.repaired_and_fresh(
            toy_db, 0.4, [["a", "b", "c", "e"], ["a", "c", "f"]]
        )
        self.assert_identical(repaired, fresh)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_repairs_are_byte_identical(self, seed):
        repaired, fresh = self.repaired_and_fresh(
            make_random_db(seed), 0.15, random_batch(seed, 5)
        )
        self.assert_identical(repaired, fresh)

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_repair_with_removed_nodes(self, seed):
        """Equal-size eviction exercises the removed-node bridge pass."""
        repaired, fresh = self.repaired_and_fresh(
            make_random_db(seed), 0.2, random_batch(seed, 4), removed_count=4
        )
        self.assert_identical(repaired, fresh)

    def test_repair_from_empty_old_lattice(self):
        """Degenerate old family: the repair degrades to a fresh build."""
        db = TransactionDatabase([["a"], ["b"]], name="tiny")
        mining = mine_itemsets(db, 1.0)  # nothing frequent but the closure of {}
        old_lattice = IcebergLattice(mining.closed)
        closed_new = mine_itemsets(db.extended([["a", "b"]]), 0.3).closed
        repaired = repair_lattice(old_lattice, closed_new)
        fresh = IcebergLattice(closed_new)
        assert repaired.members == fresh.members
        assert repaired.edge_count() == fresh.edge_count()


# ----------------------------------------------------------------------
# Sliding window
# ----------------------------------------------------------------------
class TestSlidingWindow:
    def test_streaming_stays_exact_under_churn(self):
        db = make_random_db(3, n_objects=20)
        window = SlidingWindow(
            db, 0.2, capacity=24, damage_threshold=1.0, verify="oracle",
            track_lattice=True,
        )
        for step in range(6):
            result = window.append(random_batch(step, 3))
            assert len(window) <= 24
            assert window.mining is result.mining
            assert window.lattice is not None
            assert window.lattice.closed_family is window.closed
        assert len(window) == 24  # at capacity: every append now evicts

    def test_window_keeps_newest_transactions(self):
        window = SlidingWindow(
            TransactionDatabase([["a"], ["b"]], name="w"), 0.5, capacity=2,
            damage_threshold=1.0,
        )
        window.append([["c", "d"]])
        assert [set(t) for t in window.transactions()] == [{"b"}, {"c", "d"}]

    def test_validation(self, toy_db):
        with pytest.raises(InvalidParameterError):
            SlidingWindow(toy_db, 0.4, capacity=0)
        with pytest.raises(InvalidParameterError):
            SlidingWindow(toy_db, 0.4, capacity=3)
        window = SlidingWindow(toy_db, 0.4, capacity=6)
        with pytest.raises(InvalidParameterError):
            window.append([["a"]] * 7)


# ----------------------------------------------------------------------
# Store and serve wiring
# ----------------------------------------------------------------------
def build_store(path, minsup=0.4, minconf=0.7):
    db = TransactionDatabase(TOY, name="toy")
    mining = mine_itemsets(db, minsup)
    artifacts = build_rule_artifacts(mining, minconf=minconf)
    return save_artifacts(path, mining, artifacts)


class TestUpdateStore:
    def test_update_rewrites_every_section_exactly(self, tmp_path):
        from repro import store

        path = build_store(tmp_path / "run.npz")
        batch = [["a", "b", "c", "e"], ["b", "c", "e"]]
        _, result = update_store(
            path, batch, damage_threshold=1.0, verify="oracle"
        )
        assert result.statistics.mode == "incremental"

        reloaded = store.load_run(path)
        fresh_db = TransactionDatabase(TOY + batch, name="toy")
        fresh = mine_itemsets(fresh_db, 0.4)
        assert reloaded.frequent.same_contents(fresh.frequent)
        assert reloaded.closed.same_contents(fresh.closed)
        assert reloaded.database.n_objects == 7
        assert reloaded.minsup == 0.4 and reloaded.minconf == 0.7

        fresh_artifacts = build_rule_artifacts(fresh, minconf=0.7)
        assert set(reloaded.rule_arrays) == set(fresh_artifacts.names)
        for name, built in fresh_artifacts.bases.items():
            assert len(reloaded.rule_arrays[name]) == len(built.rules)

    def test_update_is_repeatable(self, tmp_path):
        path = build_store(tmp_path / "run.npz")
        for step in range(3):
            _, result = update_store(
                path, [["a", "c", "d"]], damage_threshold=1.0, verify="oracle"
            )
            assert result.mining.database.n_objects == 6 + step

    def test_windowed_update_evicts_oldest(self, tmp_path):
        from repro import store

        path = build_store(tmp_path / "run.npz")
        update_store(
            path, [["a", "b"], ["b", "c"]], window=5, damage_threshold=1.0,
            verify="oracle",
        )
        reloaded = store.load_run(path)
        assert reloaded.database.n_objects == 5
        rows = [set(t) for t in reloaded.database.transactions()]
        assert rows[-2:] == [{"a", "b"}, {"b", "c"}]

    def test_store_without_context_is_rejected(self, tmp_path):
        from repro.errors import StoreFormatError

        db = TransactionDatabase(TOY, name="toy")
        mining = mine_itemsets(db, 0.4)
        artifacts = build_rule_artifacts(mining, minconf=0.7)
        path = save_artifacts(
            tmp_path / "bare.npz", mining, artifacts, include_context=False
        )
        with pytest.raises(StoreFormatError):
            update_store(path, [["a"]])

    def test_serve_hot_reloads_the_repaired_generation(self, tmp_path):
        from repro.serve import ServeApp

        path = build_store(tmp_path / "run.npz")
        app = ServeApp(path, watch=True)
        _, before = app.handle("GET", "/healthz")
        assert before["generation"] == 1

        update_store(path, [["a", "b", "c", "e"]], damage_threshold=1.0)
        _, after = app.handle("GET", "/healthz")
        assert after["generation"] == 2
        status, recommend = app.handle(
            "POST", "/recommend", body=b'{"basket": ["b", "c"], "k": 3}'
        )
        assert status == 200


class TestCLI:
    def test_update_verb_round_trip(self, tmp_path, capsys):
        from repro.experiments.cli import main

        store_path = tmp_path / "run.npz"
        build_store(store_path)
        batch_file = tmp_path / "batch.basket"
        batch_file.write_text("a b c e\nc d\n")
        code = main(
            [
                "update",
                "--store", str(store_path),
                "--append", str(batch_file),
                "--verify", "oracle",
                "--damage-threshold", "1.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "+2 objects (incremental)" in out
        assert "closures recomputed" in out

    def test_update_verb_reports_fallback(self, tmp_path, capsys):
        from repro.experiments.cli import main

        store_path = tmp_path / "run.npz"
        build_store(store_path)
        batch_file = tmp_path / "batch.basket"
        batch_file.write_text("a b c e\n")
        code = main(
            [
                "update",
                "--store", str(store_path),
                "--append", str(batch_file),
                "--damage-threshold", "0.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(remine)" in out
        assert "full re-mine" in out

    def test_update_verb_missing_store_is_a_cli_error(self, tmp_path, capsys):
        from repro.experiments.cli import main

        batch_file = tmp_path / "batch.basket"
        batch_file.write_text("a\n")
        code = main(
            [
                "update",
                "--store", str(tmp_path / "absent.npz"),
                "--append", str(batch_file),
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
