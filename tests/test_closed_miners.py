"""Tests for the three closed-itemset miners (Close, A-Close, CHARM).

The three algorithms implement radically different strategies but must
return exactly the same family of (closed itemset, support) pairs; the
reference oracle is a brute-force enumeration over the powerset of items.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro import AClose, Apriori, Charm, Close, TransactionDatabase
from repro.core.generators import is_minimal_generator
from repro.core.itemset import Itemset


def brute_force_closed(db: TransactionDatabase, minsup: float) -> dict[Itemset, int]:
    """Reference: frequent itemsets that equal their own closure."""
    threshold = db.minsup_count(minsup)
    items = list(db.item_universe)
    result: dict[Itemset, int] = {}
    for size in range(1, len(items) + 1):
        for combo in combinations(items, size):
            itemset = Itemset(combo)
            count = db.support_count(itemset)
            if count >= threshold and db.closure(itemset) == itemset:
                result[itemset] = count
    return result


TOY_EXPECTED = {
    Itemset("c"): 4,
    Itemset("ac"): 3,
    Itemset("be"): 4,
    Itemset("bce"): 3,
    Itemset("abce"): 2,
}


@pytest.mark.parametrize("algorithm_class", [Close, AClose, Charm])
class TestClosedMiners:
    def test_toy_closed_itemsets(self, toy_db, algorithm_class):
        family = algorithm_class(minsup=0.4).mine(toy_db)
        assert family.to_dict() == TOY_EXPECTED

    def test_matches_brute_force_on_toy_at_various_thresholds(
        self, toy_db, algorithm_class
    ):
        for minsup in (0.2, 0.4, 0.6, 0.8, 1.0):
            family = algorithm_class(minsup).mine(toy_db)
            assert family.to_dict() == brute_force_closed(toy_db, minsup)

    def test_matches_brute_force_on_random_databases(self, random_db, algorithm_class):
        for minsup in (0.1, 0.3, 0.5):
            family = algorithm_class(minsup).mine(random_db)
            assert family.to_dict() == brute_force_closed(random_db, minsup)

    def test_every_member_is_closed_in_database(self, toy_db, algorithm_class):
        family = algorithm_class(minsup=0.2).mine(toy_db)
        for itemset in family:
            assert toy_db.closure(itemset) == itemset
            assert toy_db.support_count(itemset) == family.support_count(itemset)

    def test_identical_rows_collapse_to_single_closed_set(
        self, identical_rows_db, algorithm_class
    ):
        family = algorithm_class(minsup=0.5).mine(identical_rows_db)
        assert family.to_dict() == {Itemset("abc"): 4}

    def test_single_transaction(self, single_row_db, algorithm_class):
        family = algorithm_class(minsup=1.0).mine(single_row_db)
        assert family.to_dict() == {Itemset("abc"): 1}

    def test_universal_item_database(self, allx_db, algorithm_class):
        family = algorithm_class(minsup=0.5).mine(allx_db)
        brute = brute_force_closed(allx_db, 0.5)
        assert family.to_dict() == brute

    def test_all_three_agree_on_dense_smoke_data(self, dense_smoke_db, algorithm_class):
        reference = Close(minsup=0.3).mine(dense_smoke_db).to_dict()
        assert algorithm_class(minsup=0.3).mine(dense_smoke_db).to_dict() == reference


class TestCloseSpecifics:
    def test_generators_close_to_their_closures(self, toy_db):
        miner = Close(minsup=0.4)
        family = miner.mine(toy_db)
        assert set(miner.generators_by_closure) == set(family)
        for closure, generators in miner.generators_by_closure.items():
            for generator in generators:
                assert toy_db.closure(generator) == closure

    def test_generators_are_minimal(self, toy_db):
        miner = Close(minsup=0.4)
        miner.mine(toy_db)
        for generators in miner.generators_by_closure.values():
            for generator in generators:
                assert is_minimal_generator(toy_db, generator)

    def test_close_fewer_candidates_than_apriori_on_dense_data(self, dense_smoke_db):
        apriori_run = Apriori(minsup=0.3).run(dense_smoke_db)
        close_run = Close(minsup=0.3).run(dense_smoke_db)
        assert (
            close_run.statistics.candidates_generated
            < apriori_run.statistics.candidates_generated
        )


class TestACloseSpecifics:
    def test_generators_are_recorded(self, toy_db):
        miner = AClose(minsup=0.4)
        family = miner.mine(toy_db)
        assert set(miner.generators_by_closure) == set(family)
        assert Itemset("a") in miner.generators

    def test_generator_supports_equal_closure_supports(self, toy_db):
        miner = AClose(minsup=0.4)
        family = miner.mine(toy_db)
        for closure, generators in miner.generators_by_closure.items():
            for generator in generators:
                assert toy_db.support_count(generator) == family.support_count(closure)


class TestFamilyEquivalence:
    def test_closed_family_expansion_equals_apriori(self, random_db):
        """Definition 1: the closed family generates all frequent itemsets."""
        minsup = 0.2
        frequent = Apriori(minsup).mine(random_db)
        closed = Close(minsup).mine(random_db)
        assert closed.expand_to_frequent_itemsets().to_dict() == frequent.to_dict()

    def test_maximal_frequent_equal_maximal_closed(self, random_db):
        """Maximal frequent itemsets are maximal frequent closed itemsets."""
        minsup = 0.2
        frequent = Apriori(minsup).mine(random_db)
        closed = Close(minsup).mine(random_db)
        assert set(frequent.maximal_itemsets()) == set(closed.maximal_itemsets())

    def test_closed_count_never_exceeds_frequent_count(self, random_db):
        for minsup in (0.1, 0.3):
            frequent = Apriori(minsup).mine(random_db)
            closed = Close(minsup).mine(random_db)
            assert len(closed) <= len(frequent)
