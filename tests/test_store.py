"""Round-trip tests of the on-disk artifact store (:mod:`repro.store`).

The save→load invariant: context, families, generators, the packed
lattice order core and every stored rule basis come back *identical* —
same members and supports, edge-for-edge the same order, byte-for-byte
the same rule columns — and a ``repro bases`` warm start from a store
prints byte-identical output to the cold (mined) run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import store
from repro.bases import registered_names
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice
from repro.core.order import PackedOrderCore
from repro.data.context import TransactionDatabase
from repro.data.synthetic import make_rule_dense_family, make_star_closed_family
from repro.errors import InvalidParameterError, StoreFormatError
from repro.experiments import cli
from repro.experiments.harness import (
    build_rule_artifacts,
    build_rule_artifacts_from_store,
    mine_itemsets,
    save_artifacts,
)

from conftest import make_random_db


@pytest.fixture(scope="module")
def toy_db():
    return TransactionDatabase(
        [
            ["a", "c", "d"],
            ["b", "c", "e"],
            ["a", "b", "c", "e"],
            ["b", "e"],
            ["a", "b", "c", "e"],
        ],
        name="toy",
    )


@pytest.fixture(scope="module")
def toy_mining(toy_db):
    return mine_itemsets(toy_db, 0.4)


@pytest.fixture(scope="module")
def toy_artifacts(toy_mining):
    return build_rule_artifacts(toy_mining, minconf=0.5, bases=registered_names())


@pytest.fixture(scope="module")
def toy_store_path(tmp_path_factory, toy_mining, toy_artifacts):
    path = tmp_path_factory.mktemp("store") / "toy.npz"
    save_artifacts(path, toy_mining, toy_artifacts)
    return path


def assert_same_rule_arrays(left, right):
    assert left.universe == right.universe
    assert np.array_equal(left.antecedents.words, right.antecedents.words)
    assert np.array_equal(left.consequents.words, right.consequents.words)
    assert np.array_equal(left.support, right.support)
    assert np.array_equal(left.confidence, right.confidence)
    assert np.array_equal(left.support_count, right.support_count)


# ----------------------------------------------------------------------
# Section round trips
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_context(self, toy_store_path, toy_db):
        run = store.load_run(toy_store_path)
        assert run.database.name == toy_db.name
        assert run.database.items == toy_db.items
        assert np.array_equal(run.database.matrix, toy_db.matrix)

    def test_families(self, toy_store_path, toy_mining):
        run = store.load_run(toy_store_path)
        assert run.frequent.same_contents(toy_mining.frequent)
        assert run.closed.same_contents(toy_mining.closed)
        assert run.frequent.minsup_count == toy_mining.frequent.minsup_count
        assert run.closed.n_objects == toy_mining.closed.n_objects

    def test_generators(self, toy_store_path, toy_mining):
        run = store.load_run(toy_store_path)
        original = toy_mining.generator_family
        assert run.generators.closed_itemsets() == original.closed_itemsets()
        for closure in original.closed_itemsets():
            assert run.generators.generators_of(closure) == original.generators_of(
                closure
            )

    def test_order_core(self, toy_store_path, toy_artifacts):
        run = store.load_run(toy_store_path)
        lattice = toy_artifacts.context.lattice
        assert isinstance(run.lattice.order_core, PackedOrderCore)
        assert run.lattice.hasse_edges() == lattice.hasse_edges()
        left = sorted(zip(*run.lattice.containment_indices()))
        right = sorted(zip(*lattice.containment_indices()))
        assert left == right
        # The stored packed containment equals a fresh packed build.
        rebuilt = IcebergLattice(run.lattice.closed_family, strategy="packed")
        assert run.lattice.order_core.packed_containment_matrix().equals(
            rebuilt.order_core.packed_containment_matrix()
        )

    def test_every_registered_basis_identical(self, toy_store_path, toy_artifacts):
        run = store.load_run(toy_store_path)
        assert set(run.rule_arrays) == set(registered_names())
        for name in registered_names():
            assert_same_rule_arrays(
                run.rule_arrays[name], toy_artifacts[name].rule_arrays
            )
            assert run.basis_kinds[name] == toy_artifacts[name].kind

    def test_manifest(self, toy_store_path):
        manifest = store.read_manifest(toy_store_path)
        assert manifest["format"] == store.FORMAT_NAME
        assert manifest["version"] == store.FORMAT_VERSION
        assert manifest["minsup"] == 0.4 and manifest["minconf"] == 0.5
        assert set(manifest["sections"]) == {
            "context",
            "frequent",
            "closed",
            "generators",
            "order",
            "rules",
        }

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_databases(self, tmp_path, seed):
        database = make_random_db(seed)
        mining = mine_itemsets(database, 0.2)
        artifacts = build_rule_artifacts(mining, minconf=0.6)
        path = tmp_path / f"random{seed}.npz"
        save_artifacts(path, mining, artifacts)
        run = store.load_run(path)
        assert np.array_equal(run.database.matrix, database.matrix)
        assert run.closed.same_contents(mining.closed)
        assert run.lattice.hasse_edges() == artifacts.context.lattice.hasse_edges()
        for name in artifacts.names:
            assert_same_rule_arrays(run.rule_arrays[name], artifacts[name].rule_arrays)

    def test_integer_items(self, tmp_path):
        """Star families use int items; the codec must preserve the type."""
        family = make_star_closed_family(40)
        lattice = IcebergLattice(family)
        path = tmp_path / "star.npz"
        store.save_run(path, closed=family, lattice=lattice, name="star")
        run = store.load_run(path)
        assert run.closed.same_contents(family)
        members = run.closed.itemsets()
        assert all(isinstance(item, int) for member in members for item in member)
        assert run.lattice.hasse_edges() == lattice.hasse_edges()

    def test_rule_dense_columns(self, tmp_path):
        """A larger (analytic) workload round-trips byte-identically."""
        closed, generators = make_rule_dense_family(40, 2)
        from repro.core.informative import InformativeBasis

        lattice = IcebergLattice(closed)
        basis = InformativeBasis(
            generators, minconf=0.0, reduced=False, lattice=lattice
        )
        arrays = basis.rules.to_arrays()
        path = tmp_path / "dense.npz"
        store.save_run(
            path,
            closed=closed,
            generators=generators,
            lattice=lattice,
            rule_arrays={"informative": arrays},
            basis_kinds={"informative": "approximate"},
        )
        run = store.load_run(path)
        assert_same_rule_arrays(run.rule_arrays["informative"], arrays)


# ----------------------------------------------------------------------
# Warm start
# ----------------------------------------------------------------------
class TestWarmStart:
    def test_artifacts_from_store_equal_cold_build(
        self, toy_store_path, toy_artifacts
    ):
        run = store.load_run(toy_store_path)
        warm = build_rule_artifacts_from_store(run, bases=registered_names())
        assert warm.minconf == toy_artifacts.minconf
        assert warm.minsup == toy_artifacts.minsup
        for name in registered_names():
            assert warm[name].rules.same_rules_and_statistics(
                toy_artifacts[name].rules
            )
            assert_same_rule_arrays(
                warm[name].rule_arrays, toy_artifacts[name].rule_arrays
            )

    def test_warm_start_reuses_stored_lattice(self, toy_store_path):
        run = store.load_run(toy_store_path)
        warm = build_rule_artifacts_from_store(run, bases=("luxenburger-reduced",))
        assert warm.context.lattice is run.lattice

    def test_cli_bases_from_store_byte_identical(
        self, tmp_path, toy_db, capsys
    ):
        basket = tmp_path / "toy.basket"
        basket.write_text(
            "".join(
                " ".join(str(item) for item in sorted(transaction)) + "\n"
                for transaction in toy_db
            )
        )
        store_path = tmp_path / "toy-cli.npz"
        args = ["--minsup", "0.4", "--minconf", "0.7"]
        assert cli.main(["bases", "--dataset", str(basket), *args]) == 0
        mined = capsys.readouterr().out
        save_args = ["save", "--dataset", str(basket), *args, "--out", str(store_path)]
        assert cli.main(save_args) == 0
        capsys.readouterr()
        warm_args = ["bases", "--from-store", str(store_path), "--minconf", "0.7"]
        assert cli.main(warm_args) == 0
        warm = capsys.readouterr().out
        assert warm == mined

    def test_warm_start_without_minconf_reuses_stored_threshold(
        self, tmp_path, toy_db, capsys
    ):
        """`bases --from-store` with no --minconf must use the saved one."""
        basket = tmp_path / "toy.basket"
        basket.write_text(
            "".join(
                " ".join(str(item) for item in sorted(transaction)) + "\n"
                for transaction in toy_db
            )
        )
        store_path = tmp_path / "minconf09.npz"
        save_args = ["--minsup", "0.4", "--minconf", "0.9"]
        assert cli.main(["bases", "--dataset", str(basket), *save_args]) == 0
        mined = capsys.readouterr().out
        cmd = ["save", "--dataset", str(basket), *save_args, "--out", str(store_path)]
        assert cli.main(cmd) == 0
        capsys.readouterr()
        assert cli.main(["bases", "--from-store", str(store_path)]) == 0
        warm = capsys.readouterr().out
        assert "minconf=0.9" in warm
        assert warm == mined

    def test_env_forced_strategy_overrides_stored_core(
        self, toy_store_path, monkeypatch
    ):
        from repro.core.order import STRATEGY_ENV_VAR

        run = store.load_run(toy_store_path)
        monkeypatch.setenv(STRATEGY_ENV_VAR, "reference")
        warm = build_rule_artifacts_from_store(run, bases=("luxenburger-reduced",))
        assert warm.context.lattice is not run.lattice
        assert warm.context.lattice.strategy == "reference"

    def test_nameless_store_reads_as_unnamed(self, tmp_path, toy_mining):
        path = tmp_path / "nameless.npz"
        store.save_run(path, closed=toy_mining.closed, minsup=0.4)
        run = store.load_run(path)
        assert run.name == "unnamed"

    def test_forced_lattice_strategy_overrides_stored_core(self, toy_store_path):
        """An explicit strategy must actually run, not serve the stored core."""
        run = store.load_run(toy_store_path)
        warm = build_rule_artifacts_from_store(
            run, bases=("luxenburger-reduced",), lattice_strategy="reference"
        )
        assert warm.context.lattice is not run.lattice
        assert warm.context.lattice.strategy == "reference"
        assert warm["luxenburger-reduced"].rules.same_rules_and_statistics(
            build_rule_artifacts_from_store(run, bases=("luxenburger-reduced",))[
                "luxenburger-reduced"
            ].rules
        )

    def test_cli_user_errors_are_clean(self, tmp_path, capsys):
        """CLI surfaces library errors argparse-style (exit 2, no traceback)."""
        assert cli.main(["bases", "--minconf", "0.7"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "--dataset" in err
        assert cli.main(["load", str(tmp_path / "absent.npz")]) == 2
        assert "store file not found" in capsys.readouterr().err
        store_path = tmp_path / "engine.npz"
        store.save_run(store_path, closed=mine_itemsets(make_random_db(4), 0.2).closed)
        assert (
            cli.main(
                ["bases", "--from-store", str(store_path), "--engine", "numpy"]
            )
            == 2
        )
        assert "--engine has no effect" in capsys.readouterr().err

    def test_missing_minconf_requires_explicit(self, tmp_path, toy_mining):
        path = tmp_path / "nominconf.npz"
        store.save_run(path, closed=toy_mining.closed, frequent=toy_mining.frequent)
        run = store.load_run(path)
        with pytest.raises(InvalidParameterError):
            build_rule_artifacts_from_store(run, bases=("luxenburger-reduced",))
        warm = build_rule_artifacts_from_store(
            run, minconf=0.5, bases=("luxenburger-reduced",)
        )
        assert len(warm["luxenburger-reduced"].rules) > 0


# ----------------------------------------------------------------------
# Format guards
# ----------------------------------------------------------------------
class TestFormatGuards:
    def test_wrong_version_rejected(self, tmp_path, toy_mining):
        import json

        path = tmp_path / "future.npz"
        store.save_run(path, closed=toy_mining.closed)
        with np.load(path) as data:
            payload = {key: data[key] for key in data.files}
        manifest = json.loads(bytes(payload["manifest"]).decode("utf-8"))
        manifest["version"] = store.FORMAT_VERSION + 1
        payload["manifest"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **payload)
        with pytest.raises(StoreFormatError, match="version"):
            store.load_run(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(StoreFormatError, match="manifest"):
            store.load_run(path)
        with pytest.raises(StoreFormatError):
            store.read_manifest(path)

    def test_non_npz_file_rejected_cleanly(self, tmp_path):
        """Text or truncated files raise StoreFormatError, not numpy noise."""
        text = tmp_path / "notes.txt"
        text.write_text("just some text\n")
        with pytest.raises(StoreFormatError, match="not a readable store"):
            store.load_run(text)
        with pytest.raises(StoreFormatError, match="store file not found"):
            store.read_manifest(tmp_path / "absent.npz")

    def test_wrong_format_name_rejected(self, tmp_path):
        import json

        path = tmp_path / "other.npz"
        manifest = np.frombuffer(
            json.dumps({"format": "something-else", "version": 1}).encode("utf-8"),
            dtype=np.uint8,
        )
        np.savez(path, manifest=manifest)
        with pytest.raises(StoreFormatError, match="not a repro-store"):
            store.load_run(path)

    def test_require_names_missing_section(self, tmp_path, toy_mining):
        path = tmp_path / "partial.npz"
        store.save_run(path, closed=toy_mining.closed)
        run = store.load_run(path)
        assert run.database is None and run.lattice is None
        with pytest.raises(StoreFormatError, match="context"):
            run.require("context")
        assert run.require("closed") is run.closed

    def test_mixed_item_types_rejected(self, tmp_path):
        from repro.core.families import ClosedItemsetFamily

        family = ClosedItemsetFamily(
            {Itemset(["a", 1]): 1}, n_objects=1, minsup_count=1
        )
        with pytest.raises(StoreFormatError, match="item types"):
            store.save_run(tmp_path / "mixed.npz", closed=family)

    def test_generators_require_closed(self, tmp_path, toy_mining):
        with pytest.raises(InvalidParameterError):
            store.save_run(
                tmp_path / "bad.npz", generators=toy_mining.generator_family
            )

    def test_lattice_family_identity_enforced(self, tmp_path, toy_mining):
        other = mine_itemsets(make_random_db(3), 0.2)
        lattice = IcebergLattice(other.closed)
        with pytest.raises(InvalidParameterError):
            store.save_run(
                tmp_path / "bad.npz", closed=toy_mining.closed, lattice=lattice
            )


# ----------------------------------------------------------------------
# Arrow export (soft dependency)
# ----------------------------------------------------------------------
class TestArrowExport:
    def test_missing_pyarrow_raises_cleanly(self, toy_artifacts, tmp_path):
        if store.arrow_available():
            pytest.skip("pyarrow installed; the unavailable path is untestable")
        from repro.errors import MissingDependencyError

        arrays = toy_artifacts["dg"].rule_arrays
        with pytest.raises(MissingDependencyError, match="pyarrow"):
            store.export_rule_arrays(arrays, tmp_path / "dg.parquet")

    def test_export_and_read_back(self, toy_artifacts, tmp_path):
        if not store.arrow_available():
            pytest.skip("pyarrow not installed")
        import pyarrow.parquet as pq

        built = toy_artifacts["luxenburger-reduced"]
        arrays = built.rule_arrays
        path = store.export_rule_arrays(arrays, tmp_path / "rules.parquet")
        table = pq.read_table(path)
        assert table.num_rows == len(arrays)
        assert table.column_names == [
            "antecedent",
            "consequent",
            "support",
            "confidence",
            "support_count",
        ]
        antecedents = table.column("antecedent").to_pylist()
        for row, rule in zip(antecedents, arrays.iter_rules()):
            assert row == [str(item) for item in sorted(rule.antecedent)]
