"""Tests for the experiment harness, table functions, renderers and CLI."""

from __future__ import annotations

import pytest

from repro.data.io import save_basket_file
from repro.experiments import (
    DatasetSpec,
    build_rule_artifacts,
    mine_itemsets,
    render_markdown_table,
    render_text_table,
    smoke_specs,
    time_algorithms,
)
from repro.experiments import tables
from repro.experiments.cli import build_parser, main
from repro.experiments.config import all_specs, dense_specs, sparse_specs
from repro.experiments.report import format_value


@pytest.fixture(scope="module")
def smoke():
    return smoke_specs()


class TestConfig:
    def test_benchmark_specs_are_well_formed(self):
        for spec in all_specs():
            assert spec.minsup_sweep
            assert all(0.0 < m <= 1.0 for m in spec.minsup_sweep)
            assert set(spec.rule_sweep) <= set(spec.minsup_sweep)
            assert spec.minconfs

    def test_dense_and_sparse_partition(self):
        assert all(spec.dense for spec in dense_specs())
        assert not any(spec.dense for spec in sparse_specs())

    def test_rule_sweep_defaults_to_minsup_sweep(self):
        spec = DatasetSpec(
            name="x", factory=lambda: None, minsup_sweep=(0.5, 0.4)
        )
        assert spec.rule_sweep == (0.5, 0.4)

    def test_smoke_specs_build_small_databases(self, smoke):
        for spec in smoke:
            db = spec.build()
            assert db.n_objects <= 250


class TestHarness:
    def test_mine_itemsets_bundles_both_families(self, smoke):
        spec = smoke[0]
        mining = mine_itemsets(spec.build(), spec.minsup_sweep[0])
        assert len(mining.closed) <= len(mining.frequent)
        assert mining.apriori_run.algorithm == "Apriori"
        assert mining.close_run.algorithm == "Close"

    def test_build_rule_artifacts_report_is_consistent(self, smoke):
        spec = smoke[0]
        mining = mine_itemsets(spec.build(), spec.minsup_sweep[0])
        artifacts = build_rule_artifacts(mining, minconf=0.5)
        report = artifacts.report
        assert report.all_rules == len(artifacts.all_rules)
        assert report.all_exact_rules == len(artifacts.all_exact)
        assert report.dg_basis_size == len(artifacts.dg_basis)
        assert report.bases_total >= report.dg_basis_size
        assert report.total_reduction_factor >= 1.0

    def test_time_algorithms_rows(self, smoke):
        spec = smoke[1]
        rows = time_algorithms(spec.build(), spec.minsup_sweep[:1])
        assert len(rows) == 4  # Apriori, Close, A-Close, CHARM
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"Apriori", "Close", "A-Close", "CHARM"}
        assert all(row["seconds"] >= 0 for row in rows)


class TestTables:
    def test_table1(self, smoke):
        rows = tables.table1_dataset_characteristics(smoke)
        assert len(rows) == len(smoke)
        assert {row["kind"] for row in rows} == {"dense", "sparse"}

    def test_table2_closed_never_exceeds_frequent(self, smoke):
        rows = tables.table2_itemset_counts(smoke)
        assert rows
        for row in rows:
            assert row["closed"] <= row["frequent"]
            assert row["ratio"] >= 1.0 or row["frequent"] == 0

    def test_table3_basis_never_larger_than_exact_rules(self, smoke):
        rows = tables.table3_exact_rules(smoke)
        for row in rows:
            assert row["dg_basis"] <= max(row["exact_rules"], row["dg_basis"])
            assert row["reduction"] >= 0

    def test_table4_reduced_basis_never_larger_than_full(self, smoke):
        rows = tables.table4_approximate_rules(smoke)
        for row in rows:
            assert row["lux_reduced"] <= row["lux_full"]

    def test_table5_reduction_factors(self, smoke):
        rows = tables.table5_total_reduction(smoke)
        for row in rows:
            assert row["bases_total"] >= 0
            assert row["reduction"] >= 1.0 or row["all_rules"] == 0

    def test_figure3_rules_grow_as_minconf_drops(self, smoke):
        rows = tables.figure3_rules_vs_minconf(smoke[:1], minconfs=(0.9, 0.5))
        assert len(rows) == 2
        assert rows[1]["all_rules"] >= rows[0]["all_rules"]

    def test_ablation_closed_miners_all_match(self, smoke):
        rows = tables.ablation_closed_miners(smoke)
        for row in rows:
            assert row["aclose_matches"] is True
            assert row["charm_matches"] is True

    def test_ablation_transitive_reduction(self, smoke):
        rows = tables.ablation_transitive_reduction(smoke[:1])
        for row in rows:
            assert row["lux_reduced"] <= row["lux_full"]
            assert row["saving"] >= 1.0


class TestReportRendering:
    def test_text_table_alignment_and_title(self):
        rows = [{"name": "a", "value": 1}, {"name": "bb", "value": 22}]
        text = render_text_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_text_table_empty(self):
        assert "(no rows)" in render_text_table([])

    def test_markdown_table(self):
        rows = [{"a": 1, "b": 2.5}]
        markdown = render_markdown_table(rows)
        assert markdown.splitlines()[0] == "| a | b |"
        assert "| 1 | 2.5 |" in markdown

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.123456) == "0.1235"
        assert format_value(12345.0) == "12,345"
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value("text") == "text"


class TestCli:
    def test_parser_knows_every_experiment(self):
        parser = build_parser()
        args = parser.parse_args(["experiment", "T1", "--smoke"])
        assert args.id == "T1"
        assert args.smoke is True

    def test_stats_command(self, capsys):
        assert main(["stats", "--smoke"]) == 0
        output = capsys.readouterr().out
        assert "dataset" in output
        assert "MUSHROOM-smoke" in output

    def test_experiment_command(self, capsys):
        assert main(["experiment", "T1", "--smoke"]) == 0
        assert "T1" in capsys.readouterr().out

    def test_mine_command(self, tmp_path, capsys, toy_db):
        path = tmp_path / "toy.basket"
        save_basket_file(toy_db, path)
        assert main(["mine", "--dataset", str(path), "--minsup", "0.4"]) == 0
        output = capsys.readouterr().out
        assert "frequent closed itemsets" in output
        assert "{a, c}" in output

    def test_bases_command(self, tmp_path, capsys, toy_db):
        path = tmp_path / "toy.basket"
        save_basket_file(toy_db, path)
        assert main(
            ["bases", "--dataset", str(path), "--minsup", "0.4", "--minconf", "0.5"]
        ) == 0
        output = capsys.readouterr().out
        assert "Duquenne-Guigues basis" in output
        assert "Luxenburger reduced basis" in output
