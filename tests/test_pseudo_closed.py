"""Tests for the frequent pseudo-closed itemset computation (Theorem 1)."""

from __future__ import annotations

import pytest

from repro import Apriori, Close
from repro.core.itemset import Itemset
from repro.core.pseudo_closed import (
    PseudoClosedItemset,
    frequent_pseudo_closed_itemsets,
    frequent_pseudo_closed_itemsets_reference,
)
from repro.errors import InvalidParameterError


def compute(db, minsup):
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    return db, frequent, closed, frequent_pseudo_closed_itemsets(frequent, closed)


class TestToyContext:
    def test_pseudo_closed_sets_of_the_toy_context(self, toy_db):
        _, _, _, pseudo = compute(toy_db, 0.4)
        assert [p.itemset for p in pseudo] == [Itemset("a"), Itemset("b"), Itemset("e")]

    def test_closures_and_supports(self, toy_db):
        _, _, _, pseudo = compute(toy_db, 0.4)
        by_itemset = {p.itemset: p for p in pseudo}
        assert by_itemset[Itemset("a")].closure == Itemset("ac")
        assert by_itemset[Itemset("a")].support_count == 3
        assert by_itemset[Itemset("b")].closure == Itemset("be")
        assert by_itemset[Itemset("e")].closure == Itemset("be")
        assert by_itemset[Itemset("b")].support_count == 4

    def test_empty_set_not_pseudo_closed_when_closed(self, toy_db):
        _, _, _, pseudo = compute(toy_db, 0.4)
        assert Itemset() not in {p.itemset for p in pseudo}


class TestUniversalItemContext:
    def test_empty_set_is_pseudo_closed_when_not_closed(self, allx_db):
        _, _, _, pseudo = compute(allx_db, 0.25)
        by_itemset = {p.itemset: p for p in pseudo}
        assert Itemset() in by_itemset
        assert by_itemset[Itemset()].closure == Itemset("x")
        assert by_itemset[Itemset()].support_count == allx_db.n_objects


class TestDefinition:
    @pytest.mark.parametrize("minsup", [0.1, 0.3, 0.5])
    def test_definition_holds_on_random_databases(self, random_db, minsup):
        """Re-check the recursive definition itemset by itemset."""
        db, frequent, closed, pseudo = compute(random_db, minsup)
        pseudo_sets = {p.itemset for p in pseudo}

        def is_pseudo_closed(candidate: Itemset) -> bool:
            if db.closure(candidate) == candidate:
                return False
            for other in pseudo_sets:
                if other.is_proper_subset(candidate) and not db.closure(
                    other
                ).issubset(candidate):
                    return False
            return True

        # Every frequent itemset (plus the empty set) must be classified
        # exactly as the definition demands, given the returned pseudo set.
        candidates = [Itemset()] + frequent.itemsets()
        for candidate in candidates:
            assert (candidate in pseudo_sets) == is_pseudo_closed(candidate)

    def test_pseudo_closed_sets_are_disjoint_from_closed_sets(self, random_db):
        db, _, closed, pseudo = compute(random_db, 0.2)
        for entry in pseudo:
            assert entry.itemset not in closed
            assert db.closure(entry.itemset) == entry.closure
            assert db.support_count(entry.itemset) == entry.support_count

    def test_supports_equal_closure_supports(self, random_db):
        db, _, _, pseudo = compute(random_db, 0.2)
        for entry in pseudo:
            assert entry.support_count == db.support_count(entry.closure)


class TestPackedEquivalence:
    """The packed inner loop equals the per-pair reference computation."""

    @pytest.mark.parametrize("minsup", [0.1, 0.2, 0.4])
    def test_matches_reference_on_random_databases(self, random_db, minsup):
        frequent = Apriori(minsup).mine(random_db)
        closed = Close(minsup).mine(random_db)
        assert frequent_pseudo_closed_itemsets(
            frequent, closed
        ) == frequent_pseudo_closed_itemsets_reference(frequent, closed)

    def test_matches_reference_on_special_contexts(
        self, toy_db, allx_db, single_row_db, identical_rows_db, dense_smoke_db
    ):
        for db, minsup in [
            (toy_db, 0.4),
            (allx_db, 0.25),
            (single_row_db, 0.5),
            (identical_rows_db, 0.5),
            (dense_smoke_db, 0.2),
        ]:
            frequent = Apriori(minsup).mine(db)
            closed = Close(minsup).mine(db)
            assert frequent_pseudo_closed_itemsets(
                frequent, closed
            ) == frequent_pseudo_closed_itemsets_reference(frequent, closed)


class TestValidation:
    def test_pseudo_closed_value_object_rejects_bad_closure(self):
        with pytest.raises(InvalidParameterError):
            PseudoClosedItemset(
                itemset=Itemset("ab"), closure=Itemset("ab"), support_count=3
            )

    def test_mismatched_families_are_rejected(self, toy_db):
        frequent = Apriori(0.4).mine(toy_db)
        closed = Close(0.4).mine(toy_db)
        other = Apriori(0.4).mine(
            __import__("repro").TransactionDatabase([["a"], ["a", "b"]])
        )
        with pytest.raises(InvalidParameterError):
            frequent_pseudo_closed_itemsets(other, closed)
