"""Unit tests for the Apriori baseline miner."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro import Apriori, TransactionDatabase
from repro.algorithms.apriori import apriori_candidates
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


def brute_force_frequent(db: TransactionDatabase, minsup: float) -> dict[Itemset, int]:
    """Reference implementation: enumerate every non-empty itemset."""
    threshold = db.minsup_count(minsup)
    items = list(db.item_universe)
    result: dict[Itemset, int] = {}
    for size in range(1, len(items) + 1):
        for combo in combinations(items, size):
            itemset = Itemset(combo)
            count = db.support_count(itemset)
            if count >= threshold:
                result[itemset] = count
    return result


class TestCandidateGeneration:
    def test_joins_itemsets_sharing_prefix(self):
        level = [Itemset("ab"), Itemset("ac"), Itemset("bc")]
        assert apriori_candidates(level) == [Itemset("abc")]

    def test_prunes_candidates_with_infrequent_subset(self):
        # {a,b,c} requires {b,c} to be present.
        level = [Itemset("ab"), Itemset("ac")]
        assert apriori_candidates(level) == []

    def test_singletons_join_into_pairs(self):
        level = [Itemset("a"), Itemset("b"), Itemset("c")]
        assert apriori_candidates(level) == [
            Itemset("ab"),
            Itemset("ac"),
            Itemset("bc"),
        ]

    def test_empty_level(self):
        assert apriori_candidates([]) == []


class TestApriori:
    def test_toy_counts(self, toy_db, toy_frequent):
        assert len(toy_frequent) == 15
        assert toy_frequent.support_count(Itemset("abce")) == 2
        assert toy_frequent.support_count(Itemset("be")) == 4
        assert Itemset("d") not in toy_frequent

    def test_matches_brute_force_on_toy(self, toy_db):
        for minsup in (0.2, 0.4, 0.6, 0.8):
            family = Apriori(minsup).mine(toy_db)
            assert family.to_dict() == brute_force_frequent(toy_db, minsup)

    def test_matches_brute_force_on_random_databases(self, random_db):
        for minsup in (0.1, 0.25, 0.5):
            family = Apriori(minsup).mine(random_db)
            assert family.to_dict() == brute_force_frequent(random_db, minsup)

    def test_family_is_downward_closed(self, toy_frequent):
        for itemset in toy_frequent:
            for subset in itemset.nonempty_proper_subsets():
                assert subset in toy_frequent
                assert toy_frequent.support_count(subset) >= toy_frequent.support_count(
                    itemset
                )

    def test_max_size_caps_exploration(self, toy_db):
        capped = Apriori(minsup=0.4, max_size=2).mine(toy_db)
        assert capped.max_size() == 2
        full = Apriori(minsup=0.4).mine(toy_db)
        assert {i for i in full if len(i) <= 2} == set(capped)

    def test_high_threshold_keeps_only_ubiquitous_items(self, identical_rows_db):
        family = Apriori(minsup=1.0).mine(identical_rows_db)
        assert Itemset("abc") in family
        assert len(family) == 7  # every non-empty subset of {a,b,c}

    def test_minsup_validation(self):
        with pytest.raises(InvalidParameterError):
            Apriori(minsup=1.2)
        with pytest.raises(InvalidParameterError):
            Apriori(minsup=-0.1)

    def test_run_records_statistics(self, toy_db):
        run = Apriori(minsup=0.4).run(toy_db)
        stats = run.statistics
        assert stats.itemsets_found == 15
        assert stats.levels == 4
        assert stats.database_passes == stats.levels
        assert stats.candidates_generated >= 15
        assert stats.wall_clock_seconds >= 0.0
        assert "Apriori" in str(run)

    def test_threshold_metadata_is_recorded(self, toy_db):
        family = Apriori(minsup=0.4).mine(toy_db)
        assert family.minsup_count == 2
        assert family.n_objects == 5
