"""Tests for minimal generators and :class:`GeneratorFamily`."""

from __future__ import annotations

import pytest

from repro import AClose, Close
from repro.core.generators import (
    GeneratorFamily,
    is_minimal_generator,
    minimal_generators_brute_force,
)
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


class TestMinimalGeneratorPredicate:
    def test_empty_set_is_a_generator(self, toy_db):
        assert is_minimal_generator(toy_db, Itemset())

    def test_single_items(self, toy_db):
        assert is_minimal_generator(toy_db, Itemset("a"))
        assert is_minimal_generator(toy_db, Itemset("b"))

    def test_non_generators(self, toy_db):
        # supp(ac) == supp(a): dropping c changes nothing.
        assert not is_minimal_generator(toy_db, Itemset("ac"))
        assert not is_minimal_generator(toy_db, Itemset("be"))
        assert not is_minimal_generator(toy_db, Itemset("bce"))

    def test_generators_of_size_two(self, toy_db):
        assert is_minimal_generator(toy_db, Itemset("ab"))
        assert is_minimal_generator(toy_db, Itemset("bc"))

    def test_downward_closure_property(self, random_db):
        """Every subset of a minimal generator is a minimal generator."""
        items = list(random_db.item_universe)
        from itertools import combinations

        for size in (2, 3):
            for combo in combinations(items[:6], size):
                candidate = Itemset(combo)
                if random_db.support_count(candidate) == 0:
                    continue
                if is_minimal_generator(random_db, candidate):
                    for subset in candidate.immediate_subsets():
                        assert is_minimal_generator(random_db, subset)


class TestBruteForceGenerators:
    def test_generators_of_toy_closures(self, toy_db):
        assert minimal_generators_brute_force(toy_db, Itemset("ac")) == [Itemset("a")]
        assert minimal_generators_brute_force(toy_db, Itemset("be")) == [
            Itemset("b"),
            Itemset("e"),
        ]
        assert minimal_generators_brute_force(toy_db, Itemset("bce")) == [
            Itemset("bc"),
            Itemset("ce"),
        ]

    def test_self_generated_closed_set(self, toy_db):
        assert minimal_generators_brute_force(toy_db, Itemset("c")) == [Itemset("c")]


class TestGeneratorFamily:
    @pytest.fixture()
    def family(self, toy_db, toy_closed):
        miner = Close(minsup=0.4)
        miner.mine(toy_db)
        return GeneratorFamily(toy_closed, miner.generators_by_closure)

    def test_generators_match_brute_force(self, toy_db, family):
        for closed in family.closed_itemsets():
            assert list(family.generators_of(closed)) == minimal_generators_brute_force(
                toy_db, closed
            )

    def test_all_generators(self, family):
        generators = family.all_generators()
        assert Itemset("a") in generators
        assert Itemset("bc") in generators
        assert len(generators) == len(set(generators))

    def test_proper_generators_exclude_the_closure_itself(self, family):
        assert family.proper_generators_of(Itemset("c")) == ()
        assert family.proper_generators_of(Itemset("ac")) == (Itemset("a"),)

    def test_contains_and_len(self, family, toy_closed):
        assert len(family) == len(toy_closed)
        assert Itemset("ac") in family
        assert Itemset("zz") not in family

    def test_verify_against_database(self, toy_db, family):
        assert family.verify_against(toy_db) == []

    def test_verification_reports_wrong_closure(self, toy_db, toy_closed):
        broken = GeneratorFamily(toy_closed, {Itemset("ac"): [Itemset("c")]})
        problems = broken.verify_against(toy_db)
        assert problems and "closure" in problems[0]

    def test_rejects_generators_outside_their_closure(self, toy_closed):
        with pytest.raises(InvalidParameterError):
            GeneratorFamily(toy_closed, {Itemset("ac"): [Itemset("b")]})

    def test_rejects_unknown_closed_itemsets(self, toy_closed):
        with pytest.raises(InvalidParameterError):
            GeneratorFamily(toy_closed, {Itemset("ab"): [Itemset("a")]})

    def test_aclose_generators_also_verify(self, toy_db, toy_closed):
        miner = AClose(minsup=0.4)
        miner.mine(toy_db)
        family = GeneratorFamily(toy_closed, miner.generators_by_closure)
        # A-Close may record a universal item as a generator of h(∅); all
        # other recorded generators must verify.
        problems = [p for p in family.verify_against(toy_db) if "minimal" in p]
        assert problems == []
