"""In-process unit tests for the supervisor's parent-side logic.

The end-to-end behavior (real forked daemons, kernel load balancing,
crash loops under fault injection) lives in ``tests/test_chaos.py``;
this module exercises the supervisor's building blocks directly —
shared counter, port reservation, reap/restart bookkeeping, crash-loop
window, drain — with throwaway forked children where a real process is
required.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from types import SimpleNamespace

import pytest

from repro.serve.supervisor import (
    CRASH_LOOP_EXIT_CODE,
    DEFAULT_MAX_RESTARTS,
    SharedCounter,
    Supervisor,
    _env_float,
    _request_parent_death_signal,
)


def fork_child(body) -> int:
    """Fork a child that runs *body* and can never return into pytest."""
    pid = os.fork()
    if pid == 0:
        code = 0
        try:
            result = body()
            code = 0 if result is None else int(result)
        except BaseException:
            code = 1
        finally:
            os._exit(code)
    return pid


class TestEnvFloat:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert _env_float("REPRO_TEST_KNOB", 2.5) == 2.5

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "7.25")
        assert _env_float("REPRO_TEST_KNOB", 2.5) == 7.25

    def test_default_on_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "not-a-float")
        assert _env_float("REPRO_TEST_KNOB", 2.5) == 2.5


class TestSharedCounter:
    def test_starts_at_zero_and_increments(self):
        counter = SharedCounter()
        assert counter.value == 0
        assert counter.increment() == 1
        assert counter.increment() == 2
        assert counter.value == 2

    def test_visible_across_fork(self):
        # The worker-restart counter contract: the parent (single
        # writer) increments after the fork and the child still sees it.
        counter = SharedCounter()
        read_fd, write_fd = os.pipe()

        def child():
            os.read(read_fd, 1)  # wait for the parent's increment
            return 0 if counter.value == 1 else 1

        pid = fork_child(child)
        counter.increment()
        os.write(write_fd, b"x")
        _, status = os.waitpid(pid, 0)
        os.close(read_fd)
        os.close(write_fd)
        assert os.waitstatus_to_exitcode(status) == 0


@pytest.mark.skipif(
    not hasattr(signal, "SIGHUP"), reason="POSIX signals required"
)
class TestParentDeathSignal:
    def test_sets_pdeathsig(self):
        import ctypes

        try:
            libc = ctypes.CDLL("libc.so.6", use_errno=True)
        except OSError:
            pytest.skip("libc not loadable on this platform")
        _request_parent_death_signal()
        got = ctypes.c_int()
        try:
            assert libc.prctl(2, ctypes.byref(got)) == 0  # PR_GET_PDEATHSIG
            assert got.value == signal.SIGTERM
        finally:
            libc.prctl(1, 0)  # clear it again: this is the test process


class TestConstruction:
    def test_rejects_nonpositive_processes(self, tmp_path):
        with pytest.raises(ValueError, match="processes"):
            Supervisor(tmp_path / "run.npz", processes=0)

    def test_env_knobs_feed_defaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_MAX_RESTARTS", "9")
        monkeypatch.setenv("REPRO_SUPERVISOR_RESTART_WINDOW", "12.5")
        monkeypatch.setenv("REPRO_SERVE_DRAIN_TIMEOUT", "1.5")
        sup = Supervisor(tmp_path / "run.npz")
        assert sup._max_restarts == 9
        assert sup._restart_window == 12.5
        assert sup._drain_timeout == 1.5

    def test_explicit_arguments_beat_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SUPERVISOR_MAX_RESTARTS", "9")
        sup = Supervisor(tmp_path / "run.npz", max_restarts=2)
        assert sup._max_restarts == 2

    def test_defaults_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_SUPERVISOR_MAX_RESTARTS", raising=False)
        sup = Supervisor(tmp_path / "run.npz")
        assert sup._max_restarts == DEFAULT_MAX_RESTARTS
        assert sup.port is None


class TestBind:
    def test_reserves_an_ephemeral_port(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz", port=0)
        sup._bind()
        try:
            assert sup.port is not None and sup.port > 0
            if sup._reuse_port:
                # Reservation only: the parent socket must NOT listen,
                # or the kernel would balance accepts onto a socket
                # nobody ever accepts on.
                accepting = sup._listener.getsockopt(
                    socket.SOL_SOCKET, socket.SO_ACCEPTCONN
                )
                assert accepting == 0
        finally:
            sup._listener.close()

    def test_shared_listener_fallback_listens(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz", port=0)
        sup._reuse_port = False  # force the non-SO_REUSEPORT path
        sup._bind()
        try:
            accepting = sup._listener.getsockopt(
                socket.SOL_SOCKET, socket.SO_ACCEPTCONN
            )
            assert accepting == 1
        finally:
            sup._listener.close()


class TestSignalsAndBanner:
    def test_signal_flags(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz")
        sup._on_stop_signal(signal.SIGTERM, None)
        sup._on_hup_signal(signal.SIGHUP, None)
        assert sup._stop and sup._hup

    def test_announce_banner_shape(self, tmp_path, capsys):
        # serve_smoke / the chaos helpers parse this banner; pin it.
        sup = Supervisor(tmp_path / "run.npz", processes=3)
        sup._app = SimpleNamespace(loaded=SimpleNamespace(name="fig1"))
        sup._port = 4242
        sup._announce()
        out = capsys.readouterr().out
        assert "serving fig1" in out
        assert "http://127.0.0.1:4242" in out
        assert "3 worker processes" in out

    def test_signal_workers_ignores_dead_pids(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz")
        dead = fork_child(lambda: 0)
        os.waitpid(dead, 0)  # fully reaped: the pid no longer exists
        sup._workers = {dead: 0, os.getpid(): 1}
        sup._signal_workers(0)  # must not raise on the dead pid


class TestBackoff:
    def test_backoff_is_bounded_and_jittered(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz")
        sup._backoff_base = 0.01
        start = time.monotonic()
        sup._backoff(1)
        elapsed = time.monotonic() - start
        assert elapsed < 0.5

    def test_backoff_aborts_on_stop(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz")
        sup._backoff_base = 30.0  # would sleep ~30s if not interrupted
        sup._stop = True
        start = time.monotonic()
        sup._backoff(1)
        assert time.monotonic() - start < 0.5


class TestReap:
    def test_restart_until_crash_loop(self, tmp_path, capsys, monkeypatch):
        sup = Supervisor(
            tmp_path / "run.npz", processes=1, max_restarts=2,
            restart_window=30.0, health_interval=0,
        )
        sup._backoff_base = 0.001

        def crashing_spawn(index):
            return fork_child(lambda: 1)  # every worker dies instantly

        monkeypatch.setattr(sup, "_spawn", crashing_spawn)
        sup._workers[crashing_spawn(0)] = 0
        deadline = time.monotonic() + 10.0
        alive = True
        while alive and time.monotonic() < deadline:
            alive = sup._reap()
            time.sleep(0.005)
        assert alive is False, "crash loop never detected"
        # 3 exits in the window: two restarts granted, the third trips.
        assert len(sup._restart_times) == sup._max_restarts + 1
        assert sup._counter.value == sup._max_restarts
        assert any("exited with code 1" in line for line in sup._recent_exits)
        assert "restart 1/2 in window" in capsys.readouterr().err

    def test_reap_records_signal_exits(self, tmp_path, capsys):
        sup = Supervisor(tmp_path / "run.npz", max_restarts=0)

        def hang():
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            while True:  # killed from outside; never exits on its own
                time.sleep(0.5)

        pid = fork_child(hang)
        sup._workers = {pid: 0}
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        alive = True
        while alive and time.monotonic() < deadline:
            alive = sup._reap()
            time.sleep(0.005)
        assert alive is False  # max_restarts=0: first exit is the loop
        assert any("signal 9" in line for line in sup._recent_exits)

    def test_reap_with_no_children(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz")
        assert sup._reap() is True  # ChildProcessError path


class TestShutdown:
    def test_graceful_drain_reaps_workers(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz", drain_timeout=5.0)

        def worker():
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            while True:
                time.sleep(0.5)

        pid = fork_child(worker)
        sup._workers = {pid: 0}
        sup._shutdown()
        assert not sup._workers

    def test_stragglers_are_killed_hard(self, tmp_path, capsys):
        sup = Supervisor(tmp_path / "run.npz", drain_timeout=0.2)
        read_fd, write_fd = os.pipe()

        def stubborn():
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
            os.write(write_fd, b"x")  # SIGTERM is ignored from here on
            while True:
                time.sleep(0.5)

        pid = fork_child(stubborn)
        os.read(read_fd, 1)
        os.close(read_fd)
        os.close(write_fd)
        sup._workers = {pid: 0}
        sup._shutdown()
        assert not sup._workers
        assert "killing hard" in capsys.readouterr().err


class TestSuperviseLoop:
    def test_stop_flag_exits_zero(self, tmp_path):
        sup = Supervisor(tmp_path / "run.npz", health_interval=0)
        sup._stop = True
        assert sup._supervise() == 0

    def test_crash_loop_exit_code_and_diagnostics(
        self, tmp_path, capsys, monkeypatch
    ):
        sup = Supervisor(tmp_path / "run.npz", health_interval=0)
        monkeypatch.setattr(sup, "_reap", lambda: False)
        sup._recent_exits = ["worker 0 (pid 1) exited with code 1"]
        assert sup._supervise() == CRASH_LOOP_EXIT_CODE
        err = capsys.readouterr().err
        assert "crash loop detected" in err
        assert "recent exit: worker 0" in err

    def test_hup_fans_out_then_stops(self, tmp_path, capsys, monkeypatch):
        sup = Supervisor(tmp_path / "run.npz", health_interval=0)
        sup._hup = True
        ticks = []

        def reap_twice():
            ticks.append(1)
            if len(ticks) >= 2:
                sup._stop = True
            return True

        monkeypatch.setattr(sup, "_reap", reap_twice)
        assert sup._supervise() == 0
        assert "SIGHUP fanned out" in capsys.readouterr().err


class TestHealthProbe:
    def test_probe_failure_is_logged_not_fatal(self, tmp_path, capsys):
        sup = Supervisor(tmp_path / "run.npz")
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        sup._port = probe.getsockname()[1]
        probe.close()  # nothing listens there anymore
        sup._probe_health()
        assert "health probe failed" in capsys.readouterr().err

    def test_probe_logs_non_200_answers(self, tmp_path, capsys):
        sup = Supervisor(tmp_path / "run.npz")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        sup._port = listener.getsockname()[1]

        def answer_500():
            conn, _ = listener.accept()
            conn.recv(1024)
            conn.sendall(
                b"HTTP/1.1 500 Internal Server Error\r\n"
                b"Content-Length: 0\r\nConnection: close\r\n\r\n"
            )
            conn.close()

        server = threading.Thread(target=answer_500, daemon=True)
        server.start()
        try:
            sup._probe_health()
        finally:
            server.join(timeout=5)
            listener.close()
        assert "health probe answered HTTP 500" in capsys.readouterr().err
