"""Tests of the rule-serving daemon (:mod:`repro.serve`).

Three layers, mirroring the package: the LRU answer cache in
isolation, the transport-free :class:`ServeApp` request handling
checked against direct :class:`RuleArrays` / :class:`BasisDerivation`
oracles, and the live stdlib HTTP server — including an 8+-thread
client swarm and store reloads (SIGHUP and mtime) that must never
serve a torn read.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from repro.analysis.metrics import summarize_rules
from repro.core.derivation import BasisDerivation
from repro.core.dg_basis import build_duquenne_guigues_basis
from repro.core.itemset import Itemset
from repro.core.luxenburger import LuxenburgerBasis
from repro.data.context import TransactionDatabase
from repro.errors import DerivationError, InvalidParameterError
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.serve import LRUCache, ServeApp, serve_in_thread
from repro.store import save_run

FIG1_TRANSACTIONS = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


def build_store(path, minconf: float = 0.7, minsup: float = 0.4):
    """Save a Fig. 1 run into *path* and return the path."""
    db = TransactionDatabase(FIG1_TRANSACTIONS, name="fig1")
    mining = mine_itemsets(db, minsup)
    artifacts = build_rule_artifacts(mining, minconf=minconf)
    return save_artifacts(path, mining, artifacts)


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    return build_store(tmp_path_factory.mktemp("serve") / "fig1.npz")


@pytest.fixture(scope="module")
def app(store_path):
    return ServeApp(store_path, watch=False)


@pytest.fixture(scope="module")
def live(app):
    server, _thread = serve_in_thread(app)
    yield server
    server.shutdown()
    server.server_close()


def http_request(server, method, path, body=None):
    """One HTTP round trip; returns ``(status, decoded_json)``."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(-1)

    def test_hit_miss_accounting(self):
        cache = LRUCache(4)
        assert cache.get("a") == (False, None)
        cache.put("a", 1)
        assert cache.get("a") == (True, 1)
        assert cache.stats() == {
            "hits": 1, "misses": 1, "evictions": 0, "size": 1, "capacity": 4,
        }

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # promote "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") == (False, None)
        assert cache.get("a") == (True, 1)
        assert cache.get("c") == (True, 3)
        assert cache.stats()["evictions"] == 1

    def test_eviction_counter_accumulates(self):
        cache = LRUCache(2)
        for key in range(6):
            cache.put(key, key)
        assert cache.stats()["evictions"] == 4
        assert len(cache) == 2
        # overwriting a resident key is not an eviction
        cache.put(5, -5)
        assert cache.stats()["evictions"] == 4
        # clear() drops entries but keeps the lifetime counters
        cache.clear()
        assert cache.stats()["evictions"] == 4

    def test_evictions_surface_in_metrics(self, store_path):
        app = ServeApp(store_path, cache_size=1, watch=False)
        name = next(iter(app.loaded.bases))
        app.handle("GET", f"/bases/{name}/rules")
        app.handle("GET", f"/bases/{name}/rules", {"limit": "1"})
        app.handle("GET", f"/bases/{name}/rules", {"limit": "2"})
        _, metrics = app.handle("GET", "/metrics")
        assert metrics["cache"]["evictions"] == 2
        assert metrics["cache"]["capacity"] == 1

    def test_zero_capacity_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") == (False, None)
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["size"] == 0


# ----------------------------------------------------------------------
# App-level endpoints vs direct oracles
# ----------------------------------------------------------------------
class TestHealthAndBases:
    def test_healthz(self, app, store_path):
        status, payload = app.handle("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["store"] == str(store_path)
        assert payload["dataset"] == "fig1"
        assert payload["generation"] == 1
        assert payload["derivation"] == "ready"
        assert set(payload["bases"]) == set(app.loaded.bases)

    def test_bases_statistics_match_summarize_rules(self, app):
        status, payload = app.handle("GET", "/bases")
        assert status == 200
        for row in payload["bases"]:
            served = app.loaded.bases[row["name"]]
            expected = summarize_rules(served.arrays)
            for key, value in expected.items():
                assert row[key] == pytest.approx(value)

    def test_unknown_route_404(self, app):
        status, payload = app.handle("GET", "/nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_405(self, app):
        name = next(iter(app.loaded.bases))
        status, payload = app.handle("POST", f"/bases/{name}/rules")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        status, payload = app.handle("GET", "/derive")
        assert status == 405


class TestRulesEndpoint:
    def rules(self, app, name, **params):
        return app.handle(
            "GET", f"/bases/{name}/rules",
            {key: str(value) for key, value in params.items()},
        )

    def test_unknown_basis_404(self, app):
        status, payload = self.rules(app, "nope")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_full_page_matches_canonical_arrays(self, app):
        for name, served in app.loaded.bases.items():
            status, payload = self.rules(app, name, limit=1000)
            assert status == 200
            arrays = served.arrays
            assert payload["total"] == len(arrays)
            assert payload["count"] == len(arrays)
            for row, rule in enumerate(payload["rules"]):
                antecedent = [
                    arrays.universe[i]
                    for i in arrays.antecedents.row_indices(row)
                ]
                consequent = [
                    arrays.universe[i]
                    for i in arrays.consequents.row_indices(row)
                ]
                assert rule["antecedent"] == antecedent
                assert rule["consequent"] == consequent
                assert rule["support"] == pytest.approx(arrays.support[row])
                assert rule["confidence"] == pytest.approx(
                    arrays.confidence[row]
                )

    def test_support_confidence_filters_match_numpy_oracle(self, app):
        name = "all" if "all" in app.loaded.bases else next(iter(app.loaded.bases))
        arrays = app.loaded.bases[name].arrays
        status, payload = self.rules(
            app, name, min_support=0.6, min_confidence=0.75, limit=1000
        )
        assert status == 200
        expected = int(
            ((arrays.support >= 0.6) & (arrays.confidence >= 0.75)).sum()
        )
        assert payload["total"] == expected
        for rule in payload["rules"]:
            assert rule["support"] >= 0.6
            assert rule["confidence"] >= 0.75

    def test_kind_filter_matches_exact_mask(self, app):
        for name, served in app.loaded.bases.items():
            exact = int(served.arrays.exact_mask().sum())
            _, exact_page = self.rules(app, name, kind="exact", limit=1000)
            _, approx_page = self.rules(app, name, kind="approximate", limit=1000)
            assert exact_page["total"] == exact
            assert approx_page["total"] == len(served.arrays) - exact
            assert all(
                rule["confidence"] == 1.0 for rule in exact_page["rules"]
            )
            assert all(
                rule["confidence"] < 1.0 for rule in approx_page["rules"]
            )

    def test_item_filters_match_python_oracle(self, app):
        name = "all" if "all" in app.loaded.bases else next(iter(app.loaded.bases))
        _, full = self.rules(app, name, limit=1000)
        for params, predicate in [
            ({"items": "b,e"}, lambda r: {"b", "e"}
             <= set(r["antecedent"]) | set(r["consequent"])),
            ({"antecedent_items": "c"}, lambda r: "c" in r["antecedent"]),
            ({"consequent_items": "e"}, lambda r: "e" in r["consequent"]),
        ]:
            status, payload = self.rules(app, name, limit=1000, **params)
            assert status == 200
            expected = [r for r in full["rules"] if predicate(r)]
            assert payload["rules"] == expected

    def test_item_filter_outside_universe_matches_nothing(self, app):
        name = next(iter(app.loaded.bases))
        status, payload = self.rules(app, name, items="zebra")
        assert status == 200
        assert payload["total"] == 0

    def test_pagination_stitches_back_together(self, app):
        name = "all" if "all" in app.loaded.bases else next(iter(app.loaded.bases))
        _, full = self.rules(app, name, limit=1000)
        stitched, offset = [], 0
        while True:
            _, page = self.rules(app, name, limit=7, offset=offset)
            stitched.extend(page["rules"])
            offset += 7
            if page["count"] < 7:
                break
        assert stitched == full["rules"]

    def test_offset_past_end_is_empty(self, app):
        name = next(iter(app.loaded.bases))
        status, payload = self.rules(app, name, offset=10_000)
        assert status == 200
        assert payload["count"] == 0 and payload["rules"] == []

    @pytest.mark.parametrize(
        "params",
        [
            {"limit": 0},
            {"limit": 1001},
            {"limit": "many"},
            {"offset": -1},
            {"min_support": "high"},
            {"min_support": 1.5},
            {"kind": "fuzzy"},
            {"frobnicate": 1},
            {"items": ""},
        ],
    )
    def test_bad_parameters_400(self, app, params):
        name = next(iter(app.loaded.bases))
        status, payload = self.rules(app, name, **params)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"


class TestDeriveEndpoint:
    def derive(self, app, body):
        return app.handle(
            "POST", "/derive",
            body=json.dumps(body).encode() if isinstance(body, dict) else body,
        )

    @pytest.fixture(scope="class")
    def oracle(self, store_path):
        from repro.store import load_run

        stored = load_run(store_path)
        dg = build_duquenne_guigues_basis(stored.frequent, stored.closed)
        luxenburger = LuxenburgerBasis(
            stored.closed, minconf=0.0, transitive_reduction=True,
            lattice=stored.lattice,
        )
        return BasisDerivation(
            dg, luxenburger, n_objects=stored.closed.n_objects
        )

    def test_derivable_rule_matches_oracle(self, app, oracle):
        status, payload = self.derive(
            app, {"antecedent": ["c"], "consequent": ["b", "e"]}
        )
        assert status == 200
        rule = oracle.derive_rule(Itemset(["c"]), Itemset(["b", "e"]))
        assert payload["derivable"] is True
        assert payload["rule"]["support"] == pytest.approx(rule.support)
        assert payload["rule"]["confidence"] == pytest.approx(rule.confidence)
        assert payload["rule"]["antecedent"] == ["c"]
        assert payload["rule"]["consequent"] == ["b", "e"]

    def test_every_served_rule_is_derivable(self, app):
        for name, served in app.loaded.bases.items():
            _, page = app.handle(
                "GET", f"/bases/{name}/rules", {"limit": "1000"}
            )
            for rule in page["rules"]:
                if not rule["antecedent"]:
                    continue
                status, payload = self.derive(app, {
                    "antecedent": rule["antecedent"],
                    "consequent": rule["consequent"],
                })
                assert status == 200, (name, rule, payload)
                assert payload["rule"]["support"] == pytest.approx(
                    rule["support"]
                )
                assert payload["rule"]["confidence"] == pytest.approx(
                    rule["confidence"]
                )

    def test_not_derivable_422(self, app, oracle):
        body = {"antecedent": ["a"], "consequent": ["z"]}
        with pytest.raises(DerivationError):
            oracle.derive_rule(Itemset(["a"]), Itemset(["z"]))
        status, payload = self.derive(app, body)
        assert status == 422
        assert payload["derivable"] is False
        assert payload["error"]["code"] == "not_derivable"

    @pytest.mark.parametrize(
        "body",
        [
            None,
            b"",
            b"not json",
            b"[1, 2]",
            {"antecedent": ["a"]},  # missing/empty consequent
            {"antecedent": ["a"], "consequent": []},
            {"antecedent": "a", "consequent": ["c"]},
            {"antecedent": [True], "consequent": ["c"]},
            {"antecedent": ["a"], "consequent": ["c"], "confidence": 1},
        ],
    )
    def test_bad_bodies_400(self, app, body):
        status, payload = self.derive(app, body)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_store_without_families_503(self, app, tmp_path):
        name = next(iter(app.loaded.bases))
        arrays = app.loaded.bases[name].arrays
        path = tmp_path / "rules-only.npz"
        save_run(path, rule_arrays={name: arrays})
        bare = ServeApp(path, watch=False)
        status, payload = bare.handle(
            "POST", "/derive",
            body=b'{"antecedent": ["a"], "consequent": ["c"]}',
        )
        assert status == 503
        assert payload["error"]["code"] == "derivation_unavailable"
        # the rule pages still serve fine without the families
        status, page = bare.handle("GET", f"/bases/{name}/rules")
        assert status == 200
        assert page["total"] == len(arrays)


class TestRecommendEndpoint:
    def recommend(self, app, payload):
        body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        return app.handle("POST", "/recommend", body=body)

    def test_answer_matches_object_oracle(self, app):
        from repro.recommend import recommend_reference

        for basket in ([], ["a"], ["b", "c"], ["a", "b", "c", "e"]):
            status, payload = self.recommend(app, {"basket": basket, "k": 3})
            assert status == 200
            basis = app.loaded.bases[payload["basis"]]
            expected = recommend_reference(basis.arrays, basket, 3)
            assert payload["matched_rules"] == expected.matched_rules
            assert payload["known_items"] == list(expected.known_items)
            assert payload["recommendations"] == [
                {
                    "items": list(rec.items),
                    "confidence": rec.confidence,
                    "support": rec.support,
                    "support_count": rec.support_count,
                    "antecedent": list(rec.antecedent),
                    "consequent": list(rec.consequent),
                }
                for rec in expected.recommendations
            ]

    def test_default_basis_follows_preference(self, app):
        from repro.serve.app import RECOMMEND_BASIS_PREFERENCE

        status, payload = self.recommend(app, {"basket": ["a"]})
        assert status == 200
        expected = next(
            name for name in RECOMMEND_BASIS_PREFERENCE if name in app.loaded.bases
        )
        assert payload["basis"] == expected
        assert payload["k"] == 5  # the documented default

    def test_explicit_basis_and_every_stored_basis_answers(self, app):
        for name in app.loaded.bases:
            status, payload = self.recommend(app, {"basket": ["b", "c"], "basis": name})
            assert status == 200
            assert payload["basis"] == name

    def test_unknown_items_are_reported_not_rejected(self, app):
        status, payload = self.recommend(app, {"basket": ["a", "zz"]})
        assert status == 200
        assert payload["basket"] == ["a", "zz"]
        assert payload["known_items"] == ["a"]

    def test_healthz_names_the_default_basis(self, app):
        _, health = app.handle("GET", "/healthz")
        assert health["recommend_basis"] == app.loaded.recommend_basis
        assert health["recommend_basis"] in app.loaded.bases

    def test_unknown_basis_404(self, app):
        status, payload = self.recommend(app, {"basket": ["a"], "basis": "nope"})
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_405(self, app):
        status, payload = app.handle("GET", "/recommend")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"

    @pytest.mark.parametrize(
        "body",
        [
            b"",
            b"not json",
            b"[]",
            b"{}",
            b'{"basket": "a"}',
            b'{"basket": [true]}',
            b'{"basket": ["a"], "k": "three"}',
            b'{"basket": ["a"], "k": 0}',
            b'{"basket": ["a"], "k": 101}',
            b'{"basket": ["a"], "basis": 3}',
            b'{"basket": ["a"], "items": ["b"]}',
        ],
    )
    def test_bad_bodies_400(self, app, body):
        status, payload = self.recommend(app, body)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_rules_only_store_still_recommends(self, app, tmp_path):
        name = next(iter(app.loaded.bases))
        arrays = app.loaded.bases[name].arrays
        path = tmp_path / "rules-only.npz"
        save_run(path, rule_arrays={name: arrays})
        bare = ServeApp(path, watch=False)
        status, payload = bare.handle(
            "POST", "/recommend", body=b'{"basket": ["b", "c"]}'
        )
        assert status == 200
        assert payload["basis"] == name

    def test_store_without_bases_503(self, tmp_path):
        db = TransactionDatabase(FIG1_TRANSACTIONS, name="fig1")
        path = save_run(tmp_path / "no-bases.npz", database=db, name="fig1")
        bare = ServeApp(path, watch=False)
        _, health = bare.handle("GET", "/healthz")
        assert health["recommend_basis"] is None
        status, payload = bare.handle("POST", "/recommend", body=b'{"basket": ["a"]}')
        assert status == 503
        assert payload["error"]["code"] == "recommendation_unavailable"

    def test_basket_canonicalization_shares_cache_entries(self, store_path):
        app = ServeApp(store_path, watch=False)
        first = self.recommend(app, {"basket": ["b", "a"]})
        second = self.recommend(app, {"basket": ["a", "b", "a"]})
        assert first == second
        assert app.cache.stats()["hits"] == 1

    def test_metrics_count_the_route(self, store_path):
        app = ServeApp(store_path, watch=False)
        self.recommend(app, {"basket": ["a"]})
        self.recommend(app, b"not json")
        _, metrics = app.handle("GET", "/metrics")
        route = metrics["endpoints"]["POST /recommend"]
        assert route["count"] == 2
        assert route["errors"] == 1


class TestMetricsAndCache:
    def test_counters_and_cache_hits(self, store_path):
        app = ServeApp(store_path, watch=False)
        name = next(iter(app.loaded.bases))
        for _ in range(3):
            status, _ = app.handle("GET", f"/bases/{name}/rules")
            assert status == 200
        status, metrics = app.handle("GET", "/metrics")
        assert status == 200
        assert metrics["requests_total"] == 3
        route = metrics["endpoints"]["GET /bases/{name}/rules"]
        assert route["count"] == 3
        assert route["errors"] == 0
        assert route["latency_seconds_max"] >= route["latency_seconds_mean"]
        assert metrics["cache"] == {
            "hits": 2, "misses": 1, "evictions": 0, "size": 1,
            "capacity": 1024,
        }

    def test_errors_are_counted(self, store_path):
        app = ServeApp(store_path, watch=False)
        app.handle("GET", "/bases/nope/rules")
        _, metrics = app.handle("GET", "/metrics")
        assert metrics["errors_total"] == 1
        assert metrics["endpoints"]["GET /bases/{name}/rules"]["errors"] == 1

    def test_cache_size_zero_never_hits(self, store_path):
        app = ServeApp(store_path, cache_size=0, watch=False)
        name = next(iter(app.loaded.bases))
        for _ in range(3):
            app.handle("GET", f"/bases/{name}/rules")
        _, metrics = app.handle("GET", "/metrics")
        assert metrics["cache"]["hits"] == 0
        assert metrics["cache"]["misses"] == 3

    def test_derive_answers_are_cached(self, store_path):
        app = ServeApp(store_path, watch=False)
        body = b'{"antecedent": ["c"], "consequent": ["b", "e"]}'
        first = app.handle("POST", "/derive", body=body)
        second = app.handle("POST", "/derive", body=body)
        assert first == second
        assert app.cache.stats()["hits"] == 1


# ----------------------------------------------------------------------
# Live HTTP server
# ----------------------------------------------------------------------
class TestHTTPServer:
    def test_get_matches_app_answer(self, app, live):
        for path in ("/healthz", "/bases", "/metrics"):
            status, payload = http_request(live, "GET", path)
            assert status == 200
            if path != "/metrics":  # metrics counters move between calls
                assert app.handle("GET", path.split("?")[0])[1] == payload

    def test_rules_with_query_string(self, app, live):
        name = next(iter(app.loaded.bases))
        status, payload = http_request(
            live, "GET", f"/bases/{name}/rules?limit=2&min_confidence=0.7"
        )
        expected = app.handle(
            "GET", f"/bases/{name}/rules",
            {"limit": "2", "min_confidence": "0.7"},
        )
        assert (status, payload) == expected

    def test_post_derive(self, live):
        status, payload = http_request(
            live, "POST", "/derive",
            body=b'{"antecedent": ["c"], "consequent": ["b", "e"]}',
        )
        assert status == 200
        assert payload["derivable"] is True

    def test_post_recommend(self, app, live):
        status, payload = http_request(
            live, "POST", "/recommend", body=b'{"basket": ["b", "c"], "k": 3}'
        )
        expected = app.handle("POST", "/recommend", body=b'{"basket": ["b", "c"], "k": 3}')
        assert (status, payload) == expected
        assert payload["recommendations"]

    def test_error_statuses_pass_through(self, live):
        assert http_request(live, "GET", "/nope")[0] == 404
        status, payload = http_request(live, "POST", "/derive", body=b"{")
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_oversized_body_413(self, live):
        status, payload = http_request(
            live, "POST", "/derive", body=b" " * ((1 << 20) + 1)
        )
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_keep_alive_connection_reuse(self, live):
        host, port = live.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for _ in range(5):
                connection.request("GET", "/healthz")
                response = connection.getresponse()
                assert response.status == 200
                response.read()
        finally:
            connection.close()

    def test_concurrent_swarm_matches_oracle(self, app, live):
        """8 client threads, every answer equal to the direct app answer."""
        name = "all" if "all" in app.loaded.bases else next(iter(app.loaded.bases))
        queries = [
            ("GET", "/healthz", None),
            ("GET", "/bases", None),
            ("GET", f"/bases/{name}/rules?limit=1000", None),
            ("GET", f"/bases/{name}/rules?kind=exact&limit=1000", None),
            ("GET", f"/bases/{name}/rules?min_confidence=0.75&limit=1000", None),
            ("POST", "/derive",
             b'{"antecedent": ["c"], "consequent": ["b", "e"]}'),
            ("POST", "/recommend", b'{"basket": ["b", "c"], "k": 3}'),
        ]
        expected = {}
        for method, path, body in queries:
            bare, _, query = path.partition("?")
            params = dict(
                pair.split("=") for pair in query.split("&") if pair
            )
            expected[(method, path)] = app.handle(method, bare, params, body)

        failures = []
        barrier = threading.Barrier(8)

        def swarm() -> None:
            host, port = live.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=30)
            barrier.wait()
            try:
                for round_index in range(10):
                    for method, path, body in queries:
                        headers = (
                            {"Content-Type": "application/json"} if body else {}
                        )
                        connection.request(method, path, body=body,
                                           headers=headers)
                        response = connection.getresponse()
                        got = (response.status, json.loads(response.read()))
                        if got != expected[(method, path)]:
                            failures.append((method, path, got))
            finally:
                connection.close()

        threads = [threading.Thread(target=swarm) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        _, metrics = app.handle("GET", "/metrics")
        assert metrics["cache"]["hits"] > 0


# ----------------------------------------------------------------------
# Reload behaviour
# ----------------------------------------------------------------------
class TestReload:
    def test_sighup_style_reload_swaps_generation(self, tmp_path):
        path = build_store(tmp_path / "run.npz", minconf=0.7)
        app = ServeApp(path, watch=False)
        assert app.handle("GET", "/healthz")[1]["generation"] == 1
        build_store(tmp_path / "run.npz", minconf=0.5)
        # watch=False: the replaced file alone must NOT trigger a reload
        assert app.handle("GET", "/healthz")[1]["generation"] == 1
        app.request_reload()
        health = app.handle("GET", "/healthz")[1]
        assert health["generation"] == 2
        assert health["minconf"] == 0.5

    def test_mtime_watch_reloads_on_replace(self, tmp_path):
        path = build_store(tmp_path / "run.npz", minconf=0.7)
        app = ServeApp(path, watch=True)
        _, before = app.handle("GET", "/bases")
        sidecar = build_store(tmp_path / "run.npz.new", minconf=0.5)
        os.replace(sidecar, path)
        _, after = app.handle("GET", "/bases")
        assert after["generation"] == 2
        assert after["minconf"] == 0.5
        assert before["minconf"] == 0.7

    def test_reload_clears_the_answer_cache(self, tmp_path):
        path = build_store(tmp_path / "run.npz", minconf=0.7)
        app = ServeApp(path, watch=False)
        name = next(iter(app.loaded.bases))
        app.handle("GET", f"/bases/{name}/rules")
        app.handle("GET", f"/bases/{name}/rules")
        assert app.cache.stats()["hits"] == 1
        app.request_reload()
        _, page = app.handle("GET", f"/bases/{name}/rules")
        assert page["generation"] == 2
        stats = app.cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 2

    def test_broken_replacement_keeps_serving(self, tmp_path):
        path = build_store(tmp_path / "run.npz", minconf=0.7)
        app = ServeApp(path, watch=True)
        app.handle("GET", "/healthz")
        path.write_bytes(b"this is not an npz container")
        for _ in range(3):
            status, health = app.handle("GET", "/healthz")
            assert status == 200
            assert health["generation"] == 1  # old snapshot still serving
        _, metrics = app.handle("GET", "/metrics")
        assert metrics["reload_failures"] == 1  # broken file tried only once
        assert metrics["last_reload_error"]
        # a good replacement afterwards recovers
        sidecar = build_store(tmp_path / "run.npz.new", minconf=0.5)
        os.replace(sidecar, path)
        _, health = app.handle("GET", "/healthz")
        assert health["generation"] == 2
        assert health["minconf"] == 0.5

    def test_no_torn_reads_under_concurrent_reload(self, tmp_path):
        """Swarm queries while the store is swapped: every answer must be
        internally consistent with exactly one store generation."""
        path = build_store(tmp_path / "run.npz", minconf=0.7)
        variant_a = build_store(tmp_path / "a.npz", minconf=0.7)
        variant_b = build_store(tmp_path / "b.npz", minconf=0.5)
        app = ServeApp(path, watch=True)

        name = "all" if "all" in app.loaded.bases else next(iter(app.loaded.bases))
        request = ("GET", f"/bases/{name}/rules", {"limit": "1000"})

        def strip_generation(page: dict) -> dict:
            return {key: value for key, value in page.items()
                    if key != "generation"}

        answers = [
            strip_generation(ServeApp(variant, watch=False).handle(*request)[1])
            for variant in (variant_a, variant_b)
        ]
        assert answers[0] != answers[1]  # the swap must be observable

        failures = []
        generations = []
        stop = threading.Event()

        def reader() -> None:
            last_generation = 0
            while not stop.is_set():
                status, page = app.handle(*request)
                if status != 200:
                    failures.append(("status", status, page))
                    return
                if strip_generation(page) not in answers:
                    failures.append(("torn", page))
                    return
                if page["generation"] < last_generation:
                    failures.append(("generation went backwards", page))
                    return
                last_generation = page["generation"]
            generations.append(last_generation)

        threads = [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        for source in (variant_b, variant_a, variant_b, variant_a, variant_b):
            sidecar = tmp_path / "swap.npz"
            sidecar.write_bytes(source.read_bytes())
            os.replace(sidecar, path)
            time.sleep(0.05)
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        assert app.handle("GET", "/healthz")[1]["generation"] >= 2
