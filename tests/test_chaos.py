"""Chaos suite: the supervised multi-process daemon under injected faults.

Every test forks a real ``repro serve --processes N`` supervisor as a
subprocess and attacks it the way production would: workers crashing
mid-request (``REPRO_FAULTS``), corrupted store replacements behind a
SIGHUP, graceful SIGTERM drains with requests in flight, and crash
loops.  All waits are bounded — the suite cannot hang, only fail.

The determinism contract rides along: any ``--processes`` count must
serve byte-identical responses.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data.context import TransactionDatabase
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.testing import wait_until_healthy

pytestmark = pytest.mark.chaos

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

FIG1 = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


@pytest.fixture()
def store_path(tmp_path):
    path = tmp_path / "fig1.npz"
    db = TransactionDatabase(FIG1, name="fig1")
    mining = mine_itemsets(db, minsup=0.4)
    return save_artifacts(path, mining, build_rule_artifacts(mining, 0.7))


def serve_env(**extra: str) -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    env.update(extra)
    return env


def spawn(store_path, processes, env, *args):
    """Start a serve daemon subprocess; returns ``(proc, port)``."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--store", str(store_path), "--port", "0",
            "--processes", str(processes), *args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    match = re.search(r"http://[^:]+:(\d+)", line)
    if match is None:
        proc.kill()
        raise AssertionError(
            f"no serving banner; got {line!r}, stderr: {proc.stderr.read()}"
        )
    port = int(match.group(1))
    wait_until_healthy("127.0.0.1", port, timeout=60)
    return proc, port


def terminate(proc, timeout=30):
    """SIGTERM the daemon and return its exit code (SIGKILL backstop)."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
        raise


def request(port, method, path, body=None, timeout=30):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def request_with_retries(port, method, path, body=None, retries=8):
    """Client-side retry loop mirroring docs/operations.md guidance."""
    last = None
    for attempt in range(retries + 1):
        if attempt:
            time.sleep(min(1.0, 0.05 * 2 ** (attempt - 1)))
        try:
            status, payload = request(port, method, path, body)
        except (OSError, http.client.HTTPException) as exc:
            last = exc
            continue
        if status == 503:
            last = f"503: {payload[:120]!r}"
            continue
        return status, payload
    raise AssertionError(f"retries exhausted for {method} {path}: {last}")


class TestWorkerChurn:
    def test_crashing_workers_restart_and_clients_survive(self, store_path):
        """Workers crash every 15th request; retrying clients see no error."""
        env = serve_env(
            REPRO_FAULTS="serve.request:crash:15",
            REPRO_SUPERVISOR_MAX_RESTARTS="1000",
            REPRO_SUPERVISOR_BACKOFF_BASE="0.02",
        )
        proc, port = spawn(store_path, 2, env)
        try:
            for i in range(120):
                status, _payload = request_with_retries(
                    port, "GET", f"/bases/dg/rules?limit={1 + i % 5}"
                )
                assert status == 200
            _status, payload = request_with_retries(port, "GET", "/metrics")
            metrics = json.loads(payload)
            assert metrics["worker_restarts_total"] > 0
        finally:
            assert terminate(proc) == 0

    def test_worker_killed_externally_is_replaced(self, store_path):
        env = serve_env(REPRO_SUPERVISOR_BACKOFF_BASE="0.02")
        proc, port = spawn(store_path, 2, env)
        try:
            kids = [
                int(pid)
                for pid in subprocess.run(
                    ["pgrep", "-P", str(proc.pid)],
                    capture_output=True, text=True,
                ).stdout.split()
            ]
            assert len(kids) == 2
            os.kill(kids[0], signal.SIGKILL)
            deadline = time.monotonic() + 30
            restarts = 0
            while time.monotonic() < deadline:
                _status, payload = request_with_retries(
                    port, "GET", "/metrics"
                )
                restarts = json.loads(payload)["worker_restarts_total"]
                if restarts:
                    break
                time.sleep(0.1)
            assert restarts == 1
        finally:
            assert terminate(proc) == 0


class TestCrashLoop:
    def test_boot_looping_worker_exits_nonzero(self, store_path, tmp_path):
        env = serve_env(
            REPRO_FAULTS="worker.start:crash",
            REPRO_SUPERVISOR_MAX_RESTARTS="3",
            REPRO_SUPERVISOR_BACKOFF_BASE="0.02",
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.cli", "serve",
                "--store", str(store_path), "--port", "0", "--processes", "2",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            code = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
        stderr = proc.stderr.read()
        assert code == 3, stderr
        assert "crash loop detected" in stderr
        assert "recent exit" in stderr


class TestReloadUnderCorruption:
    def test_sighup_with_corrupt_store_keeps_old_generation(self, store_path):
        # --no-watch so SIGHUP is the only reload trigger; otherwise the
        # mtime watcher races it and generations differ per worker.
        proc, port = spawn(store_path, 2, serve_env(), "--no-watch")
        try:
            good = store_path.read_bytes()
            store_path.write_bytes(good[: len(good) // 2])
            os.kill(proc.pid, signal.SIGHUP)

            deadline = time.monotonic() + 30
            failures = 0
            while time.monotonic() < deadline and failures < 2:
                failures = 0
                for _ in range(8):  # hit both workers with high odds
                    _s, payload = request_with_retries(port, "GET", "/metrics")
                    metrics = json.loads(payload)
                    assert metrics["generation"] == 1  # never a broken gen
                    if metrics["integrity_failures"] >= 1:
                        failures += 1
                time.sleep(0.1)
            assert failures >= 2  # every worker kept the old snapshot

            # Repair + SIGHUP: both workers advance to generation 2.
            store_path.write_bytes(good)
            os.kill(proc.pid, signal.SIGHUP)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                gens = set()
                for _ in range(8):
                    _s, payload = request_with_retries(port, "GET", "/healthz")
                    gens.add(json.loads(payload)["generation"])
                if gens == {2}:
                    break
                time.sleep(0.1)
            assert gens == {2}
        finally:
            assert terminate(proc) == 0


class TestGracefulDrain:
    def test_sigterm_finishes_inflight_requests(self, store_path):
        env = serve_env(REPRO_FAULTS="serve.request:slow:1.0")
        proc, port = spawn(store_path, 2, env)
        results = []

        def slow_request():
            results.append(request(port, "GET", "/bases/dg/rules"))

        import threading

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.3)  # request is now inside the 1s-slow handler
        assert terminate(proc) == 0
        thread.join(timeout=30)
        assert results and results[0][0] == 200


class TestDeterminismAcrossProcessCounts:
    PROBES = [
        ("GET", "/bases", None),
        ("GET", "/bases/dg/rules", None),
        ("GET", "/bases/all/rules?min_confidence=0.75&limit=3&offset=1", None),
        ("POST", "/derive", json.dumps(
            {"antecedent": ["c"], "consequent": ["b", "e"]})),
        ("POST", "/recommend", json.dumps({"basket": ["b", "c"], "k": 3})),
    ]

    def collect(self, store_path, processes):
        proc, port = spawn(store_path, processes, serve_env())
        try:
            answers = []
            for method, path, body in self.PROBES:
                # Sample repeatedly so multiple workers answer.
                seen = {
                    request_with_retries(port, method, path, body)
                    for _ in range(4 if processes > 1 else 1)
                }
                assert len(seen) == 1  # workers agree with each other
                answers.append(seen.pop())
            return answers
        finally:
            assert terminate(proc) == 0

    def test_responses_byte_identical_1p_vs_3p(self, store_path):
        assert self.collect(store_path, 1) == self.collect(store_path, 3)
