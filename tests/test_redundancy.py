"""Tests for the redundancy analysis helpers."""

from __future__ import annotations

import pytest

from repro import build_duquenne_guigues_basis
from repro.algorithms.rule_generation import generate_all_rules, generate_exact_rules
from repro.core.itemset import Itemset
from repro.core.luxenburger import LuxenburgerBasis
from repro.core.redundancy import (
    ReductionReport,
    implication_closure,
    minimal_cover_check,
    redundant_exact_rules,
    reduction_report,
)
from repro.core.rules import AssociationRule, RuleSet


def exact(antecedent, consequent, support=0.5):
    return AssociationRule(
        Itemset(antecedent), Itemset(consequent), support=support, confidence=1.0
    )


class TestImplicationClosure:
    def test_single_application(self):
        rules = RuleSet([exact("a", "b")])
        assert implication_closure(Itemset("a"), rules) == Itemset("ab")

    def test_chained_application(self):
        rules = RuleSet([exact("a", "b"), exact("b", "c"), exact("cd", "e")])
        assert implication_closure(Itemset("a"), rules) == Itemset("abc")
        assert implication_closure(Itemset("ad"), rules) == Itemset("abcde")

    def test_approximate_rules_are_ignored(self):
        rules = RuleSet(
            [AssociationRule(Itemset("a"), Itemset("b"), support=0.5, confidence=0.5)]
        )
        assert implication_closure(Itemset("a"), rules) == Itemset("a")

    def test_fixpoint_of_unrelated_itemset(self):
        rules = RuleSet([exact("a", "b")])
        assert implication_closure(Itemset("z"), rules) == Itemset("z")


class TestRedundantExactRules:
    def test_transitive_rule_is_redundant(self):
        rules = RuleSet([exact("a", "b"), exact("b", "c"), exact("a", "c")])
        redundant = redundant_exact_rules(rules)
        assert redundant.keys() == {(Itemset("a"), Itemset("c"))}

    def test_no_redundancy_in_a_minimal_set(self):
        rules = RuleSet([exact("a", "b"), exact("c", "d")])
        assert len(redundant_exact_rules(rules)) == 0

    def test_most_naive_exact_rules_are_redundant_on_the_toy_context(
        self, toy_frequent
    ):
        naive = generate_exact_rules(toy_frequent)
        redundant = redundant_exact_rules(naive)
        assert len(redundant) > len(naive) / 2


class TestReductionReport:
    @pytest.fixture()
    def report(self, toy_db, toy_frequent, toy_closed) -> ReductionReport:
        minconf = 0.5
        all_rules = generate_all_rules(toy_frequent, minconf=minconf)
        dg = build_duquenne_guigues_basis(toy_frequent, toy_closed)
        full = LuxenburgerBasis(toy_closed, minconf=minconf, transitive_reduction=False)
        reduced = LuxenburgerBasis(toy_closed, minconf=minconf)
        return reduction_report(
            dataset="toy",
            minsup=0.4,
            minconf=minconf,
            all_exact=all_rules.exact_rules(),
            dg_basis=dg,
            all_approximate=all_rules.approximate_rules(),
            luxenburger_full=full.rules,
            luxenburger_reduced=reduced.rules,
        )

    def test_counts(self, report):
        assert report.all_rules == 50
        assert report.all_exact_rules + report.all_approximate_rules == 50
        assert report.dg_basis_size == 3
        assert report.luxenburger_reduced_size <= report.luxenburger_full_size

    def test_reduction_factors(self, report):
        assert report.exact_reduction_factor == pytest.approx(
            report.all_exact_rules / report.dg_basis_size
        )
        assert report.total_reduction_factor > 1.0
        assert report.bases_total == report.dg_basis_size + report.luxenburger_reduced_size

    def test_zero_division_guards(self):
        empty = ReductionReport(
            dataset="empty",
            minsup=0.5,
            minconf=0.5,
            all_exact_rules=0,
            dg_basis_size=0,
            all_approximate_rules=0,
            luxenburger_full_size=0,
            luxenburger_reduced_size=0,
        )
        assert empty.exact_reduction_factor == 1.0
        assert empty.approximate_reduction_factor == 1.0
        assert empty.total_reduction_factor == 1.0

    def test_infinite_factor_when_basis_is_empty_but_rules_exist(self):
        report = ReductionReport(
            dataset="x",
            minsup=0.5,
            minconf=0.5,
            all_exact_rules=10,
            dg_basis_size=0,
            all_approximate_rules=0,
            luxenburger_full_size=0,
            luxenburger_reduced_size=0,
        )
        assert report.exact_reduction_factor == float("inf")


class TestMinimalCoverCheck:
    def test_all_rules_derivable(self, toy_db, toy_frequent, toy_closed):
        dg = build_duquenne_guigues_basis(toy_frequent, toy_closed)
        naive = generate_exact_rules(toy_frequent)
        missing = minimal_cover_check(dg.rules, naive, dg.derives)
        assert missing == []

    def test_missing_rules_are_reported(self):
        basis = RuleSet([exact("a", "b")])
        target = RuleSet([exact("a", "b"), exact("c", "d")])

        def derive(antecedent, consequent):
            return consequent.issubset(implication_closure(antecedent, basis))

        missing = minimal_cover_check(basis, target, derive)
        assert [rule.key() for rule in missing] == [(Itemset("c"), Itemset("d"))]
