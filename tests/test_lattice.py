"""Tests for the iceberg lattice of frequent closed itemsets."""

from __future__ import annotations

import pytest

from repro import Close
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice


@pytest.fixture()
def toy_lattice(toy_closed) -> IcebergLattice:
    return IcebergLattice(toy_closed)


class TestStructure:
    def test_nodes_are_the_closed_itemsets(self, toy_lattice, toy_closed):
        assert set(toy_lattice.nodes()) == set(toy_closed)
        assert len(toy_lattice) == 5

    def test_hasse_edges_of_the_toy_lattice(self, toy_lattice):
        assert set(toy_lattice.hasse_edges()) == {
            (Itemset("c"), Itemset("ac")),
            (Itemset("c"), Itemset("bce")),
            (Itemset("be"), Itemset("bce")),
            (Itemset("ac"), Itemset("abce")),
            (Itemset("bce"), Itemset("abce")),
        }
        assert toy_lattice.edge_count() == 5

    def test_hasse_edges_skip_transitive_pairs(self, toy_lattice):
        # c ⊂ abce but bce / ac lie strictly in between.
        assert (Itemset("c"), Itemset("abce")) not in toy_lattice.hasse_edges()

    def test_is_transitive_reduction(self, toy_lattice):
        assert toy_lattice.is_transitive_reduction()

    def test_comparable_pairs_superset_of_hasse_edges(self, toy_lattice):
        comparable = set(toy_lattice.comparable_pairs())
        assert set(toy_lattice.hasse_edges()) <= comparable
        assert (Itemset("c"), Itemset("abce")) in comparable
        assert len(comparable) == 7

    def test_support_counts_on_nodes(self, toy_lattice):
        assert toy_lattice.support_count(Itemset("c")) == 4
        assert toy_lattice.support_count(Itemset("abce")) == 2

    def test_contains(self, toy_lattice):
        assert Itemset("ac") in toy_lattice
        assert Itemset("a") not in toy_lattice


class TestNeighbourhoods:
    def test_immediate_successors(self, toy_lattice):
        assert toy_lattice.immediate_successors(Itemset("c")) == [
            Itemset("ac"),
            Itemset("bce"),
        ]
        assert toy_lattice.immediate_successors(Itemset("abce")) == []

    def test_immediate_predecessors(self, toy_lattice):
        assert toy_lattice.immediate_predecessors(Itemset("abce")) == [
            Itemset("ac"),
            Itemset("bce"),
        ]
        assert toy_lattice.immediate_predecessors(Itemset("c")) == []

    def test_minimal_and_maximal_elements(self, toy_lattice):
        assert toy_lattice.minimal_elements() == [Itemset("c"), Itemset("be")]
        assert toy_lattice.maximal_elements() == [Itemset("abce")]

    def test_path_between_comparable_nodes(self, toy_lattice):
        path = toy_lattice.path_between(Itemset("c"), Itemset("abce"))
        assert path is not None
        assert path[0] == Itemset("c") and path[-1] == Itemset("abce")
        for lower, upper in zip(path, path[1:]):
            assert (lower, upper) in toy_lattice.hasse_edges()

    def test_path_between_incomparable_nodes_is_none(self, toy_lattice):
        assert toy_lattice.path_between(Itemset("ac"), Itemset("be")) is None
        assert toy_lattice.path_between(Itemset("be"), Itemset("ac")) is None

    def test_path_to_itself(self, toy_lattice):
        assert toy_lattice.path_between(Itemset("c"), Itemset("c")) == [Itemset("c")]

    def test_path_with_unknown_node_is_none(self, toy_lattice):
        assert toy_lattice.path_between(Itemset("a"), Itemset("abce")) is None


class TestShape:
    def test_height(self, toy_lattice):
        assert toy_lattice.height() == 2

    def test_width_by_size(self, toy_lattice):
        assert toy_lattice.width_by_size() == {1: 1, 2: 2, 3: 1, 4: 1}

    def test_to_networkx_is_a_copy(self, toy_lattice):
        graph = toy_lattice.to_networkx()
        graph.remove_node(Itemset("c"))
        assert Itemset("c") in toy_lattice

    def test_lattice_on_random_database_is_a_reduction(self, random_db):
        closed = Close(minsup=0.2).mine(random_db)
        lattice = IcebergLattice(closed)
        assert lattice.is_transitive_reduction()
        # Every Hasse edge is a strict containment with nothing in between.
        members = set(closed)
        for smaller, larger in lattice.hasse_edges():
            assert smaller.is_proper_subset(larger)
            assert not any(
                smaller.is_proper_subset(mid) and mid.is_proper_subset(larger)
                for mid in members
            )
