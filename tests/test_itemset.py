"""Unit tests for the canonical :class:`repro.core.itemset.Itemset` type."""

from __future__ import annotations


from repro.core.itemset import Itemset, powerset, proper_nonempty_subsets


class TestConstruction:
    def test_empty_constructor(self):
        assert len(Itemset()) == 0
        assert not Itemset()

    def test_empty_singleton_helper(self):
        assert Itemset.empty() == Itemset()
        assert len(Itemset.empty()) == 0

    def test_of_builds_from_positional_items(self):
        assert Itemset.of("a", "b") == Itemset(["a", "b"])

    def test_duplicates_are_collapsed(self):
        assert len(Itemset(["a", "a", "b"])) == 2

    def test_coerce_returns_same_object_for_itemset(self):
        original = Itemset("abc")
        assert Itemset.coerce(original) is original

    def test_coerce_builds_from_iterable(self):
        assert Itemset.coerce(["b", "a"]) == Itemset("ab")

    def test_string_iterates_characters(self):
        assert Itemset("bca").as_tuple() == ("a", "b", "c")

    def test_mixed_types_are_supported(self):
        mixed = Itemset([1, "a", 2])
        assert len(mixed) == 3
        assert 1 in mixed and "a" in mixed


class TestContainerProtocol:
    def test_len(self):
        assert len(Itemset("abc")) == 3

    def test_iteration_is_sorted(self):
        assert list(Itemset("cab")) == ["a", "b", "c"]

    def test_contains(self):
        assert "a" in Itemset("ab")
        assert "z" not in Itemset("ab")

    def test_bool(self):
        assert Itemset("a")
        assert not Itemset()


class TestEqualityAndOrdering:
    def test_equality_with_itemset(self):
        assert Itemset("ab") == Itemset(["b", "a"])

    def test_equality_with_frozenset(self):
        assert Itemset("ab") == frozenset({"a", "b"})

    def test_hash_matches_equality(self):
        assert hash(Itemset("ab")) == hash(Itemset(["b", "a"]))
        assert len({Itemset("ab"), Itemset("ba")}) == 1

    def test_order_is_size_first(self):
        assert Itemset("z") < Itemset("ab")

    def test_order_lexicographic_within_size(self):
        assert Itemset("ab") < Itemset("ac")

    def test_le_ge(self):
        assert Itemset("ab") <= Itemset("ab")
        assert Itemset("ac") >= Itemset("ab")

    def test_sorted_list_of_itemsets(self):
        itemsets = [Itemset("bc"), Itemset("a"), Itemset("abc"), Itemset("b")]
        assert sorted(itemsets) == [
            Itemset("a"),
            Itemset("b"),
            Itemset("bc"),
            Itemset("abc"),
        ]


class TestAlgebra:
    def test_union(self):
        assert Itemset("ab") | Itemset("bc") == Itemset("abc")

    def test_union_multiple(self):
        assert Itemset("a").union(Itemset("b"), ["c"]) == Itemset("abc")

    def test_intersection(self):
        assert Itemset("ab") & Itemset("bc") == Itemset("b")

    def test_difference(self):
        assert Itemset("abc") - Itemset("b") == Itemset("ac")

    def test_symmetric_difference(self):
        assert Itemset("ab") ^ Itemset("bc") == Itemset("ac")

    def test_add_returns_new_itemset(self):
        base = Itemset("ab")
        extended = base.add("c")
        assert extended == Itemset("abc")
        assert base == Itemset("ab")

    def test_add_existing_item_is_identity(self):
        base = Itemset("ab")
        assert base.add("a") is base

    def test_remove(self):
        assert Itemset("abc").remove("b") == Itemset("ac")

    def test_remove_missing_item_is_identity(self):
        base = Itemset("ab")
        assert base.remove("z") is base

    def test_operations_accept_plain_iterables(self):
        assert Itemset("ab").union(["c"]) == Itemset("abc")
        assert Itemset("ab").difference("a") == Itemset("b")


class TestSubsetRelations:
    def test_issubset(self):
        assert Itemset("ab").issubset(Itemset("abc"))
        assert not Itemset("ad").issubset(Itemset("abc"))

    def test_issuperset(self):
        assert Itemset("abc").issuperset(Itemset("ab"))

    def test_proper_subset_excludes_equality(self):
        assert Itemset("ab").is_proper_subset(Itemset("abc"))
        assert not Itemset("ab").is_proper_subset(Itemset("ab"))

    def test_proper_superset(self):
        assert Itemset("abc").is_proper_superset(Itemset("ab"))
        assert not Itemset("abc").is_proper_superset(Itemset("abc"))

    def test_isdisjoint(self):
        assert Itemset("ab").isdisjoint(Itemset("cd"))
        assert not Itemset("ab").isdisjoint(Itemset("bc"))

    def test_empty_is_subset_of_everything(self):
        assert Itemset().issubset(Itemset("a"))
        assert Itemset().issubset(Itemset())


class TestEnumerationHelpers:
    def test_subsets_of_size(self):
        pairs = list(Itemset("abc").subsets_of_size(2))
        assert pairs == [Itemset("ab"), Itemset("ac"), Itemset("bc")]

    def test_subsets_of_size_out_of_range(self):
        assert list(Itemset("ab").subsets_of_size(5)) == []
        assert list(Itemset("ab").subsets_of_size(-1)) == []

    def test_immediate_subsets(self):
        assert list(Itemset("abc").immediate_subsets()) == [
            Itemset("bc"),
            Itemset("ac"),
            Itemset("ab"),
        ]

    def test_proper_subsets_count(self):
        assert len(list(Itemset("abc").proper_subsets())) == 7

    def test_nonempty_proper_subsets_count(self):
        assert len(list(Itemset("abc").nonempty_proper_subsets())) == 6

    def test_powerset_size(self):
        assert len(list(powerset(Itemset("abcd")))) == 16

    def test_powerset_order_is_by_size(self):
        sizes = [len(s) for s in powerset(Itemset("abc"))]
        assert sizes == sorted(sizes)

    def test_proper_nonempty_subsets_helper(self):
        subsets = list(proper_nonempty_subsets("abc"))
        assert Itemset() not in subsets
        assert Itemset("abc") not in subsets
        assert len(subsets) == 6


class TestDisplay:
    def test_repr_round_trips_through_eval(self):
        value = Itemset("ba")
        assert eval(repr(value)) == value  # noqa: S307 - controlled input

    def test_str_of_empty(self):
        assert str(Itemset()) == "{}"

    def test_str_is_sorted(self):
        assert str(Itemset("cba")) == "{a, b, c}"

    def test_as_frozenset(self):
        assert Itemset("ab").as_frozenset() == frozenset({"a", "b"})
