"""Tests for the synthetic (Quest) and benchmark stand-in dataset generators."""

from __future__ import annotations

import pytest

from repro import Apriori, Close
from repro.data.benchmarks_data import (
    dense_benchmark_suite,
    make_c20d10k,
    make_c73d10k,
    make_categorical_dataset,
    make_census,
    make_mushroom,
)
from repro.data.synthetic import (
    QuestGenerator,
    make_quest_dataset,
    make_rule_dense_context,
    make_rule_dense_family,
    rule_dense_expected_counts,
)
from repro.errors import InvalidParameterError


class TestQuestGenerator:
    def test_deterministic_given_seed(self):
        first = QuestGenerator(seed=42, n_items=50, n_patterns=10).generate(100)
        second = QuestGenerator(seed=42, n_items=50, n_patterns=10).generate(100)
        assert first.transactions() == second.transactions()

    def test_different_seeds_differ(self):
        first = QuestGenerator(seed=1, n_items=50, n_patterns=10).generate(100)
        second = QuestGenerator(seed=2, n_items=50, n_patterns=10).generate(100)
        assert first.transactions() != second.transactions()

    def test_shape_parameters_are_respected(self):
        db = QuestGenerator(
            n_items=60, n_patterns=15, avg_transaction_size=8.0, seed=9
        ).generate(300)
        assert db.n_objects == 300
        assert db.n_items <= 60
        assert 4.0 < db.avg_transaction_size < 14.0

    def test_default_name_encodes_parameters(self):
        generator = QuestGenerator(avg_transaction_size=10, avg_pattern_size=4, seed=1)
        assert generator.default_name(10_000) == "T10I4D10K"
        assert generator.default_name(2_500) == "T10I4D2500"

    def test_make_quest_dataset_helper(self):
        db = make_quest_dataset(
            avg_transaction_size=6,
            avg_pattern_size=3,
            n_transactions=120,
            n_items=40,
            n_patterns=10,
            seed=4,
        )
        assert db.n_objects == 120
        assert db.name == "T6I3D120"

    def test_every_transaction_is_non_empty(self):
        db = QuestGenerator(seed=5, n_items=30, n_patterns=8).generate(200)
        assert all(len(transaction) >= 1 for transaction in db)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            QuestGenerator(n_items=0)
        with pytest.raises(InvalidParameterError):
            QuestGenerator(correlation=1.5)
        with pytest.raises(InvalidParameterError):
            QuestGenerator(corruption_mean=1.0)
        with pytest.raises(InvalidParameterError):
            QuestGenerator().generate(0)

    def test_sparse_data_has_closed_close_to_frequent(self):
        """Weak correlation ⇒ closed ≈ frequent (the paper's sparse regime)."""
        db = make_quest_dataset(
            avg_transaction_size=6,
            avg_pattern_size=3,
            n_transactions=400,
            n_items=60,
            n_patterns=25,
            seed=11,
        )
        frequent = Apriori(0.03).mine(db)
        closed = Close(0.03).mine(db)
        assert len(frequent) > 0
        assert len(frequent) <= 1.3 * len(closed)


class TestCategoricalGenerators:
    def test_deterministic_given_seed(self):
        first = make_categorical_dataset(50, 5, 3, seed=7)
        second = make_categorical_dataset(50, 5, 3, seed=7)
        assert first.transactions() == second.transactions()

    def test_fixed_row_width(self):
        db = make_categorical_dataset(30, 6, 4, seed=1)
        assert all(len(row) == 6 for row in db)

    def test_constant_attribute_appears_everywhere(self):
        db = make_categorical_dataset(
            40, 5, 4, n_constant_attributes=1, seed=2
        )
        assert db.support_count(["a0=v0"]) == 40

    def test_deterministic_attributes_create_equal_supports(self):
        """Deterministic class attributes ⇒ frequent ≫ closed (dense regime)."""
        db = make_categorical_dataset(
            n_objects=150,
            n_attributes=6,
            values_per_attribute=4,
            n_latent_classes=3,
            class_fidelity=0.85,
            n_deterministic_attributes=3,
            n_constant_attributes=1,
            seed=13,
        )
        frequent = Apriori(0.3).mine(db)
        closed = Close(0.3).mine(db)
        assert len(frequent) > 2 * len(closed)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            make_categorical_dataset(0, 5, 3)
        with pytest.raises(InvalidParameterError):
            make_categorical_dataset(10, 5, 3, class_fidelity=1.5)
        with pytest.raises(InvalidParameterError):
            make_categorical_dataset(10, 5, 3, n_latent_classes=0)
        with pytest.raises(InvalidParameterError):
            make_categorical_dataset(
                10, 5, 3, n_deterministic_attributes=4, n_constant_attributes=2
            )

    def test_named_stand_ins(self):
        assert make_mushroom(n_objects=100, n_attributes=6).name == "MUSHROOM*"
        assert make_c20d10k(n_objects=100).name == "C20D10K*"
        assert make_c73d10k(n_objects=100).name == "C73D10K*"
        assert make_census(n_objects=50, n_attributes=5).name == "CENSUS*"

    def test_dense_suite_contains_three_datasets(self):
        suite = dense_benchmark_suite()
        assert [db.name for db in suite] == ["MUSHROOM*", "C20D10K*", "C73D10K*"]


class TestRuleDenseGenerator:
    """The clone-chain context and its analytic closed/generator families."""

    @pytest.mark.parametrize(("chain", "multiplicity"), [(6, 2), (10, 1), (8, 3)])
    def test_analytic_family_equals_mined_family(self, chain, multiplicity):
        from repro.core.generators import GeneratorFamily

        db = make_rule_dense_context(chain, multiplicity)
        close = Close(minsup=1e-9)
        mined_closed = close.mine(db)
        closed, generators = make_rule_dense_family(chain, multiplicity)
        assert mined_closed.to_dict() == closed.to_dict()
        mined = GeneratorFamily(mined_closed, close.generators_by_closure)
        assert mined.closed_itemsets() == generators.closed_itemsets()
        for member in generators.closed_itemsets():
            assert mined.generators_of(member) == generators.generators_of(member)
        assert generators.verify_against(db) == []

    @pytest.mark.parametrize(("chain", "multiplicity"), [(12, 2), (7, 1)])
    def test_expected_counts_match_built_bases(self, chain, multiplicity):
        from repro.core.informative import GenericBasis, InformativeBasis
        from repro.core.lattice import IcebergLattice
        from repro.core.luxenburger import LuxenburgerBasis

        closed, generators = make_rule_dense_family(chain, multiplicity)
        expected = rule_dense_expected_counts(chain, multiplicity)
        assert len(closed) == expected["closed_itemsets"]
        lattice = IcebergLattice(closed)
        assert len(
            LuxenburgerBasis(closed, 0.0, transitive_reduction=False, lattice=lattice)
        ) == expected["luxenburger_full"]
        assert len(
            LuxenburgerBasis(closed, 0.0, transitive_reduction=True, lattice=lattice)
        ) == expected["luxenburger_reduced"]
        assert len(
            InformativeBasis(generators, 0.0, reduced=False, lattice=lattice)
        ) == expected["informative_full"]
        assert len(
            InformativeBasis(generators, 0.0, reduced=True, lattice=lattice)
        ) == expected["informative_reduced"]
        assert len(GenericBasis(generators)) == expected["generic"]

    def test_rule_volume_scales_into_the_e5_e6_band(self):
        # The documented knobs really reach the advertised rule volumes
        # (no bases built here — closed form only).
        default = rule_dense_expected_counts(250, 2)
        assert 9e4 < default["informative_full"] + default["luxenburger_full"] < 1e6
        large = rule_dense_expected_counts(1000, 2)
        assert 1e6 < large["informative_full"] + large["luxenburger_full"] < 2e6

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            make_rule_dense_context(1, 2)
        with pytest.raises(InvalidParameterError):
            make_rule_dense_context(5, 0)
        with pytest.raises(InvalidParameterError):
            make_rule_dense_family(0, 1)
