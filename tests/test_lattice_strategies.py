"""The lattice strategy seam: dense == packed == reference, and large n.

Three groups of guarantees:

* every order-core strategy produces identical Hasse edges, containment
  pairs, neighbourhoods and basis output on toy and random contexts;
* the automatic selector picks dense below the size threshold, packed
  above it, and honours the ``REPRO_LATTICE_STRATEGY`` override;
* the packed strategy loads a 50k-node synthetic family — beyond the
  dense memory wall — without ever building a dense ``n x n`` matrix,
  with the analytically known star structure coming out exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Close
from repro.bases import BasisContext, build_bases
from repro.core import order as order_module
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice
from repro.core.order import (
    DENSE_NODE_LIMIT,
    STRATEGY_ENV_VAR,
    resolve_strategy,
)
from repro.data.synthetic import make_star_closed_family
from repro.errors import InvalidParameterError

STRATEGIES = ("dense", "packed", "reference")


@pytest.fixture()
def mined_random(random_db):
    return Close(minsup=0.2).mine(random_db)


class TestStrategyEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_toy_edges_identical(self, toy_closed, strategy):
        lattice = IcebergLattice(toy_closed, strategy=strategy)
        baseline = IcebergLattice(toy_closed, strategy="dense")
        assert lattice.strategy == strategy
        assert lattice.hasse_edges() == baseline.hasse_edges()
        rows, cols = lattice.hasse_edge_indices()
        base_rows, base_cols = baseline.hasse_edge_indices()
        assert np.array_equal(rows, base_rows)
        assert np.array_equal(cols, base_cols)

    @pytest.mark.parametrize("strategy", ("packed", "reference"))
    def test_random_context_edges_identical(self, mined_random, strategy):
        baseline = IcebergLattice(mined_random, strategy="dense")
        lattice = IcebergLattice(mined_random, strategy=strategy)
        assert lattice.hasse_edges() == baseline.hasse_edges()
        assert sorted(lattice.comparable_pairs()) == sorted(
            baseline.comparable_pairs()
        )
        assert np.array_equal(
            lattice.edge_confidences(), baseline.edge_confidences()
        )
        assert np.array_equal(
            lattice.edge_confidences(full=True),
            baseline.edge_confidences(full=True),
        )
        assert lattice.is_transitive_reduction()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_neighbourhood_accessors_identical(self, mined_random, strategy):
        baseline = IcebergLattice(mined_random, strategy="dense")
        lattice = IcebergLattice(mined_random, strategy=strategy)
        for member in lattice.members:
            assert lattice.children_of(member) == baseline.children_of(member)
            assert lattice.parents_of(member) == baseline.parents_of(member)
            assert lattice.proper_supersets(member) == baseline.proper_supersets(
                member
            )
        assert lattice.minimal_elements() == baseline.minimal_elements()
        assert lattice.maximal_elements() == baseline.maximal_elements()

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_ancestry_and_paths_identical(self, toy_closed, strategy):
        lattice = IcebergLattice(toy_closed, strategy=strategy)
        assert lattice.is_ancestor(Itemset("c"), Itemset("abce"))
        assert not lattice.is_ancestor(Itemset("ac"), Itemset("be"))
        assert not lattice.is_ancestor(Itemset("c"), Itemset("c"))
        assert lattice.confidence_between(Itemset("c"), Itemset("ac")) == 0.75
        assert lattice.confidence_between(Itemset("ac"), Itemset("be")) is None
        path = lattice.path_between(Itemset("c"), Itemset("abce"))
        assert path is not None
        assert path[0] == Itemset("c") and path[-1] == Itemset("abce")
        for lower, upper in zip(path, path[1:]):
            assert (lower, upper) in lattice.hasse_edges()

    @pytest.mark.parametrize("strategy", ("packed", "reference"))
    def test_basis_output_identical(self, toy_db, toy_closed, strategy):
        from repro import Apriori, GeneratorFamily

        close = Close(minsup=0.4)
        closed = close.mine(toy_db)
        frequent = Apriori(minsup=0.4).mine(toy_db)
        selection = (
            "dg",
            "luxenburger",
            "luxenburger-reduced",
            "informative",
            "informative-reduced",
        )

        def build_with(lattice_strategy: str):
            context = BasisContext(
                closed=closed,
                minconf=0.5,
                frequent=frequent,
                generators=GeneratorFamily(closed, close.generators_by_closure),
                lattice_strategy=lattice_strategy,
            )
            return build_bases(context, selection)

        baseline = build_with("dense")
        candidate = build_with(strategy)
        for name in selection:
            assert set(candidate[name].rules) == set(baseline[name].rules), name

    @pytest.mark.parametrize("strategy", ("packed", "reference"))
    def test_basis_output_identical_random(self, mined_random, strategy):
        from repro.core.luxenburger import LuxenburgerBasis

        for reduced in (True, False):
            baseline = LuxenburgerBasis(
                mined_random,
                minconf=0.3,
                transitive_reduction=reduced,
                lattice_strategy="dense",
            )
            candidate = LuxenburgerBasis(
                mined_random,
                minconf=0.3,
                transitive_reduction=reduced,
                lattice_strategy=strategy,
            )
            assert set(candidate.rules) == set(baseline.rules)


class TestStrategySelection:
    def test_auto_picks_dense_below_threshold(self):
        assert resolve_strategy(0) == "dense"
        assert resolve_strategy(DENSE_NODE_LIMIT - 1) == "dense"

    def test_auto_picks_packed_at_threshold(self):
        assert resolve_strategy(DENSE_NODE_LIMIT) == "packed"
        assert resolve_strategy(10 * DENSE_NODE_LIMIT) == "packed"

    def test_explicit_strategy_passes_through(self):
        assert resolve_strategy(5, "packed") == "packed"
        assert resolve_strategy(10**6, "dense") == "dense"
        assert resolve_strategy(5, "reference") == "reference"
        assert resolve_strategy(5, None) == "dense"

    def test_unknown_strategy_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_strategy(5, "sparse")

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV_VAR, "packed")
        assert resolve_strategy(5, "auto") == "packed"
        # Explicit strategies win over the environment.
        assert resolve_strategy(5, "dense") == "dense"
        monkeypatch.setenv(STRATEGY_ENV_VAR, "bogus")
        with pytest.raises(InvalidParameterError):
            resolve_strategy(5, "auto")

    def test_lattice_reports_resolved_strategy(self, toy_closed):
        assert IcebergLattice(toy_closed).strategy == "dense"
        assert IcebergLattice(toy_closed, strategy="packed").strategy == "packed"


class TestLargeFamilyPacked:
    """The acceptance criterion: 50k+ nodes, no dense n x n matrix."""

    N_MIDDLE = 50_000

    @pytest.fixture(scope="class")
    def star_family(self):
        return make_star_closed_family(self.N_MIDDLE + 2)

    def test_star_family_shape(self, star_family):
        assert len(star_family) == self.N_MIDDLE + 2

    def test_packed_builds_50k_lattice_without_dense_matrix(
        self, star_family, monkeypatch
    ):
        def forbid_dense(*args, **kwargs):  # pragma: no cover - defensive
            raise AssertionError(
                "packed strategy must not build a dense containment matrix"
            )

        monkeypatch.setattr(order_module, "containment_matrix", forbid_dense)
        monkeypatch.setattr(order_module, "hasse_reduction", forbid_dense)
        lattice = IcebergLattice(star_family, strategy="auto")
        assert lattice.strategy == "packed"
        assert len(lattice) == self.N_MIDDLE + 2

        # The star structure is known analytically: bottom -> each middle
        # -> top, nothing else.
        assert lattice.edge_count() == 2 * self.N_MIDDLE
        bottom = Itemset((0,))
        assert lattice.minimal_elements() == [bottom]
        (top,) = lattice.maximal_elements()
        assert len(lattice.children_of(bottom)) == self.N_MIDDLE
        assert len(lattice.parents_of(top)) == self.N_MIDDLE

        middle = lattice.children_of(bottom)[0]
        assert lattice.parents_of(middle) == [bottom]
        assert lattice.children_of(middle) == [top]
        assert lattice.is_ancestor(bottom, top)
        assert not lattice.is_ancestor(top, bottom)
        assert lattice.path_between(bottom, top) is not None
        assert lattice.confidence_between(middle, top) == pytest.approx(1 / 5)
