"""Tests for dataset statistics and itemset-count profiles."""

from __future__ import annotations

import pytest

from repro import Apriori, Close
from repro.analysis.statistics import dataset_statistics, itemset_count_profile


class TestDatasetStatistics:
    def test_toy_statistics(self, toy_db):
        stats = dataset_statistics(toy_db)
        assert stats.name == "toy"
        assert stats.n_objects == 5
        assert stats.n_items == 5
        assert stats.avg_object_size == pytest.approx(16 / 5)
        assert stats.max_object_size == 4
        assert stats.density == pytest.approx(16 / 25)
        assert stats.top_item_support == pytest.approx(0.8)

    def test_as_dict_round_trips_the_columns(self, toy_db):
        payload = dataset_statistics(toy_db).as_dict()
        assert payload["dataset"] == "toy"
        assert payload["objects"] == 5
        assert set(payload) == {
            "dataset",
            "objects",
            "items",
            "avg_size",
            "max_size",
            "density",
            "top_item_support",
        }

    def test_smoke_datasets_have_expected_shapes(self, dense_smoke_db, sparse_smoke_db):
        dense = dataset_statistics(dense_smoke_db)
        sparse = dataset_statistics(sparse_smoke_db)
        # Dense categorical data: fixed row width equal to the attribute count.
        assert dense.avg_object_size == pytest.approx(dense.max_object_size)
        # Sparse basket data: variable-width transactions.
        assert sparse.max_object_size > sparse.avg_object_size


class TestItemsetCountProfile:
    def test_toy_profile(self, toy_frequent, toy_closed):
        profile = itemset_count_profile(toy_frequent, toy_closed)
        assert profile["frequent_itemsets"] == 15
        assert profile["closed_itemsets"] == 5
        assert profile["ratio"] == pytest.approx(3.0)
        assert profile["max_frequent_size"] == 4
        assert profile["max_closed_size"] == 4
        assert profile["frequent_by_size"] == {1: 4, 2: 6, 3: 4, 4: 1}
        assert profile["closed_by_size"] == {1: 1, 2: 2, 3: 1, 4: 1}

    def test_minsup_is_propagated(self, toy_frequent, toy_closed):
        profile = itemset_count_profile(toy_frequent, toy_closed)
        assert profile["minsup"] == pytest.approx(0.4)

    def test_dense_data_has_high_ratio(self, dense_smoke_db):
        frequent = Apriori(0.3).mine(dense_smoke_db)
        closed = Close(0.3).mine(dense_smoke_db)
        profile = itemset_count_profile(frequent, closed)
        assert profile["ratio"] > 1.5

    def test_empty_families(self, toy_db):
        frequent = Apriori(1.0).mine(toy_db)
        closed = Close(1.0).mine(toy_db)
        profile = itemset_count_profile(frequent, closed)
        assert profile["frequent_itemsets"] == 0
        assert profile["closed_itemsets"] == 0
        assert profile["ratio"] == 0.0
        assert profile["median_closed_support"] == 0.0
