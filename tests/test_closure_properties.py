"""Property-based tests of the Galois connection and closure operator.

These tests verify, on randomly generated small contexts, the mathematical
properties Section 2 of the paper relies on:

* ``h`` is extensive, monotone and idempotent;
* ``support(X) == support(h(X))`` (the keystone of Definition 1);
* ``f`` and ``g`` are antitone and form a Galois connection;
* the closure computed through the database equals the closure computed by
  brute force (intersection of covering transactions).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import TransactionDatabase
from repro.core.closure import GaloisConnection
from repro.core.itemset import Itemset

ITEM_POOL = ["a", "b", "c", "d", "e", "f"]


@st.composite
def contexts(draw) -> TransactionDatabase:
    """Random small mining contexts (1–12 objects over 6 items)."""
    n_rows = draw(st.integers(min_value=1, max_value=12))
    rows = [
        draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=len(ITEM_POOL)))
        for _ in range(n_rows)
    ]
    return TransactionDatabase(rows, item_order=ITEM_POOL)


@st.composite
def context_and_itemset(draw):
    db = draw(contexts())
    itemset = Itemset(
        draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=4))
    )
    return db, itemset


@st.composite
def context_and_two_itemsets(draw):
    db = draw(contexts())
    first = draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=4))
    extra = draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=2))
    return db, Itemset(first), Itemset(set(first) | set(extra))


def brute_force_closure(db: TransactionDatabase, itemset: Itemset) -> Itemset:
    """Reference closure: intersect the transactions containing the itemset."""
    covering = [row for row in db if itemset.issubset(row)]
    if not covering:
        return db.item_universe
    result = covering[0]
    for row in covering[1:]:
        result = result.intersection(row)
    return result


@settings(max_examples=150, deadline=None)
@given(context_and_itemset())
def test_closure_is_extensive(payload):
    db, itemset = payload
    assert itemset.issubset(db.closure(itemset))


@settings(max_examples=150, deadline=None)
@given(context_and_two_itemsets())
def test_closure_is_monotone(payload):
    db, smaller, larger = payload
    assert db.closure(smaller).issubset(db.closure(larger))


@settings(max_examples=150, deadline=None)
@given(context_and_itemset())
def test_closure_is_idempotent(payload):
    db, itemset = payload
    once = db.closure(itemset)
    assert db.closure(once) == once


@settings(max_examples=150, deadline=None)
@given(context_and_itemset())
def test_closure_matches_brute_force(payload):
    db, itemset = payload
    assert db.closure(itemset) == brute_force_closure(db, itemset)


@settings(max_examples=150, deadline=None)
@given(context_and_itemset())
def test_support_of_closure_equals_support(payload):
    db, itemset = payload
    assert db.support_count(itemset) == db.support_count(db.closure(itemset))


@settings(max_examples=150, deadline=None)
@given(context_and_itemset())
def test_cover_of_closure_equals_cover(payload):
    db, itemset = payload
    assert db.cover(itemset) == db.cover(db.closure(itemset))


@settings(max_examples=100, deadline=None)
@given(context_and_two_itemsets())
def test_extent_is_antitone(payload):
    db, smaller, larger = payload
    connection = GaloisConnection(db)
    assert connection.g(larger) <= connection.g(smaller)


@settings(max_examples=100, deadline=None)
@given(context_and_itemset())
def test_galois_connection_property(payload):
    """``X ⊆ f(T)  iff  T ⊆ g(X)`` for the extent T = g(X)."""
    db, itemset = payload
    connection = GaloisConnection(db)
    extent = connection.g(itemset)
    assert itemset.issubset(connection.f(extent))
    assert connection.objectset_closure(extent) == extent


@settings(max_examples=100, deadline=None)
@given(contexts())
def test_closed_itemsets_are_exactly_fixed_points(db):
    """The exhaustive closed-itemset enumeration equals the fixed points of h."""
    connection = GaloisConnection(db)
    enumerated = set(connection.closed_itemsets())
    # Every enumerated itemset is a fixed point.
    for itemset in enumerated:
        assert db.closure(itemset) == itemset
    # Every fixed point over the (small) powerset is enumerated.
    universe = list(db.item_universe)
    from itertools import combinations

    for size in range(len(universe) + 1):
        for combo in combinations(universe, size):
            candidate = Itemset(combo)
            if db.closure(candidate) == candidate:
                assert candidate in enumerated
