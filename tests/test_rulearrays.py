"""Tests for the columnar rule store and the lazy array-backed RuleSet.

Three layers of guarantees:

* :class:`RuleArrays` round-trips rule objects exactly (including
  ``support_count=None`` and empty antecedents) and its vectorised
  dedup / sort / filter / concat / set operations agree with the object
  implementations — also at the 63/64/65-item word-boundary widths;
* an array-backed :class:`RuleSet` answers sizes, filters, statistics
  and set operations without materialising a single rule object, and
  materialises into exactly the same rules when iterated;
* the array-native basis constructions equal the kept object-pipeline
  oracles (``iter_rules_reference``) rule-for-rule and statistic-for-
  statistic on toy, random and rule-dense contexts.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.metrics import summarize_rules
from repro.core.informative import GenericBasis, InformativeBasis
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice
from repro.core.luxenburger import LuxenburgerBasis
from repro.core.rulearrays import RuleArrays, mask_to_itemset, pack_itemsets_into
from repro.core.rules import AssociationRule, RuleSet
from repro.data.synthetic import make_rule_dense_family
from repro.errors import InvalidParameterError


def make_rule(antecedent, consequent, support=0.4, confidence=0.8, count=None):
    return AssociationRule(
        Itemset(antecedent),
        Itemset(consequent),
        support=support,
        confidence=confidence,
        support_count=count,
    )


def random_rules(seed: int, n_rules: int, n_items: int) -> list[AssociationRule]:
    """Seeded random rules over an integer-item universe (duplicates kept)."""
    rng = random.Random(seed)
    rules = []
    items = list(range(n_items))
    while len(rules) < n_rules:
        body = rng.sample(items, rng.randint(2, min(n_items, 8)))
        split = rng.randint(1, len(body) - 1)
        antecedent = body[:split] if rng.random() < 0.9 else []
        consequent = body[split:]
        rules.append(
            make_rule(
                antecedent,
                consequent,
                support=rng.randint(1, 10) / 10,
                confidence=rng.randint(1, 10) / 10,
                count=rng.choice([None, rng.randint(1, 50)]),
            )
        )
    return rules


class TestRoundTrip:
    def test_exact_round_trip_with_none_counts_and_empty_antecedent(self):
        rules = [
            make_rule("a", "bc", 0.4, 2 / 3, count=2),
            make_rule("", "x", 1.0, 1.0, count=None),
            make_rule("b", "c", 0.2, 0.5, count=1),
        ]
        arrays = RuleArrays.from_rules(rules)
        back = list(arrays.iter_rules())
        assert len(back) == len(rules)
        for original, rebuilt in zip(rules, back):
            assert original.same_statistics(rebuilt)
            assert original.support_count == rebuilt.support_count

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_round_trip(self, seed):
        rules = random_rules(seed, 60, 12)
        lazy = RuleSet.from_arrays(RuleArrays.from_rules(rules))
        assert lazy.same_rules_and_statistics(RuleSet(rules))

    @pytest.mark.parametrize("n_items", [63, 64, 65, 127, 129])
    def test_word_boundary_widths(self, n_items):
        """Antecedents spanning exactly / just past uint64 word boundaries."""
        universe = list(range(n_items))
        rules = [
            # Full-width antecedent minus the last item.
            make_rule(universe[:-1], universe[-1:], 0.5, 0.5, count=3),
            # Antecedent holding only the last (highest-bit) item.
            make_rule(universe[-1:], universe[:1], 0.5, 0.5),
            # A straddling split around the first word boundary.
            make_rule(universe[:33], universe[33:], 0.25, 0.75, count=1),
        ]
        arrays = RuleArrays.from_rules(rules, universe=universe)
        assert arrays.antecedents.n_cols == n_items
        assert arrays.validate() == []
        assert RuleSet.from_arrays(arrays).same_rules_and_statistics(RuleSet(rules))
        # Canonical sort agrees with the object sort at every width.
        expected = [rule.key() for rule in RuleSet(rules).sorted_rules()]
        got = [rule.key() for rule in arrays.sorted_canonically().iter_rules()]
        assert got == expected


class TestVectorisedOps:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_dedup_first_wins_and_preserves_order(self, seed):
        rules = random_rules(seed, 40, 6)  # small universe forces duplicates
        arrays = RuleArrays.from_rules(rules).deduplicated()
        expected = list(RuleSet(rules))  # dict semantics: first wins
        assert [r.key() for r in arrays.iter_rules()] == [r.key() for r in expected]
        for mine, theirs in zip(arrays.iter_rules(), expected):
            assert mine.same_statistics(theirs)

    @pytest.mark.parametrize("seed", [5, 6])
    def test_canonical_sort_matches_object_sort(self, seed):
        rules = list(RuleSet(random_rules(seed, 50, 10)))
        arrays = RuleArrays.from_rules(rules).sorted_canonically()
        expected = sorted(rules)
        assert [r.key() for r in arrays.iter_rules()] == [r.key() for r in expected]

    @pytest.mark.parametrize("seed", [7, 8])
    def test_filters_match_object_filters(self, seed):
        ruleset = RuleSet(random_rules(seed, 50, 10))
        arrays = ruleset.to_arrays()
        for minconf in (0.0, 0.5, 0.9, 1.0):
            expected = ruleset.filter(lambda r: r.confidence >= minconf - 1e-12)
            assert RuleSet.from_arrays(
                arrays.with_min_confidence(minconf)
            ).same_rules_and_statistics(expected)
        for minsup in (0.2, 0.7):
            expected = ruleset.filter(lambda r: r.support >= minsup - 1e-12)
            assert RuleSet.from_arrays(
                arrays.with_min_support(minsup)
            ).same_rules_and_statistics(expected)
        assert arrays.count_exact() == sum(1 for r in ruleset if r.is_exact)
        assert arrays.count_approximate() == sum(
            1 for r in ruleset if r.is_approximate
        )

    def test_concat_and_set_operations(self):
        first = RuleArrays.from_rules(
            [make_rule("a", "b"), make_rule("a", "c", 0.3, 0.6)]
        )
        second = RuleArrays.from_rules(
            [make_rule("a", "c", 0.9, 0.9), make_rule("b", "c")]
        )
        assert len(first.concat(second)) == 4
        union = first.union(second)
        assert len(union) == 3
        # self's statistics win on the duplicate key.
        kept = {r.key(): r for r in union.iter_rules()}
        assert kept[(Itemset("a"), Itemset("c"))].support == pytest.approx(0.3)
        difference = first.difference(second)
        assert [r.key() for r in difference.iter_rules()] == [
            (Itemset("a"), Itemset("b"))
        ]
        intersection = first.intersection(second)
        assert [r.key() for r in intersection.iter_rules()] == [
            (Itemset("a"), Itemset("c"))
        ]
        assert intersection.support[0] == pytest.approx(0.3)

    def test_set_operations_align_different_universes(self):
        first = RuleArrays.from_rules([make_rule("a", "b")])
        second = RuleArrays.from_rules([make_rule("a", "b"), make_rule("x", "y")])
        assert first.universe != second.universe
        assert len(second.difference(first)) == 1
        assert len(first.union(second)) == 2
        assert len(first.intersection(second)) == 1

    def test_project_to_rejects_missing_items(self):
        arrays = RuleArrays.from_rules([make_rule("a", "b")])
        with pytest.raises(InvalidParameterError):
            arrays.project_to(("a",))

    def test_validate_flags_malformed_rows(self):
        universe = ("a", "b")
        overlapping = RuleArrays(
            pack_itemsets_into([Itemset("ab")], universe),
            pack_itemsets_into([Itemset("b")], universe),
            universe,
            np.array([0.5]),
            np.array([0.5]),
        )
        assert any("overlap" in problem for problem in overlapping.validate())
        empty_consequent = RuleArrays(
            pack_itemsets_into([Itemset("a")], universe),
            pack_itemsets_into([Itemset()], universe),
            universe,
            np.array([0.5]),
            np.array([0.5]),
        )
        assert any("empty" in problem for problem in empty_consequent.validate())

    def test_mask_to_itemset(self):
        universe = ("a", "b", "c")
        matrix = pack_itemsets_into([Itemset("ac")], universe)
        assert mask_to_itemset(matrix, 0, universe) == Itemset("ac")


class TestLazyRuleSet:
    def test_counting_and_filtering_never_materialises(self):
        arrays = RuleArrays.from_rules(random_rules(9, 30, 10))
        ruleset = RuleSet.from_arrays(arrays)
        assert not ruleset.is_materialized()
        assert len(ruleset) == len(arrays.deduplicated())
        assert bool(ruleset)
        exact = ruleset.exact_rules()
        approx = ruleset.approximate_rules()
        assert len(exact) + len(approx) == len(ruleset)
        ruleset.with_min_confidence(0.5)
        ruleset.with_min_support(0.5)
        ruleset.count_exact(), ruleset.average_confidence(), ruleset.average_support()
        assert not ruleset.is_materialized()
        assert not exact.is_materialized()

    def test_array_set_operations_stay_lazy(self):
        first = RuleSet.from_arrays(RuleArrays.from_rules(random_rules(10, 20, 8)))
        second = RuleSet.from_arrays(RuleArrays.from_rules(random_rules(11, 20, 8)))
        union = first.union(second)
        difference = first.difference(second)
        intersection = first.intersection(second)
        assert not any(
            s.is_materialized() for s in (first, second, union, difference, intersection)
        )
        assert len(difference) + len(intersection) == len(first)
        assert len(union) == len(second) + len(difference)

    def test_statistics_match_object_path(self):
        rules = random_rules(12, 40, 10)
        lazy = RuleSet.from_arrays(RuleArrays.from_rules(rules))
        eager = RuleSet(rules)
        assert lazy.average_confidence() == pytest.approx(eager.average_confidence())
        assert lazy.average_support() == pytest.approx(eager.average_support())
        assert lazy.count_exact() == eager.count_exact()
        assert lazy.count_approximate() == eager.count_approximate()
        summary = summarize_rules(lazy)
        assert summary["rules"] == len(eager)
        assert summary["exact_rules"] == eager.count_exact()
        assert summary["average_support"] == pytest.approx(eager.average_support())

    def test_mutation_materialises_and_drops_stale_columns(self):
        arrays = RuleArrays.from_rules([make_rule("a", "b")])
        ruleset = RuleSet.from_arrays(arrays)
        assert ruleset.add(make_rule("a", "c"))
        assert ruleset.is_materialized()
        assert len(ruleset) == 2
        # to_arrays after mutation re-packs and reflects the new rule.
        assert len(ruleset.to_arrays()) == 2
        assert ruleset.discard(make_rule("a", "b"))
        assert len(ruleset.to_arrays()) == 1

    def test_to_arrays_is_cached_on_array_backed_sets(self):
        arrays = RuleArrays.from_rules([make_rule("a", "b")])
        ruleset = RuleSet.from_arrays(arrays)
        assert ruleset.to_arrays() is ruleset.to_arrays()


class TestBasisOracleEquivalence:
    """Array-native constructions equal the kept object pipelines."""

    @staticmethod
    def contexts(toy_db):
        from repro import Apriori, Close
        from repro.core.generators import GeneratorFamily

        close = Close(0.4)
        closed = close.mine(toy_db)
        generators = GeneratorFamily(closed, close.generators_by_closure)
        frequent = Apriori(0.4).mine(toy_db)
        return frequent, closed, generators

    @pytest.mark.parametrize("minconf", [0.0, 0.5, 0.9])
    def test_luxenburger_matches_reference(self, toy_db, minconf):
        _, closed, _ = self.contexts(toy_db)
        for reduced in (False, True):
            basis = LuxenburgerBasis(closed, minconf, transitive_reduction=reduced)
            assert basis.rules.same_rules_and_statistics(
                RuleSet(basis.iter_rules_reference())
            )

    @pytest.mark.parametrize("minconf", [0.0, 0.5])
    def test_informative_and_generic_match_reference(self, random_db, minconf):
        from repro import Close
        from repro.core.generators import GeneratorFamily

        close = Close(0.2)
        closed = close.mine(random_db)
        generators = GeneratorFamily(closed, close.generators_by_closure)
        generic = GenericBasis(generators)
        assert generic.rules.same_rules_and_statistics(
            RuleSet(generic.iter_rules_reference())
        )
        for reduced in (False, True):
            basis = InformativeBasis(generators, minconf, reduced=reduced)
            assert basis.rules.same_rules_and_statistics(
                RuleSet(basis.iter_rules_reference())
            )

    def test_dg_matches_reference(self, random_db):
        from repro import Apriori, Close
        from repro.core.dg_basis import build_duquenne_guigues_basis

        frequent = Apriori(0.2).mine(random_db)
        closed = Close(0.2).mine(random_db)
        basis = build_duquenne_guigues_basis(frequent, closed)
        assert basis.rules.same_rules_and_statistics(
            RuleSet(basis.iter_rules_reference())
        )

    def test_rule_dense_context_matches_references(self):
        closed, generators = make_rule_dense_family(25, 2)
        lattice = IcebergLattice(closed)
        for basis in (
            LuxenburgerBasis(closed, 0.0, transitive_reduction=False, lattice=lattice),
            LuxenburgerBasis(closed, 0.3, transitive_reduction=True, lattice=lattice),
            InformativeBasis(generators, 0.0, reduced=False, lattice=lattice),
            InformativeBasis(generators, 0.2, reduced=True, lattice=lattice),
            GenericBasis(generators),
        ):
            assert not basis.rules.is_materialized()
            assert basis.rules.same_rules_and_statistics(
                RuleSet(basis.iter_rules_reference())
            )
