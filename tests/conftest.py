"""Shared fixtures for the test-suite.

The fixtures revolve around three kinds of data:

* the classic five-transaction context used in the Close / A-Close papers
  (``toy_db``) whose frequent and closed itemsets are known by hand;
* tiny edge-case contexts (an item present everywhere, identical rows,
  a single transaction);
* small seeded random and generated datasets for cross-checking the
  algorithms against brute-force oracles.
"""

from __future__ import annotations

import random

import pytest

from repro import Apriori, Close, TransactionDatabase
from repro.data.benchmarks_data import make_categorical_dataset
from repro.data.synthetic import make_quest_dataset


@pytest.fixture(scope="session")
def toy_transactions() -> list[list[str]]:
    """The five-transaction example context of the Close paper."""
    return [
        ["a", "c", "d"],
        ["b", "c", "e"],
        ["a", "b", "c", "e"],
        ["b", "e"],
        ["a", "b", "c", "e"],
    ]


@pytest.fixture(scope="session")
def toy_db(toy_transactions) -> TransactionDatabase:
    """The classic example database (5 objects, 5 items, item d infrequent)."""
    return TransactionDatabase(toy_transactions, name="toy")


@pytest.fixture(scope="session")
def toy_frequent(toy_db):
    """All frequent itemsets of the toy database at minsup 0.4 (15 itemsets)."""
    return Apriori(minsup=0.4).mine(toy_db)


@pytest.fixture(scope="session")
def toy_closed(toy_db):
    """The 5 frequent closed itemsets of the toy database at minsup 0.4."""
    return Close(minsup=0.4).mine(toy_db)


@pytest.fixture(scope="session")
def allx_db() -> TransactionDatabase:
    """A context where item ``x`` occurs in every object (h(∅) = {x})."""
    return TransactionDatabase(
        [["x", "a"], ["x", "b"], ["x", "a", "b"], ["x"]], name="allx"
    )


@pytest.fixture(scope="session")
def single_row_db() -> TransactionDatabase:
    """A context with a single transaction (everything is closed and exact)."""
    return TransactionDatabase([["a", "b", "c"]], name="single")


@pytest.fixture(scope="session")
def identical_rows_db() -> TransactionDatabase:
    """Four identical transactions: exactly one closed itemset at any threshold."""
    return TransactionDatabase([["a", "b", "c"]] * 4, name="identical")


def make_random_db(
    seed: int, n_objects: int = 40, n_items: int = 8, max_row: int = 6
) -> TransactionDatabase:
    """Small random database used by the cross-check tests (seeded)."""
    rng = random.Random(seed)
    transactions = []
    for _ in range(n_objects):
        size = rng.randint(1, max_row)
        transactions.append(
            sorted({f"i{rng.randrange(n_items)}" for _ in range(size)})
        )
    return TransactionDatabase(transactions, name=f"random{seed}")


@pytest.fixture(params=[0, 1, 2, 3, 4])
def random_db(request) -> TransactionDatabase:
    """Five different small random databases (parametrised fixture)."""
    return make_random_db(request.param)


@pytest.fixture(scope="session")
def dense_smoke_db() -> TransactionDatabase:
    """A small but genuinely correlated categorical dataset."""
    return make_categorical_dataset(
        n_objects=120,
        n_attributes=6,
        values_per_attribute=4,
        n_latent_classes=3,
        class_fidelity=0.85,
        n_deterministic_attributes=2,
        n_constant_attributes=1,
        seed=5,
        name="dense-smoke",
    )


@pytest.fixture(scope="session")
def sparse_smoke_db() -> TransactionDatabase:
    """A small Quest-style sparse dataset."""
    return make_quest_dataset(
        avg_transaction_size=6,
        avg_pattern_size=3,
        n_transactions=150,
        n_items=30,
        n_patterns=15,
        seed=3,
        name="sparse-smoke",
    )
