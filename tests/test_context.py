"""Unit tests for the mining context (:class:`TransactionDatabase`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TransactionDatabase
from repro.core.itemset import Itemset
from repro.errors import (
    EmptyDatabaseError,
    InvalidItemsetError,
    InvalidParameterError,
)


class TestConstruction:
    def test_basic_shape(self, toy_db):
        assert toy_db.n_objects == 5
        assert toy_db.n_items == 5
        assert len(toy_db) == 5

    def test_items_are_sorted(self, toy_db):
        assert toy_db.items == ("a", "b", "c", "d", "e")

    def test_default_object_ids(self, toy_db):
        assert toy_db.object_ids == (0, 1, 2, 3, 4)

    def test_duplicate_items_in_transaction_are_collapsed(self):
        db = TransactionDatabase([["a", "a", "b"]])
        assert db.transaction(0) == Itemset("ab")

    def test_explicit_item_order_is_respected(self):
        db = TransactionDatabase([["a", "b"]], item_order=["b", "a"])
        assert db.items == ("b", "a")

    def test_item_order_may_add_unseen_items(self):
        db = TransactionDatabase([["a"]], item_order=["a", "z"])
        assert "z" in db.items
        assert db.support_count(Itemset("z")) == 0

    def test_empty_transactions_are_kept(self):
        db = TransactionDatabase([["a"], []])
        assert db.n_objects == 2
        assert db.transaction(1) == Itemset()

    def test_mismatched_object_ids_raise(self):
        with pytest.raises(InvalidParameterError):
            TransactionDatabase([["a"], ["b"]], object_ids=["only-one"])

    def test_from_pairs(self):
        db = TransactionDatabase.from_pairs(
            [("t1", "a"), ("t1", "b"), ("t2", "a")], name="pairs"
        )
        assert db.n_objects == 2
        assert db.object_ids == ("t1", "t2")
        assert db.transaction(0) == Itemset("ab")

    def test_from_binary_matrix(self):
        matrix = np.array([[1, 0, 1], [0, 1, 1]])
        db = TransactionDatabase.from_binary_matrix(matrix, items=["x", "y", "z"])
        assert db.transaction(0) == Itemset(["x", "z"])
        assert db.transaction(1) == Itemset(["y", "z"])

    def test_from_binary_matrix_default_item_names(self):
        db = TransactionDatabase.from_binary_matrix(np.eye(2, dtype=bool))
        assert db.items == ("i0", "i1")

    def test_from_binary_matrix_rejects_bad_shapes(self):
        with pytest.raises(InvalidParameterError):
            TransactionDatabase.from_binary_matrix(np.zeros(3))
        with pytest.raises(InvalidParameterError):
            TransactionDatabase.from_binary_matrix(np.zeros((2, 2)), items=["only-one"])

    def test_repr_mentions_shape(self, toy_db):
        assert "objects=5" in repr(toy_db)
        assert "toy" in repr(toy_db)


class TestStatistics:
    def test_density(self, toy_db):
        # 16 relation pairs out of 5 x 5 cells.
        assert toy_db.density == pytest.approx(16 / 25)

    def test_avg_and_max_transaction_size(self, toy_db):
        assert toy_db.avg_transaction_size == pytest.approx(16 / 5)
        assert toy_db.max_transaction_size == 4

    def test_item_support_counts(self, toy_db):
        counts = toy_db.item_support_counts()
        assert counts == {"a": 3, "b": 4, "c": 4, "d": 1, "e": 4}

    def test_relation_pairs_round_trip(self, toy_db):
        pairs = list(toy_db.relation_pairs())
        assert ("0", "a") not in pairs  # ids are ints by default
        assert (0, "a") in pairs
        assert len(pairs) == 16

    def test_empty_database_statistics(self):
        db = TransactionDatabase([])
        assert db.density == 0.0
        assert db.avg_transaction_size == 0.0
        assert db.max_transaction_size == 0


class TestGaloisPrimitives:
    def test_cover_of_single_item(self, toy_db):
        assert toy_db.cover(Itemset("a")) == frozenset({0, 2, 4})

    def test_cover_of_pair(self, toy_db):
        assert toy_db.cover(Itemset("bc")) == frozenset({1, 2, 4})

    def test_cover_of_empty_itemset_is_every_object(self, toy_db):
        assert toy_db.cover(Itemset()) == frozenset(range(5))

    def test_cover_mask_agrees_with_cover(self, toy_db):
        mask = toy_db.cover_mask(Itemset("bc"))
        assert set(np.flatnonzero(mask)) == {1, 2, 4}

    def test_common_items(self, toy_db):
        assert toy_db.common_items([2, 4]) == Itemset("abce")
        assert toy_db.common_items([0, 1]) == Itemset("c")

    def test_common_items_of_no_objects_is_universe(self, toy_db):
        assert toy_db.common_items([]) == toy_db.item_universe

    def test_closure_examples(self, toy_db):
        assert toy_db.closure(Itemset("a")) == Itemset("ac")
        assert toy_db.closure(Itemset("b")) == Itemset("be")
        assert toy_db.closure(Itemset("bc")) == Itemset("bce")
        assert toy_db.closure(Itemset("c")) == Itemset("c")

    def test_closure_of_empty_itemset(self, toy_db, allx_db):
        assert toy_db.closure(Itemset()) == Itemset()
        assert allx_db.closure(Itemset()) == Itemset("x")

    def test_closure_of_unsupported_itemset_is_universe(self, toy_db):
        assert toy_db.closure(Itemset("ad") | Itemset("e")) == toy_db.item_universe

    def test_closure_and_support(self, toy_db):
        closure, count = toy_db.closure_and_support(Itemset("a"))
        assert closure == Itemset("ac")
        assert count == 3

    def test_is_closed(self, toy_db):
        assert toy_db.is_closed(Itemset("c"))
        assert not toy_db.is_closed(Itemset("a"))

    def test_unknown_item_raises(self, toy_db):
        with pytest.raises(InvalidItemsetError):
            toy_db.cover(Itemset("zz"))


class TestSupport:
    def test_support_count(self, toy_db):
        assert toy_db.support_count(Itemset("be")) == 4
        assert toy_db.support_count(Itemset("abce")) == 2
        assert toy_db.support_count(Itemset("d")) == 1

    def test_relative_support(self, toy_db):
        assert toy_db.support(Itemset("be")) == pytest.approx(0.8)

    def test_support_on_empty_database_raises(self):
        with pytest.raises(EmptyDatabaseError):
            TransactionDatabase([]).support(Itemset())

    def test_minsup_count_rounds_up(self, toy_db):
        assert toy_db.minsup_count(0.5) == 3
        assert toy_db.minsup_count(0.41) == 3
        assert toy_db.minsup_count(0.4) == 2

    def test_minsup_count_zero_maps_to_one(self, toy_db):
        assert toy_db.minsup_count(0.0) == 1

    def test_minsup_count_rejects_out_of_range(self, toy_db):
        with pytest.raises(InvalidParameterError):
            toy_db.minsup_count(1.5)


class TestViewsAndRestriction:
    def test_vertical_representation(self, toy_db):
        vertical = toy_db.vertical()
        assert vertical["a"] == frozenset({0, 2, 4})
        assert vertical["d"] == frozenset({0})

    def test_vertical_bits_popcounts_match_supports(self, toy_db):
        bits = toy_db.vertical_bits()
        for item, count in toy_db.item_support_counts().items():
            assert bits[item].bit_count() == count

    def test_binary_matrix_round_trip(self, toy_db):
        matrix = toy_db.to_binary_matrix()
        rebuilt = TransactionDatabase.from_binary_matrix(matrix, items=toy_db.items)
        assert rebuilt.transactions() == toy_db.transactions()

    def test_restrict_to_items(self, toy_db):
        restricted = toy_db.restrict_to_items(Itemset("abc"))
        assert restricted.n_items == 3
        assert restricted.n_objects == 5
        assert restricted.support_count(Itemset("ab")) == toy_db.support_count(
            Itemset("ab")
        )

    def test_restrict_to_unknown_items_raises(self, toy_db):
        with pytest.raises(InvalidItemsetError):
            toy_db.restrict_to_items(Itemset("zz"))

    def test_restrict_to_frequent_items(self, toy_db):
        pruned = toy_db.restrict_to_frequent_items(0.4)
        assert "d" not in pruned.items
        assert pruned.n_objects == toy_db.n_objects
        assert pruned.support_count(Itemset("ace")) == toy_db.support_count(
            Itemset("ace")
        )
