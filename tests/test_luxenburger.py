"""Tests for the Luxenburger basis of approximate rules (Theorem 2)."""

from __future__ import annotations

import pytest

from repro import Apriori, Close, LuxenburgerBasis, build_luxenburger_basis
from repro.algorithms.rule_generation import generate_approximate_rules
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


class TestToyBasis:
    def test_reduced_basis_rules(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0, transitive_reduction=True)
        keys = {(rule.antecedent, rule.consequent) for rule in basis}
        assert keys == {
            (Itemset("c"), Itemset("a")),
            (Itemset("c"), Itemset("be")),
            (Itemset("be"), Itemset("c")),
            (Itemset("ac"), Itemset("be")),
            (Itemset("bce"), Itemset("a")),
        }

    def test_full_basis_adds_transitive_rules(self, toy_closed):
        full = LuxenburgerBasis(toy_closed, minconf=0.0, transitive_reduction=False)
        reduced = LuxenburgerBasis(toy_closed, minconf=0.0, transitive_reduction=True)
        assert len(full) == 7
        assert len(reduced) == 5
        assert reduced.rules.keys() <= full.rules.keys()
        assert (Itemset("c"), Itemset("abe")) in full.rules.keys()

    def test_rule_statistics_match_the_database(self, toy_db, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        for rule in basis:
            union = rule.antecedent.union(rule.consequent)
            assert rule.support == pytest.approx(toy_db.support(union))
            assert rule.confidence == pytest.approx(
                toy_db.support_count(union) / toy_db.support_count(rule.antecedent)
            )

    def test_rules_connect_closed_itemsets_only(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        for rule in basis:
            assert rule.antecedent in toy_closed
            assert rule.antecedent.union(rule.consequent) in toy_closed

    def test_minconf_filters_rules(self, toy_closed):
        loose = LuxenburgerBasis(toy_closed, minconf=0.0)
        tight = LuxenburgerBasis(toy_closed, minconf=0.7)
        assert len(tight) < len(loose)
        assert all(rule.confidence >= 0.7 for rule in tight)

    def test_no_exact_rules_in_the_basis(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        assert all(rule.is_approximate for rule in basis)

    def test_reduced_rules_are_exactly_the_hasse_edges(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0, transitive_reduction=True)
        edges = set(basis.lattice.hasse_edges())
        keys = {
            (rule.antecedent, rule.antecedent.union(rule.consequent)) for rule in basis
        }
        assert keys == edges

    def test_invalid_minconf_rejected(self, toy_closed):
        with pytest.raises(InvalidParameterError):
            LuxenburgerBasis(toy_closed, minconf=1.5)

    def test_builder_helper(self, toy_closed):
        basis = build_luxenburger_basis(toy_closed, minconf=0.5)
        assert basis.is_transitive_reduction
        assert basis.minconf == 0.5


class TestConfidencePaths:
    def test_edge_confidence_lookup(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        assert basis.edge_confidence(Itemset("c"), Itemset("ac")) == pytest.approx(0.75)
        # (c, abce) is a comparable pair but not a Hasse edge of the
        # reduced basis, so there is no direct rule for it.
        assert basis.edge_confidence(Itemset("c"), Itemset("abce")) is None

    def test_path_confidence_equals_support_ratio(self, toy_db, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        value = basis.path_confidence(Itemset("c"), Itemset("abce"))
        assert value == pytest.approx(
            toy_db.support_count(Itemset("abce")) / toy_db.support_count(Itemset("c"))
        )

    def test_path_confidence_identity(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        assert basis.path_confidence(Itemset("c"), Itemset("c")) == 1.0

    def test_path_confidence_incomparable_is_none(self, toy_closed):
        basis = LuxenburgerBasis(toy_closed, minconf=0.0)
        assert basis.path_confidence(Itemset("ac"), Itemset("be")) is None

    @pytest.mark.parametrize("minsup", [0.2, 0.4])
    def test_path_confidence_matches_supports_on_random_databases(
        self, random_db, minsup
    ):
        closed = Close(minsup).mine(random_db)
        basis = LuxenburgerBasis(closed, minconf=0.0)
        members = closed.itemsets()
        for smaller in members:
            for larger in members:
                if smaller.is_proper_subset(larger):
                    assert basis.path_confidence(smaller, larger) == pytest.approx(
                        closed.support_count(larger) / closed.support_count(smaller)
                    )


class TestGeneratingSetProperty:
    @pytest.mark.parametrize("minconf", [0.3, 0.5, 0.7])
    def test_every_approximate_rule_between_closed_sets_is_in_the_full_basis(
        self, random_db, minconf
    ):
        minsup = 0.2
        frequent = Apriori(minsup).mine(random_db)
        closed = Close(minsup).mine(random_db)
        full = LuxenburgerBasis(closed, minconf=minconf, transitive_reduction=False)
        approximate = generate_approximate_rules(frequent, minconf=minconf)
        for rule in approximate:
            if rule.antecedent in closed and rule.itemset in closed:
                assert rule in full.rules
