"""Tests for the dataset readers and writers."""

from __future__ import annotations

import pytest

from repro import TransactionDatabase
from repro.core.itemset import Itemset
from repro.data.io import (
    load_basket_file,
    load_database_store,
    load_tabular_file,
    parse_basket_lines,
    save_basket_file,
    save_database_store,
    save_tabular_file,
)
from repro.errors import DatasetFormatError, StoreFormatError


class TestBasketFormat:
    def test_parse_lines_skips_blanks_and_comments(self):
        lines = ["a b c", "", "# comment", "d e"]
        assert list(parse_basket_lines(lines)) == [["a", "b", "c"], ["d", "e"]]

    def test_round_trip(self, tmp_path, toy_db):
        path = tmp_path / "toy.basket"
        save_basket_file(toy_db, path)
        loaded = load_basket_file(path)
        assert loaded.n_objects == toy_db.n_objects
        assert loaded.transactions() == toy_db.transactions()
        assert loaded.name == "toy"

    def test_load_respects_custom_name(self, tmp_path, toy_db):
        path = tmp_path / "data.txt"
        save_basket_file(toy_db, path)
        assert load_basket_file(path, name="renamed").name == "renamed"

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            load_basket_file(tmp_path / "absent.basket")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.basket"
        path.write_text("# only a comment\n")
        with pytest.raises(DatasetFormatError):
            load_basket_file(path)


class TestTabularFormat:
    def test_load_itemises_attribute_value_pairs(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("red,round\ngreen,long\nred,long\n")
        db = load_tabular_file(path, attribute_names=["colour", "shape"])
        assert db.n_objects == 3
        assert db.transaction(0) == Itemset(["colour=red", "shape=round"])

    def test_default_attribute_names(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("x,y\nz,w\n")
        db = load_tabular_file(path)
        assert db.transaction(0) == Itemset(["a0=x", "a1=y"])

    def test_missing_values_produce_no_item(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("x,?\n,y\n")
        db = load_tabular_file(path)
        assert db.transaction(0) == Itemset(["a0=x"])
        assert db.transaction(1) == Itemset(["a1=y"])

    def test_ragged_rows_raise(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("a,b\nc\n")
        with pytest.raises(DatasetFormatError):
            load_tabular_file(path)

    def test_wrong_attribute_name_count_raises(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("a,b\n")
        with pytest.raises(DatasetFormatError):
            load_tabular_file(path, attribute_names=["only-one"])

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError):
            load_tabular_file(tmp_path / "absent.csv")

    def test_round_trip(self, tmp_path):
        original = TransactionDatabase(
            [["colour=red", "shape=round"], ["colour=green", "shape=long"]],
            name="veg",
        )
        path = tmp_path / "veg.csv"
        save_tabular_file(original, path)
        loaded = load_tabular_file(path, attribute_names=["colour", "shape"])
        assert loaded.transactions() == original.transactions()

    def test_save_rejects_non_attribute_items(self, tmp_path, toy_db):
        with pytest.raises(DatasetFormatError):
            save_tabular_file(toy_db, tmp_path / "bad.csv")

    def test_save_fills_missing_attributes_with_question_marks(self, tmp_path):
        db = TransactionDatabase([["a=1", "b=2"], ["a=3"]])
        path = tmp_path / "partial.csv"
        save_tabular_file(db, path)
        assert path.read_text().splitlines()[1] == "3,?"

    def test_save_column_order_follows_item_universe(self, tmp_path):
        # transactions are sets, so only the item universe can anchor a
        # deterministic column order
        db = TransactionDatabase(
            [["b=2", "a=1", "c=3"], ["c=6", "a=4"]],
            item_order=["a=1", "a=4", "b=2", "c=3", "c=6"],
        )
        path = tmp_path / "ordered.csv"
        save_tabular_file(db, path)
        assert path.read_text().splitlines() == ["1,2,3", "4,?,6"]

    def test_save_load_save_is_byte_stable(self, tmp_path):
        db = TransactionDatabase(
            [["colour=red", "shape=round"], ["shape=long"], ["colour=green"]],
            name="veg",
        )
        first = tmp_path / "first.csv"
        save_tabular_file(db, first)
        reloaded = load_tabular_file(first, attribute_names=["colour", "shape"])
        second = tmp_path / "second.csv"
        save_tabular_file(reloaded, second)
        assert first.read_bytes() == second.read_bytes()


class TestStoreFormat:
    def test_round_trip_preserves_item_order_and_name(self, tmp_path, toy_db):
        import numpy as np

        path = tmp_path / "toy.npz"
        save_database_store(toy_db, path)
        loaded = load_database_store(path)
        assert loaded.name == toy_db.name
        assert loaded.items == toy_db.items
        assert np.array_equal(loaded.matrix, toy_db.matrix)
        assert loaded.transactions() == toy_db.transactions()

    def test_store_without_context_raises(self, tmp_path, toy_closed):
        from repro.store import save_run

        path = tmp_path / "families-only.npz"
        save_run(path, closed=toy_closed)
        with pytest.raises(StoreFormatError):
            load_database_store(path)
