"""End-to-end integration tests on realistic (smoke-scale) datasets.

These tests run the complete pipeline — dataset generation, mining with
all four algorithms, basis construction, rule derivation and reporting —
exactly the way the benchmark harness does, and check the paper's
qualitative claims hold on data with the right structure.
"""

from __future__ import annotations

import pytest

from repro import (
    AClose,
    Apriori,
    BasisDerivation,
    Charm,
    Close,
    LuxenburgerBasis,
    build_duquenne_guigues_basis,
)
from repro.algorithms.rule_generation import generate_all_rules
from repro.core.generators import GeneratorFamily
from repro.core.informative import GenericBasis
from repro.experiments.harness import build_rule_artifacts, mine_itemsets


class TestDensePipeline:
    MINSUP = 0.25
    MINCONF = 0.7

    @pytest.fixture(scope="class")
    def artifacts(self, dense_smoke_db):
        mining = mine_itemsets(dense_smoke_db, self.MINSUP)
        return mining, build_rule_artifacts(mining, minconf=self.MINCONF)

    def test_all_miners_agree(self, dense_smoke_db):
        reference = Close(self.MINSUP).mine(dense_smoke_db).to_dict()
        assert AClose(self.MINSUP).mine(dense_smoke_db).to_dict() == reference
        assert Charm(self.MINSUP).mine(dense_smoke_db).to_dict() == reference

    def test_closed_much_smaller_than_frequent(self, artifacts):
        mining, _ = artifacts
        assert len(mining.closed) * 2 < len(mining.frequent)

    def test_bases_much_smaller_than_all_rules(self, artifacts):
        _, rule_artifacts = artifacts
        report = rule_artifacts.report
        assert report.all_rules > 5 * report.bases_total
        assert report.exact_reduction_factor > 2.0

    def test_rules_derived_from_bases_match_naive_generation(
        self, dense_smoke_db, artifacts
    ):
        mining, rule_artifacts = artifacts
        derivation = BasisDerivation(
            rule_artifacts.dg_basis,
            rule_artifacts.luxenburger_reduced,
            n_objects=dense_smoke_db.n_objects,
        )
        naive = generate_all_rules(mining.frequent, minconf=self.MINCONF)
        derived = derivation.derive_all_rules(mining.frequent, self.MINCONF)
        assert naive.same_rules_and_statistics(derived)

    def test_generic_basis_also_covers_every_closure(self, dense_smoke_db):
        miner = Close(self.MINSUP)
        closed = miner.mine(dense_smoke_db)
        generators = GeneratorFamily(closed, miner.generators_by_closure)
        assert generators.verify_against(dense_smoke_db) == []
        generic = GenericBasis(generators)
        # Every non-trivially-generated closed itemset appears as the union
        # of a generic rule's sides.
        covered = {rule.antecedent.union(rule.consequent) for rule in generic}
        expected = {
            closure
            for closure in generators.closed_itemsets()
            if generators.proper_generators_of(closure)
        }
        assert covered == expected


class TestSparsePipeline:
    MINSUP = 0.04
    MINCONF = 0.5

    def test_closed_roughly_equals_frequent(self, sparse_smoke_db):
        frequent = Apriori(self.MINSUP).mine(sparse_smoke_db)
        closed = Close(self.MINSUP).mine(sparse_smoke_db)
        assert len(frequent) > 0
        # Weak correlation: the gap between frequent and closed itemsets
        # stays small (no order-of-magnitude blow-up as on dense data).
        assert len(frequent) <= 3 * len(closed)

    def test_round_trip_still_holds(self, sparse_smoke_db):
        mining = mine_itemsets(sparse_smoke_db, self.MINSUP)
        frequent, closed = mining.frequent, mining.closed
        dg = build_duquenne_guigues_basis(frequent, closed)
        lux = LuxenburgerBasis(closed, minconf=self.MINCONF)
        derivation = BasisDerivation(dg, lux, n_objects=sparse_smoke_db.n_objects)
        naive = generate_all_rules(frequent, minconf=self.MINCONF)
        derived = derivation.derive_all_rules(frequent, self.MINCONF)
        assert naive.same_rules_and_statistics(derived)

    def test_bases_still_no_larger_than_all_rules(self, sparse_smoke_db):
        mining = mine_itemsets(sparse_smoke_db, self.MINSUP)
        artifacts = build_rule_artifacts(mining, minconf=self.MINCONF)
        report = artifacts.report
        assert report.bases_total <= max(report.all_rules, 1)
