"""Tests for the unified rule-basis subsystem (registry + vectorised lattice).

The core guarantee of the refactor: every registered basis, built through
the registry on arbitrary contexts, yields exactly the same rules as its
pre-refactor free-standing construction, and the vectorised lattice
matches the per-pair reference builder edge-for-edge.
"""

from __future__ import annotations

import pytest

from repro import Apriori, Close
from repro.algorithms.rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)
from repro.bases import (
    DEFAULT_BASES,
    BasisContext,
    BuiltBasis,
    available_bases,
    build_bases,
    get_basis,
    registered_names,
    resolve_basis_names,
)
from repro.core.dg_basis import build_duquenne_guigues_basis
from repro.core.generators import GeneratorFamily
from repro.core.informative import GenericBasis, InformativeBasis
from repro.core.lattice import IcebergLattice, hasse_edges_reference
from repro.core.luxenburger import LuxenburgerBasis
from repro.errors import InvalidParameterError

ALL_NAMES = (
    "all",
    "exact",
    "approximate",
    "dg",
    "luxenburger",
    "luxenburger-reduced",
    "generic",
    "informative",
    "informative-reduced",
)

MINSUP = 0.2
MINCONF = 0.5


def make_context(database, minsup=MINSUP, minconf=MINCONF):
    close = Close(minsup)
    closed = close.mine(database)
    frequent = Apriori(minsup).mine(database)
    generators = GeneratorFamily(closed, close.generators_by_closure)
    return BasisContext(
        closed=closed, minconf=minconf, frequent=frequent, generators=generators
    )


def reference_rules(name, context):
    """The pre-refactor construction of each basis, called directly."""
    frequent = context.frequent
    closed = context.closed
    generators = context.generators
    minconf = context.minconf
    if name == "all":
        return generate_all_rules(frequent, minconf=minconf)
    if name == "exact":
        return generate_exact_rules(frequent)
    if name == "approximate":
        return generate_approximate_rules(frequent, minconf=minconf)
    if name == "dg":
        return build_duquenne_guigues_basis(frequent, closed).rules
    if name == "luxenburger":
        return LuxenburgerBasis(
            closed, minconf=minconf, transitive_reduction=False
        ).rules
    if name == "luxenburger-reduced":
        return LuxenburgerBasis(
            closed, minconf=minconf, transitive_reduction=True
        ).rules
    if name == "generic":
        return GenericBasis(generators).rules
    if name == "informative":
        return InformativeBasis(generators, minconf=minconf, reduced=False).rules
    if name == "informative-reduced":
        return InformativeBasis(generators, minconf=minconf, reduced=True).rules
    raise AssertionError(f"unknown reference basis {name}")


class TestRegistry:
    def test_exactly_the_nine_documented_bases(self):
        assert registered_names() == tuple(sorted(ALL_NAMES))

    def test_available_bases_have_descriptions_and_kinds(self):
        for name, description in available_bases().items():
            assert description
            assert get_basis(name).kind in {"exact", "approximate", "all"}

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(InvalidParameterError, match="luxenburger"):
            get_basis("luxemburger")

    def test_resolve_default_selection(self):
        assert resolve_basis_names(None) == DEFAULT_BASES

    def test_resolve_comma_string_preserves_order_and_dedupes(self):
        assert resolve_basis_names("dg, luxenburger-reduced,dg") == (
            "dg",
            "luxenburger-reduced",
        )

    def test_resolve_empty_selection_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_basis_names(",")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError):
            from repro.bases.builders import AllRulesBasis
            from repro.bases.registry import register_basis

            register_basis(AllRulesBasis)


class TestBasisEquivalence:
    """Every registered basis equals its pre-refactor construction."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_toy_context(self, toy_db, name):
        context = make_context(toy_db, minsup=0.4)
        built = build_bases(context, [name])[name]
        expected = reference_rules(name, context)
        assert built.rules.same_rules_and_statistics(expected)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_random_contexts(self, random_db, name):
        context = make_context(random_db)
        built = build_bases(context, [name])[name]
        expected = reference_rules(name, context)
        assert built.rules.same_rules_and_statistics(expected)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_rule_dense_context(self, name):
        """Array-native == object pipeline on the clone-chain workload."""
        from repro.data.synthetic import make_rule_dense_context

        context = make_context(make_rule_dense_context(5, 2), minsup=1e-9, minconf=0.0)
        built = build_bases(context, [name])[name]
        expected = reference_rules(name, context)
        assert built.rules.same_rules_and_statistics(expected)

    def test_rule_arrays_accessor(self, toy_db):
        context = make_context(toy_db, minsup=0.4)
        built = build_bases(context, "luxenburger")["luxenburger"]
        arrays = built.rule_arrays
        assert len(arrays) == len(built.rules)
        assert built.rule_arrays is arrays  # cached columnar view

    def test_built_basis_shape(self, toy_db):
        context = make_context(toy_db, minsup=0.4)
        built = build_bases(context, "dg")["dg"]
        assert isinstance(built, BuiltBasis)
        assert built.name == "dg"
        assert built.kind == "exact"
        assert built.size == len(built) == len(built.rules)
        assert built.metadata["pseudo_closed_itemsets"] == len(built.rules)

    def test_lattice_is_shared_between_bases(self, toy_db):
        context = make_context(toy_db, minsup=0.4)
        built = build_bases(context, ["luxenburger", "informative-reduced"])
        assert built["luxenburger"].source.lattice is context.lattice
        assert built["informative-reduced"].source.lattice is context.lattice

    def test_missing_frequent_family_raises_by_name(self, toy_db):
        closed = Close(0.4).mine(toy_db)
        context = BasisContext(closed=closed, minconf=0.5)
        with pytest.raises(InvalidParameterError, match="'all'"):
            build_bases(context, ["all"])

    def test_missing_generators_raise_by_name(self, toy_db):
        closed = Close(0.4).mine(toy_db)
        context = BasisContext(closed=closed, minconf=0.5)
        with pytest.raises(InvalidParameterError, match="'generic'"):
            build_bases(context, ["generic"])

    def test_generators_factory_is_lazy(self, toy_db):
        close = Close(0.4)
        closed = close.mine(toy_db)
        calls = []

        def factory():
            calls.append(1)
            return GeneratorFamily(closed, close.generators_by_closure)

        context = BasisContext(
            closed=closed, minconf=0.5, generators_factory=factory
        )
        build_bases(context, ["luxenburger-reduced"])
        assert not calls
        build_bases(context, ["generic"])
        assert len(calls) == 1
        build_bases(context, ["informative"])  # cached after first use
        assert len(calls) == 1


class TestVectorisedLattice:
    """The packed-mask lattice matches the per-pair reference builder."""

    @pytest.mark.parametrize("minsup", [0.1, 0.2, 0.4])
    def test_matches_reference_edge_for_edge(self, random_db, minsup):
        closed = Close(minsup).mine(random_db)
        lattice = IcebergLattice(closed)
        assert lattice.hasse_edges() == hasse_edges_reference(closed)
        assert lattice.is_transitive_reduction()

    def test_matches_reference_on_dense_context(self, dense_smoke_db):
        closed = Close(0.2).mine(dense_smoke_db)
        lattice = IcebergLattice(closed)
        assert lattice.hasse_edges() == hasse_edges_reference(closed)
        assert lattice.is_transitive_reduction()

    def test_edge_arrays_agree_with_edge_list(self, toy_closed):
        lattice = IcebergLattice(toy_closed)
        members = lattice.members
        rows, cols = lattice.hasse_edge_indices()
        from_arrays = sorted((members[r], members[c]) for r, c in zip(rows, cols))
        assert from_arrays == lattice.hasse_edges()

    def test_edge_confidences_match_support_ratios(self, toy_closed):
        lattice = IcebergLattice(toy_closed)
        members = lattice.members
        rows, cols = lattice.hasse_edge_indices()
        for row, col, confidence in zip(rows, cols, lattice.edge_confidences()):
            expected = toy_closed.support_count(
                members[col]
            ) / toy_closed.support_count(members[row])
            assert confidence == pytest.approx(expected)

    def test_confidence_between_matches_path_product(self, random_db):
        closed = Close(0.2).mine(random_db)
        lattice = IcebergLattice(closed)
        members = lattice.members
        for smaller in members:
            for larger in members:
                confidence = lattice.confidence_between(smaller, larger)
                path = lattice.path_between(smaller, larger)
                if path is None:
                    assert confidence is None or smaller == larger
                    continue
                product = 1.0
                for lower, upper in zip(path, path[1:]):
                    product *= closed.support_count(upper) / closed.support_count(
                        lower
                    )
                assert confidence == pytest.approx(product)

    def test_single_member_family(self, identical_rows_db):
        closed = Close(0.5).mine(identical_rows_db)
        lattice = IcebergLattice(closed)
        assert len(lattice) == 1
        assert lattice.hasse_edges() == []
        assert lattice.is_transitive_reduction()
