"""Unit tests for :class:`ItemsetFamily` and :class:`ClosedItemsetFamily`."""

from __future__ import annotations

import pytest

from repro import Apriori, Close
from repro.core.families import ClosedItemsetFamily, ItemsetFamily
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


@pytest.fixture()
def small_family() -> ItemsetFamily:
    return ItemsetFamily(
        {Itemset("a"): 3, Itemset("b"): 4, Itemset("ab"): 2, Itemset("abc"): 1},
        n_objects=5,
        minsup_count=1,
    )


@pytest.fixture()
def toy_closed_family() -> ClosedItemsetFamily:
    """The closed family of the toy database at minsup 0.4, built by hand."""
    return ClosedItemsetFamily(
        {
            Itemset("c"): 4,
            Itemset("ac"): 3,
            Itemset("be"): 4,
            Itemset("bce"): 3,
            Itemset("abce"): 2,
        },
        n_objects=5,
        minsup_count=2,
    )


class TestItemsetFamily:
    def test_len_and_contains(self, small_family):
        assert len(small_family) == 4
        assert Itemset("ab") in small_family
        assert ["a", "b"] in small_family
        assert Itemset("zz") not in small_family

    def test_support_accessors(self, small_family):
        assert small_family.support_count(Itemset("b")) == 4
        assert small_family.support(Itemset("b")) == pytest.approx(0.8)
        assert small_family.get(Itemset("zz")) is None

    def test_missing_support_raises_keyerror(self, small_family):
        with pytest.raises(KeyError):
            small_family.support_count(Itemset("zz"))

    def test_minsup_properties(self, small_family):
        assert small_family.minsup_count == 1
        assert small_family.minsup == pytest.approx(0.2)

    def test_itemsets_are_sorted_canonically(self, small_family):
        assert small_family.itemsets() == [
            Itemset("a"),
            Itemset("b"),
            Itemset("ab"),
            Itemset("abc"),
        ]

    def test_by_size(self, small_family):
        grouped = small_family.by_size()
        assert set(grouped) == {1, 2, 3}
        assert grouped[1] == [Itemset("a"), Itemset("b")]

    def test_max_size(self, small_family):
        assert small_family.max_size() == 3
        assert ItemsetFamily({}, n_objects=5).max_size() == 0

    def test_maximal_itemsets(self, small_family):
        assert small_family.maximal_itemsets() == [Itemset("abc")]

    def test_restricted_to_max_size(self, small_family):
        restricted = small_family.restricted_to_max_size(1)
        assert len(restricted) == 2
        assert restricted.minsup_count == small_family.minsup_count

    def test_same_contents(self, small_family):
        twin = ItemsetFamily(small_family.to_dict(), n_objects=5, minsup_count=1)
        assert small_family.same_contents(twin)

    def test_validation_rejects_negative_counts(self):
        with pytest.raises(InvalidParameterError):
            ItemsetFamily({Itemset("a"): -1}, n_objects=5)

    def test_validation_rejects_count_above_n_objects(self):
        with pytest.raises(InvalidParameterError):
            ItemsetFamily({Itemset("a"): 6}, n_objects=5)

    def test_validation_rejects_bad_minsup_count(self):
        with pytest.raises(InvalidParameterError):
            ItemsetFamily({}, n_objects=5, minsup_count=0)


class TestClosedItemsetFamily:
    def test_closure_of_member_is_itself(self, toy_closed_family):
        for member in toy_closed_family:
            assert toy_closed_family.closure_of(member) == member
            assert toy_closed_family.is_member_closed_in_family(member)

    def test_closure_of_non_member(self, toy_closed_family):
        assert toy_closed_family.closure_of(Itemset("a")) == Itemset("ac")
        assert toy_closed_family.closure_of(Itemset("b")) == Itemset("be")
        assert toy_closed_family.closure_of(Itemset("ab")) == Itemset("abce")

    def test_closure_of_uncovered_itemset_is_none(self, toy_closed_family):
        assert toy_closed_family.closure_of(Itemset("ad")) is None

    def test_inferred_support(self, toy_closed_family):
        assert toy_closed_family.inferred_support_count(Itemset("a")) == 3
        assert toy_closed_family.inferred_support_count(Itemset("ce")) == 3
        assert toy_closed_family.inferred_support(Itemset("b")) == pytest.approx(0.8)
        assert toy_closed_family.inferred_support_count(Itemset("ad")) is None

    def test_bottom_closure_empty_when_no_common_item(self, toy_closed_family):
        assert toy_closed_family.bottom_closure() == Itemset()

    def test_bottom_closure_detects_universal_item(self):
        family = ClosedItemsetFamily(
            {Itemset("x"): 4, Itemset("xa"): 2}, n_objects=4
        )
        assert family.bottom_closure() == Itemset("x")

    def test_frequent_supersets(self, toy_closed_family):
        supersets = toy_closed_family.frequent_supersets(Itemset("c"))
        assert supersets == [Itemset("ac"), Itemset("bce"), Itemset("abce")]

    def test_expand_to_frequent_itemsets_matches_apriori(self, toy_db):
        closed = Close(minsup=0.4).mine(toy_db)
        frequent = Apriori(minsup=0.4).mine(toy_db)
        expanded = closed.expand_to_frequent_itemsets()
        assert expanded.to_dict() == frequent.to_dict()

    def test_expand_drops_empty_itemset(self, toy_closed_family):
        expanded = toy_closed_family.expand_to_frequent_itemsets()
        assert Itemset() not in expanded


def closure_of_linear_scan(family: ClosedItemsetFamily, itemset: Itemset):
    """The pre-index reference semantics: strictly-better-(len, count) scan."""
    best = None
    best_count = -1
    for member, count in family.to_dict().items():
        if itemset.issubset(member):
            if best is None or len(member) < len(best) or (
                len(member) == len(best) and count < best_count
            ):
                best = member
                best_count = count
    return best


class TestClosureOfIndex:
    """The size-bucketed packed lookup equals the linear reference scan."""

    def test_matches_linear_scan_on_mined_families(self, random_db):
        closed = Close(minsup=0.1).mine(random_db)
        items = sorted({item for member in closed for item in member})
        queries = [Itemset()] + [Itemset([item]) for item in items]
        for member in closed:
            queries.append(member)
            queries.extend(member.subsets_of_size(min(2, len(member))))
        queries.append(Itemset(items))  # usually uncovered -> None
        queries.append(Itemset(["never-seen"]))
        for query in queries:
            assert closed.closure_of(query) == closure_of_linear_scan(closed, query)

    def test_support_tie_resolution_prefers_lower_count(self):
        # Deliberately malformed family (two incomparable same-size members
        # both containing the query): the documented tie rule is minimal
        # support, then earliest insertion.
        family = ClosedItemsetFamily(
            {Itemset("ab"): 4, Itemset("ac"): 2}, n_objects=5
        )
        assert family.closure_of(Itemset("a")) == Itemset("ac")
        tied = ClosedItemsetFamily(
            {Itemset("ab"): 3, Itemset("ac"): 3}, n_objects=5
        )
        assert tied.closure_of(Itemset("a")) == Itemset("ab")

    def test_empty_family_and_unknown_items(self):
        empty = ClosedItemsetFamily({}, n_objects=0)
        assert empty.closure_of(Itemset("a")) is None
        family = ClosedItemsetFamily({Itemset("a"): 1}, n_objects=2)
        assert family.closure_of(Itemset("z")) is None
        assert family.closure_of(Itemset()) == Itemset("a")
