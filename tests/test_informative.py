"""Tests for the generic / informative bases (minimal-generator extension)."""

from __future__ import annotations

import pytest

from repro import Close
from repro.core.generators import GeneratorFamily
from repro.core.informative import GenericBasis, InformativeBasis
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


@pytest.fixture()
def toy_generator_family(toy_db, toy_closed) -> GeneratorFamily:
    miner = Close(minsup=0.4)
    miner.mine(toy_db)
    return GeneratorFamily(toy_closed, miner.generators_by_closure)


class TestGenericBasis:
    def test_rules_of_the_toy_context(self, toy_generator_family):
        basis = GenericBasis(toy_generator_family)
        keys = {(rule.antecedent, rule.consequent) for rule in basis}
        assert keys == {
            (Itemset("a"), Itemset("c")),
            (Itemset("b"), Itemset("e")),
            (Itemset("e"), Itemset("b")),
            (Itemset("bc"), Itemset("e")),
            (Itemset("ce"), Itemset("b")),
            (Itemset("ab"), Itemset("ce")),
            (Itemset("ae"), Itemset("bc")),
        }

    def test_every_rule_is_exact_and_correct(self, toy_db, toy_generator_family):
        basis = GenericBasis(toy_generator_family)
        for rule in basis:
            union = rule.antecedent.union(rule.consequent)
            assert rule.confidence == 1.0
            assert toy_db.support_count(rule.antecedent) == toy_db.support_count(union)
            assert toy_db.closure(rule.antecedent) == union

    def test_antecedents_are_generators_and_consequents_their_closures(
        self, toy_generator_family
    ):
        basis = GenericBasis(toy_generator_family)
        for rule in basis:
            closure = rule.antecedent.union(rule.consequent)
            assert rule.antecedent in toy_generator_family.generators_of(closure)

    def test_repr(self, toy_generator_family):
        assert "GenericBasis" in repr(GenericBasis(toy_generator_family))


class TestInformativeBasis:
    def test_reduced_rules_follow_lattice_edges(self, toy_db, toy_generator_family):
        basis = InformativeBasis(toy_generator_family, minconf=0.0, reduced=True)
        for rule in basis:
            lower = toy_db.closure(rule.antecedent)
            upper = rule.antecedent.union(rule.consequent)
            # The consequent completes the antecedent to a closed itemset
            # immediately above the antecedent's closure.
            assert toy_db.closure(upper) == upper
            assert lower.is_proper_subset(upper)

    def test_rule_statistics_are_correct(self, toy_db, toy_generator_family):
        basis = InformativeBasis(toy_generator_family, minconf=0.0, reduced=True)
        assert len(basis) > 0
        for rule in basis:
            union = rule.antecedent.union(rule.consequent)
            assert rule.support == pytest.approx(toy_db.support(union))
            assert rule.confidence == pytest.approx(
                toy_db.support_count(union) / toy_db.support_count(rule.antecedent)
            )

    def test_full_variant_is_a_superset_of_the_reduced_one(self, toy_generator_family):
        reduced = InformativeBasis(toy_generator_family, minconf=0.0, reduced=True)
        full = InformativeBasis(toy_generator_family, minconf=0.0, reduced=False)
        assert reduced.rules.keys() <= full.rules.keys()
        assert len(full) >= len(reduced)

    def test_minconf_filtering(self, toy_generator_family):
        loose = InformativeBasis(toy_generator_family, minconf=0.0)
        tight = InformativeBasis(toy_generator_family, minconf=0.74)
        assert len(tight) < len(loose)
        assert all(rule.confidence >= 0.74 for rule in tight)

    def test_no_exact_rules(self, toy_generator_family):
        basis = InformativeBasis(toy_generator_family, minconf=0.0)
        assert all(rule.is_approximate for rule in basis)

    def test_invalid_minconf(self, toy_generator_family):
        with pytest.raises(InvalidParameterError):
            InformativeBasis(toy_generator_family, minconf=-0.1)

    def test_repr_mentions_variant(self, toy_generator_family):
        assert "reduced" in repr(InformativeBasis(toy_generator_family, minconf=0.5))
        assert "full" in repr(
            InformativeBasis(toy_generator_family, minconf=0.5, reduced=False)
        )
