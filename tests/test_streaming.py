"""Streamed-vs-one-shot equivalence of the rule-basis construction.

The informative / Luxenburger emitters CSR-expand their rule columns in
bounded row blocks (:func:`~repro.core.rulearrays.resolve_block_rows`);
these tests pin the contract that the streaming is *invisible*: every
registered basis built with any ``block_rows`` equals the materialized
one-shot build rule-for-rule, statistic-for-statistic and — for the
array-native emitters — byte-for-byte, and the peak mask memory of a
streamed build stays bounded by the output plus O(block) temporaries
instead of growing with extra output-sized gathers.
"""

from __future__ import annotations

import os
import tracemalloc

import numpy as np
import pytest

from repro.bases import registered_names
from repro.core.informative import InformativeBasis
from repro.core.lattice import IcebergLattice
from repro.core.luxenburger import LuxenburgerBasis
from repro.core.rulearrays import RuleArrays, resolve_block_rows
from repro.data.synthetic import make_rule_dense_family, rule_dense_expected_counts
from repro.errors import InvalidParameterError
from repro.experiments.harness import build_rule_artifacts, mine_itemsets

#: The block sizes of the satellite contract: degenerate (1), odd (7),
#: one word (64) and the auto default (None).
BLOCK_SIZES = (1, 7, 64, None)


def assert_same_arrays(left: RuleArrays, right: RuleArrays) -> None:
    assert left.universe == right.universe
    assert np.array_equal(left.antecedents.words, right.antecedents.words)
    assert np.array_equal(left.consequents.words, right.consequents.words)
    assert np.array_equal(left.support, right.support)
    assert np.array_equal(left.confidence, right.confidence)
    assert np.array_equal(left.support_count, right.support_count)


# ----------------------------------------------------------------------
# RuleArrays block plumbing
# ----------------------------------------------------------------------
class TestBlockPlumbing:
    @pytest.fixture(scope="class")
    def arrays(self):
        closed, generators = make_rule_dense_family(12, 2)
        lattice = IcebergLattice(closed)
        basis = InformativeBasis(
            generators, minconf=0.0, reduced=False, lattice=lattice
        )
        return basis.rules.to_arrays()

    @pytest.mark.parametrize("block_rows", [1, 3, 64, None])
    def test_iter_blocks_from_blocks_round_trip(self, arrays, block_rows):
        rebuilt = RuleArrays.from_blocks(
            arrays.iter_blocks(block_rows), arrays.universe
        )
        assert_same_arrays(rebuilt, arrays)
        # The preallocating (capacity) path must agree too.
        rebuilt = RuleArrays.from_blocks(
            arrays.iter_blocks(block_rows), arrays.universe, n_rows=len(arrays)
        )
        assert_same_arrays(rebuilt, arrays)

    def test_iter_blocks_covers_every_row_once(self, arrays):
        sizes = [len(block) for block in arrays.iter_blocks(7)]
        assert sum(sizes) == len(arrays)
        assert all(size == 7 for size in sizes[:-1])

    def test_from_blocks_capacity_trims_filtered_blocks(self, arrays):
        kept = [
            block.select(block.confidence >= 0.5)
            for block in arrays.iter_blocks(5)
        ]
        rebuilt = RuleArrays.from_blocks(kept, arrays.universe, n_rows=len(arrays))
        assert_same_arrays(rebuilt, arrays.with_min_confidence(0.5))

    def test_from_blocks_rejects_universe_mismatch_and_overflow(self, arrays):
        with pytest.raises(InvalidParameterError):
            RuleArrays.from_blocks(arrays.iter_blocks(4), ("other",))
        with pytest.raises(InvalidParameterError):
            RuleArrays.from_blocks(
                arrays.iter_blocks(4), arrays.universe, n_rows=len(arrays) - 1
            )

    def test_from_blocks_empty(self, arrays):
        empty = RuleArrays.from_blocks([], arrays.universe)
        assert len(empty) == 0 and empty.universe == arrays.universe
        empty = RuleArrays.from_blocks([], arrays.universe, n_rows=0)
        assert len(empty) == 0

    def test_resolve_block_rows(self):
        assert resolve_block_rows(64, 4) == 64
        assert resolve_block_rows(None, 4) >= 1
        # Auto shrinks as rows widen: the block budget is in mask cells.
        assert resolve_block_rows(None, 64) < resolve_block_rows(None, 1)
        with pytest.raises(InvalidParameterError):
            resolve_block_rows(0, 4)


# ----------------------------------------------------------------------
# Emitters: streamed == one-shot, byte for byte
# ----------------------------------------------------------------------
class TestEmitterEquivalence:
    @pytest.fixture(scope="class")
    def workload(self):
        closed, generators = make_rule_dense_family(25, 2)
        return closed, generators, IcebergLattice(closed)

    @pytest.mark.parametrize("block_rows", BLOCK_SIZES)
    @pytest.mark.parametrize("reduced", [False, True])
    def test_luxenburger_streamed_equals_materialized(
        self, workload, reduced, block_rows
    ):
        closed, _, lattice = workload
        basis = LuxenburgerBasis(
            closed,
            minconf=0.0,
            transitive_reduction=reduced,
            lattice=lattice,
            block_rows=block_rows,
        )
        assert_same_arrays(basis.rules.to_arrays(), basis._build_arrays_materialized())

    @pytest.mark.parametrize("block_rows", BLOCK_SIZES)
    @pytest.mark.parametrize("reduced", [False, True])
    def test_informative_streamed_equals_materialized(
        self, workload, reduced, block_rows
    ):
        _, generators, lattice = workload
        basis = InformativeBasis(
            generators,
            minconf=0.0,
            reduced=reduced,
            lattice=lattice,
            block_rows=block_rows,
        )
        assert_same_arrays(basis.rules.to_arrays(), basis._build_arrays_materialized())


# ----------------------------------------------------------------------
# Every registered basis through the harness knob
# ----------------------------------------------------------------------
class TestHarnessBlockRows:
    @pytest.fixture(scope="class")
    def mining(self, toy_db_module):
        return mine_itemsets(toy_db_module, 0.4)

    @pytest.fixture(scope="class")
    def toy_db_module(self):
        from repro.data.context import TransactionDatabase

        return TransactionDatabase(
            [
                ["a", "c", "d"],
                ["b", "c", "e"],
                ["a", "b", "c", "e"],
                ["b", "e"],
                ["a", "b", "c", "e"],
            ],
            name="toy",
        )

    @pytest.fixture(scope="class")
    def baseline(self, mining):
        return build_rule_artifacts(mining, minconf=0.5, bases=registered_names())

    @pytest.mark.parametrize("block_rows", [1, 7, 64])
    def test_every_basis_matches_default_build(self, mining, baseline, block_rows):
        artifacts = build_rule_artifacts(
            mining, minconf=0.5, bases=registered_names(), block_rows=block_rows
        )
        for name in registered_names():
            blocked = artifacts[name]
            reference = baseline[name]
            assert blocked.kind == reference.kind
            assert blocked.rules.same_rules_and_statistics(reference.rules), name
            assert_same_arrays(blocked.rule_arrays, reference.rule_arrays)


# ----------------------------------------------------------------------
# Peak mask memory stays O(output + block)
# ----------------------------------------------------------------------
def _streamed_peak_bytes(basis) -> tuple[int, int]:
    """(peak traced bytes of one streamed assembly, output bytes)."""
    output_bytes = basis.rules.to_arrays().nbytes
    tracemalloc.start()
    rebuilt = basis._build_arrays()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert len(rebuilt) == len(basis.rules)
    return peak, output_bytes


def test_streamed_build_peak_memory_is_output_plus_blocks():
    """Ungated smoke: the streamed expansion allocates ~one output copy.

    The materialized path gathers several output-sized temporaries (the
    expanded antecedent rows, the AND-NOT, the final filtered copy); the
    streamed path must stay within the output plus bounded block / pair
    index temporaries.
    """
    closed, generators = make_rule_dense_family(120, 2)
    lattice = IcebergLattice(closed)
    basis = InformativeBasis(generators, minconf=0.0, reduced=False, lattice=lattice)
    peak, output_bytes = _streamed_peak_bytes(basis)
    arrays = basis.rules.to_arrays()
    block = resolve_block_rows(None, arrays.antecedents.n_words)
    block_bytes = block * arrays.antecedents.n_words * 8
    # Generous constant for the O(pairs) index arrays and interpreter
    # noise; what matters is that no *second* output-sized mask gather
    # appears (which would double the bound on this ~14k-rule workload).
    assert peak <= output_bytes + 16 * block_bytes + 8 * 1024 * 1024, (
        f"streamed peak {peak / 1e6:.1f} MB exceeds output "
        f"{output_bytes / 1e6:.1f} MB + block budget"
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_MEMORY_TESTS"),
    reason="set REPRO_MEMORY_TESTS=1 to run the >=10^6-rule peak-memory gate",
)
def test_streamed_build_peak_memory_rule_dense_million():
    """Gated acceptance check: >=10^6 rules, peak mask memory O(block).

    On the L=1001 clone chain the full informative basis holds
    1 001 000 rules (~0.5 GB of packed mask columns); the streamed
    assembly's peak beyond the finished output must stay bounded by
    block-sized temporaries and the O(pairs) index arrays — not by
    additional output-sized gathers (the materialized path needs
    several).  Observed overhead in practice: ~20 MB over the output.
    """
    chain, multiplicity = 1001, 2
    closed, generators = make_rule_dense_family(chain, multiplicity)
    expected = rule_dense_expected_counts(chain, multiplicity)
    lattice = IcebergLattice(closed)
    basis = InformativeBasis(generators, minconf=0.0, reduced=False, lattice=lattice)
    assert len(basis.rules) == expected["informative_full"] >= 10**6
    peak, output_bytes = _streamed_peak_bytes(basis)
    arrays = basis.rules.to_arrays()
    block = resolve_block_rows(None, arrays.antecedents.n_words)
    block_bytes = block * arrays.antecedents.n_words * 8
    allowance = 64 * block_bytes + 128 * 1024 * 1024
    assert peak <= output_bytes + allowance, (
        f"streamed peak {peak / 1e6:.1f} MB exceeds output "
        f"{output_bytes / 1e6:.1f} MB + {allowance / 1e6:.1f} MB allowance"
    )
