"""Tests of the top-k recommendation engine (:mod:`repro.recommend`).

Every assertion ultimately runs against :func:`recommend_reference`, the
slow object-level oracle — the edge-case matrix (empty basket, unknown
items, oversized k, word-boundary universes, ties at the k boundary),
the nine registered bases on the Fig. 1 context, and a hypothesis
property over random rule collections with sharded workers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bases import registered_names
from repro.core.bitmatrix import BitMatrix
from repro.core.rulearrays import RuleArrays
from repro.data.context import TransactionDatabase
from repro.errors import InvalidParameterError
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.recommend import (
    AntecedentIndex,
    Recommender,
    recommend_reference,
)

FIG1_TRANSACTIONS = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


def make_arrays(universe, rules):
    """Pack ``(antecedent, consequent, support, confidence[, count])`` rows."""
    universe = tuple(universe)
    position = {item: index for index, item in enumerate(universe)}
    n = len(rules)
    antecedents = np.zeros((n, len(universe)), dtype=bool)
    consequents = np.zeros((n, len(universe)), dtype=bool)
    support = np.zeros(n, dtype=np.float64)
    confidence = np.zeros(n, dtype=np.float64)
    counts = np.full(n, -1, dtype=np.int64)
    for row, (antecedent, consequent, sup, conf, *rest) in enumerate(rules):
        for item in antecedent:
            antecedents[row, position[item]] = True
        for item in consequent:
            consequents[row, position[item]] = True
        support[row] = sup
        confidence[row] = conf
        if rest:
            counts[row] = rest[0]
    return RuleArrays(
        BitMatrix.from_dense(antecedents),
        BitMatrix.from_dense(consequents),
        universe,
        support,
        confidence,
        counts,
    )


def assert_matches_oracle(engine, basket, k):
    """The vectorized answer must equal the object oracle, field for field."""
    actual = engine.query(basket, k)
    expected = recommend_reference(engine.arrays, basket, k)
    assert actual == expected
    return actual


@pytest.fixture(scope="module")
def fig1_bases():
    """All nine registered bases of the Fig. 1 context, as columns."""
    db = TransactionDatabase(FIG1_TRANSACTIONS, name="fig1")
    mining = mine_itemsets(db, 0.4)
    artifacts = build_rule_artifacts(mining, minconf=0.5, bases=registered_names())
    return {name: built.rule_arrays for name, built in artifacts.bases.items()}


# ----------------------------------------------------------------------
# The inverted index
# ----------------------------------------------------------------------
class TestAntecedentIndex:
    def test_postings_layout(self):
        arrays = make_arrays(
            "abcd",
            [
                ({"a", "b"}, {"c"}, 0.5, 0.8),
                ({"b"}, {"d"}, 0.5, 0.9),
                (set(), {"a"}, 0.4, 0.6),
            ],
        ).sorted_canonically()
        index = AntecedentIndex(arrays)
        assert index.indptr.shape == (5,)
        assert index.indptr[-1] == index.postings.size == 3
        # Postings of one item are ascending row ids.
        for pos in range(4):
            slice_ = index.postings[index.indptr[pos] : index.indptr[pos + 1]]
            assert list(slice_) == sorted(slice_)
        assert index.always_rows.size == 1
        assert index.antecedent_sizes[index.always_rows[0]] == 0
        assert index.max_antecedent_size == 2

    def test_empty_collection(self):
        index = AntecedentIndex(RuleArrays.empty(("a", "b")))
        assert index.matching_rows(np.array([0, 1], dtype=np.int64)).size == 0
        assert index.matching_rows(np.array([], dtype=np.int64)).size == 0

    def test_matching_rows_subset_semantics(self):
        arrays = make_arrays(
            "abcde",
            [
                ({"a"}, {"b"}, 0.5, 0.8),
                ({"a", "b"}, {"c"}, 0.5, 0.8),
                ({"a", "b", "c"}, {"d"}, 0.5, 0.8),
                ({"e"}, {"a"}, 0.5, 0.8),
            ],
        )
        index = AntecedentIndex(arrays)
        rows = index.matching_rows(np.array([0, 1], dtype=np.int64))  # {a, b}
        contained = [
            row
            for row in range(len(arrays))
            if set(arrays.antecedents.row_indices(row)) <= {0, 1}
        ]
        assert list(rows) == contained


# ----------------------------------------------------------------------
# The edge-case matrix, all against the oracle
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_empty_basket_matches_only_empty_antecedents(self):
        engine = Recommender(
            make_arrays(
                "abc",
                [
                    (set(), {"a"}, 0.6, 0.6),
                    ({"a"}, {"b"}, 0.5, 0.9),
                ],
            )
        )
        result = assert_matches_oracle(engine, [], k=5)
        assert result.matched_rules == 1
        assert [rec.items for rec in result.recommendations] == [("a",)]

    def test_empty_basket_no_empty_antecedent_rules(self):
        engine = Recommender(make_arrays("abc", [({"a"}, {"b"}, 0.5, 0.9)]))
        result = assert_matches_oracle(engine, [], k=3)
        assert result.matched_rules == 0
        assert result.recommendations == ()

    def test_unknown_items_are_ignored(self):
        engine = Recommender(
            make_arrays(
                "abc",
                [({"a"}, {"b"}, 0.5, 0.9), ({"b"}, {"c"}, 0.4, 0.8)],
            )
        )
        result = assert_matches_oracle(engine, ["a", "zz", "yy"], k=5)
        assert result.known_items == ("a",)
        assert [rec.items for rec in result.recommendations] == [("b",)]
        # An all-unknown basket behaves like the empty basket.
        assert_matches_oracle(engine, ["zz"], k=5)

    def test_k_larger_than_match_count(self):
        engine = Recommender(
            make_arrays(
                "abcde",
                [
                    ({"a"}, {"b"}, 0.5, 0.9),
                    ({"a"}, {"c"}, 0.4, 0.8),
                ],
            )
        )
        result = assert_matches_oracle(engine, ["a"], k=50)
        assert len(result.recommendations) == 2

    def test_consequent_already_in_basket_is_dropped(self):
        engine = Recommender(
            make_arrays(
                "abc",
                [
                    ({"a"}, {"b"}, 0.5, 0.9),
                    ({"a"}, {"b", "c"}, 0.4, 0.8),
                ],
            )
        )
        result = assert_matches_oracle(engine, ["a", "b"], k=5)
        # Rule 0's consequent is fully in the basket; rule 1 recommends
        # only its novel part.
        assert result.matched_rules == 2
        assert [rec.items for rec in result.recommendations] == [("c",)]

    @pytest.mark.parametrize("n_items", [63, 64, 65])
    def test_word_boundary_universes(self, n_items):
        universe = tuple(f"i{j:03d}" for j in range(n_items))
        last, prev, first = universe[-1], universe[-2], universe[0]
        rules = [
            ({first}, {last}, 0.5, 0.9),
            ({last}, {first}, 0.5, 0.8),
            ({first, prev}, {last}, 0.4, 1.0),
            (set(), {prev}, 0.3, 0.3),
            ({universe[31]}, {universe[32], last}, 0.2, 0.7),
        ]
        engine = Recommender(make_arrays(universe, rules))
        for basket in ([], [first], [last], [first, prev], [universe[31], last]):
            for k in (1, 2, 10):
                assert_matches_oracle(engine, basket, k)

    def test_ties_at_the_k_boundary(self):
        # Three single-item consequents with identical confidence and
        # support: ranking falls through to the canonical row number.
        engine = Recommender(
            make_arrays(
                "abcde",
                [
                    ({"a"}, {"d"}, 0.5, 0.8),
                    ({"a"}, {"c"}, 0.5, 0.8),
                    ({"a"}, {"b"}, 0.5, 0.8),
                    ({"a"}, {"e"}, 0.5, 0.9),
                ],
            )
        )
        result = assert_matches_oracle(engine, ["a"], k=2)
        assert len(result.recommendations) == 2
        assert result.recommendations[0].items == ("e",)  # higher confidence
        # The second slot is decided by canonical row order among the
        # 0.8-confidence ties; re-building the engine must reproduce it.
        rebuilt = Recommender(engine.arrays, assume_canonical=True)
        assert rebuilt.query(["a"], 2) == result

    def test_same_consequent_collapses_onto_best_rule(self):
        engine = Recommender(
            make_arrays(
                "abc",
                [
                    ({"a"}, {"c"}, 0.3, 0.7),
                    ({"b"}, {"c"}, 0.6, 0.9),
                ],
            )
        )
        result = assert_matches_oracle(engine, ["a", "b"], k=5)
        assert len(result.recommendations) == 1
        assert result.recommendations[0].confidence == 0.9

    def test_support_breaks_confidence_ties(self):
        engine = Recommender(
            make_arrays(
                "abc",
                [
                    ({"a"}, {"b"}, 0.2, 0.8),
                    ({"a"}, {"c"}, 0.6, 0.8),
                ],
            )
        )
        result = assert_matches_oracle(engine, ["a"], k=1)
        assert result.recommendations[0].items == ("c",)
        assert result.recommendations[0].support == 0.6

    def test_k_must_be_positive(self):
        engine = Recommender(make_arrays("ab", [({"a"}, {"b"}, 0.5, 0.9)]))
        with pytest.raises(InvalidParameterError):
            engine.query(["a"], 0)
        with pytest.raises(InvalidParameterError):
            recommend_reference(engine.arrays, ["a"], 0)


# ----------------------------------------------------------------------
# Real bases: all nine registered constructions on Fig. 1
# ----------------------------------------------------------------------
BASKETS = ([], ["a"], ["b", "c"], ["a", "b", "c", "e"], ["zz"], ["c", "zz"])


@pytest.mark.parametrize("name", registered_names())
def test_registered_bases_match_oracle(fig1_bases, name):
    engine = Recommender(fig1_bases[name])
    for basket in BASKETS:
        for k in (1, 3, 10):
            assert_matches_oracle(engine, basket, k)


@pytest.mark.parametrize("workers", [1, 2, 5])
def test_workers_answer_identically(fig1_bases, workers):
    serial = Recommender(fig1_bases["all"], workers=1)
    sharded = Recommender(fig1_bases["all"], workers=workers)
    for basket in BASKETS:
        assert sharded.query(basket, 3) == serial.query(basket, 3)


@pytest.mark.parametrize("workers", [1, 3])
def test_recommend_many_equals_per_query(fig1_bases, workers):
    engine = Recommender(fig1_bases["all"], workers=workers)
    batch = engine.recommend_many(BASKETS, k=3)
    assert batch == [engine.query(basket, 3) for basket in BASKETS]


def test_recommend_returns_plain_list(fig1_bases):
    engine = Recommender(fig1_bases["all"])
    top = engine.recommend(["b"], k=2)
    assert top == list(engine.query(["b"], 2).recommendations)


def test_sharded_scoring_path_matches_serial(fig1_bases):
    """Force the row-shard branch (matched >= threshold) explicitly."""
    import repro.recommend.engine as engine_module

    arrays = fig1_bases["all"]
    serial = Recommender(arrays, workers=1).query(["a", "b", "c", "e"], 5)
    sharded_engine = Recommender(arrays, workers=3)
    original = engine_module.PARALLEL_MIN_ROWS
    engine_module.PARALLEL_MIN_ROWS = 1
    try:
        assert sharded_engine.query(["a", "b", "c", "e"], 5) == serial
    finally:
        engine_module.PARALLEL_MIN_ROWS = original


# ----------------------------------------------------------------------
# Store round trip + CLI verb
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig1_store(tmp_path_factory):
    db = TransactionDatabase(FIG1_TRANSACTIONS, name="fig1")
    mining = mine_itemsets(db, 0.4)
    artifacts = build_rule_artifacts(mining, minconf=0.5)
    path = save_artifacts(
        tmp_path_factory.mktemp("recommend") / "fig1.npz", mining, artifacts
    )
    return path, artifacts


def test_from_store(fig1_store):
    path, artifacts = fig1_store
    engine = Recommender.from_store(path, "all")
    direct = Recommender(artifacts.bases["all"].rule_arrays)
    for basket in BASKETS:
        assert engine.query(basket, 3) == direct.query(basket, 3)
    with pytest.raises(InvalidParameterError, match="no basis"):
        Recommender.from_store(path, "nope")


class TestCli:
    def run(self, capsys, *args):
        from repro.experiments import cli

        code = cli.main(list(args))
        return code, capsys.readouterr()

    def test_one_shot_matches_oracle(self, fig1_store, capsys):
        path, artifacts = fig1_store
        code, captured = self.run(
            capsys, "recommend", "--store", str(path), "--basket", "b,c", "-k", "2"
        )
        assert code == 0
        engine = Recommender(artifacts.bases["all"].rule_arrays)
        expected = recommend_reference(engine.arrays, ["b", "c"], 2)
        lines = captured.out.splitlines()
        assert "basis 'all'" in lines[0]
        assert f"{expected.matched_rules} rule(s) matched" in lines[1]
        for rec, line in zip(expected.recommendations, lines[2:]):
            assert "{" + ", ".join(rec.items) + "}" in line
            assert f"confidence={rec.confidence:.3f}" in line

    def test_explicit_basis_and_unknown_items(self, fig1_store, capsys):
        path, _ = fig1_store
        code, captured = self.run(
            capsys, "recommend", "--store", str(path), "--basket", "a zz", "--basis", "dg"
        )
        assert code == 0
        assert "basis 'dg'" in captured.out
        assert "1 unknown item(s) ignored" in captured.out

    def test_interactive_loop(self, fig1_store, capsys, monkeypatch):
        import io

        path, _ = fig1_store
        monkeypatch.setattr("sys.stdin", io.StringIO("a\nb c\n\nignored\n"))
        code, captured = self.run(
            capsys, "recommend", "--store", str(path), "--interactive"
        )
        assert code == 0
        # Two answered baskets, then the blank line stops the loop.
        assert captured.out.count("rule(s) matched") == 2

    def test_user_errors_are_clean(self, fig1_store, capsys):
        path, _ = fig1_store
        for args in (
            ["recommend", "--store", str(path)],
            ["recommend", "--store", str(path), "--basket", "a", "--basis", "nope"],
            ["recommend", "--store", str(path), "--basket", "a", "-k", "0"],
        ):
            code, captured = self.run(capsys, *args)
            assert code == 2
            assert "error" in captured.err


# ----------------------------------------------------------------------
# Hypothesis: indexed + sharded top-k == brute-force object scan
# ----------------------------------------------------------------------
@st.composite
def recommendation_cases(draw):
    n_items = draw(st.integers(min_value=1, max_value=70))
    universe = tuple(f"i{j:03d}" for j in range(n_items))
    n_rules = draw(st.integers(min_value=0, max_value=25))
    rules = []
    for _ in range(n_rules):
        consequent = draw(
            st.sets(st.sampled_from(universe), min_size=1, max_size=min(4, n_items))
        )
        remaining = [item for item in universe if item not in consequent]
        antecedent = (
            draw(st.sets(st.sampled_from(remaining), max_size=3))
            if remaining
            else set()
        )
        # Tiny value pools force plenty of confidence/support ties, so
        # the row-order tie-break is exercised constantly.
        confidence = draw(st.sampled_from([0.25, 0.5, 0.75, 1.0]))
        support = draw(st.sampled_from([0.2, 0.4, 0.6]))
        rules.append((antecedent, consequent, support, confidence))
    basket = draw(st.sets(st.sampled_from(universe + ("zz_unknown",)), max_size=6))
    k = draw(st.integers(min_value=1, max_value=5))
    return universe, rules, basket, k


@given(case=recommendation_cases(), workers=st.sampled_from([1, 3]))
@settings(deadline=None, max_examples=60)
def test_property_topk_equals_bruteforce(case, workers):
    universe, rules, basket, k = case
    engine = Recommender(make_arrays(universe, rules), workers=workers)
    assert engine.query(basket, k) == recommend_reference(engine.arrays, basket, k)
