"""Tests for the classical all-valid-rules generation (the baseline)."""

from __future__ import annotations

import pytest

from repro import Apriori
from repro.algorithms.rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)
from repro.core.itemset import Itemset
from repro.errors import InvalidParameterError


class TestGenerateAllRules:
    def test_toy_rule_count_at_half_confidence(self, toy_frequent):
        assert len(generate_all_rules(toy_frequent, minconf=0.5)) == 50

    def test_every_rule_is_valid(self, toy_db, toy_frequent):
        rules = generate_all_rules(toy_frequent, minconf=0.6)
        assert rules
        for rule in rules:
            union = rule.antecedent.union(rule.consequent)
            expected_support = toy_db.support(union)
            expected_confidence = toy_db.support_count(union) / toy_db.support_count(
                rule.antecedent
            )
            assert rule.support == pytest.approx(expected_support)
            assert rule.confidence == pytest.approx(expected_confidence)
            assert rule.confidence >= 0.6

    def test_rule_sides_are_nonempty_and_disjoint(self, toy_frequent):
        for rule in generate_all_rules(toy_frequent, minconf=0.0):
            assert rule.antecedent
            assert rule.consequent
            assert rule.antecedent.isdisjoint(rule.consequent)

    def test_monotone_in_minconf(self, toy_frequent):
        sizes = [
            len(generate_all_rules(toy_frequent, minconf=c))
            for c in (0.0, 0.5, 0.7, 0.9, 1.0)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_exhaustive_against_manual_enumeration(self, toy_db, toy_frequent):
        expected = set()
        for itemset in toy_frequent:
            if len(itemset) < 2:
                continue
            for antecedent in itemset.nonempty_proper_subsets():
                confidence = toy_db.support_count(itemset) / toy_db.support_count(
                    antecedent
                )
                if confidence >= 0.7:
                    expected.add((antecedent, itemset.difference(antecedent)))
        rules = generate_all_rules(toy_frequent, minconf=0.7)
        assert rules.keys() == expected

    def test_minconf_validation(self, toy_frequent):
        with pytest.raises(InvalidParameterError):
            generate_all_rules(toy_frequent, minconf=1.5)

    def test_min_rule_size_parameter(self, toy_frequent):
        rules = generate_all_rules(toy_frequent, minconf=0.5, min_rule_size=3)
        assert all(len(rule.itemset) >= 3 for rule in rules)


class TestExactAndApproximateSplits:
    def test_exact_rules_have_confidence_one(self, toy_frequent):
        exact = generate_exact_rules(toy_frequent)
        assert exact
        assert all(rule.is_exact for rule in exact)

    def test_toy_exact_rules_are_the_known_ones(self, toy_frequent):
        exact = generate_exact_rules(toy_frequent)
        # Spot-check the classic implications of the toy context.
        assert exact.get(Itemset("a"), Itemset("c")) is not None
        assert exact.get(Itemset("b"), Itemset("e")) is not None
        assert exact.get(Itemset("ab"), Itemset("ce")) is not None
        assert exact.get(Itemset("c"), Itemset("a")) is None

    def test_approximate_rules_exclude_exact_ones(self, toy_frequent):
        approximate = generate_approximate_rules(toy_frequent, minconf=0.5)
        assert approximate
        assert all(rule.confidence < 1.0 for rule in approximate)

    def test_partition_covers_all_rules(self, toy_frequent):
        minconf = 0.5
        all_rules = generate_all_rules(toy_frequent, minconf=minconf)
        exact = generate_exact_rules(toy_frequent)
        approximate = generate_approximate_rules(toy_frequent, minconf=minconf)
        assert len(all_rules) == len(exact) + len(approximate)
        assert exact.union(approximate).same_rules(all_rules)

    def test_rule_counts_on_dense_smoke_data(self, dense_smoke_db):
        frequent = Apriori(minsup=0.3).mine(dense_smoke_db)
        all_rules = generate_all_rules(frequent, minconf=0.7)
        exact = generate_exact_rules(frequent)
        # Dense correlated data must produce a non-trivial number of exact
        # rules — that is the redundancy the paper is about.
        assert len(exact) > 10
        assert len(all_rules) > len(exact)
