"""Round-trip tests: rules derived from the bases == rules generated naively.

This is the paper's central claim exercised end to end: mine the frequent
and closed itemsets, build the two bases, throw the database away, and
reconstruct every valid association rule — with its exact support and
confidence — from the bases alone.
"""

from __future__ import annotations

import pytest

from repro import (
    Apriori,
    BasisDerivation,
    Close,
    LuxenburgerBasis,
    build_duquenne_guigues_basis,
)
from repro.algorithms.rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)
from repro.core.itemset import Itemset
from repro.errors import DerivationError, InvalidParameterError


def build_derivation(db, minsup, minconf=0.0):
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    dg = build_duquenne_guigues_basis(frequent, closed)
    lux = LuxenburgerBasis(closed, minconf=minconf, transitive_reduction=True)
    return frequent, BasisDerivation(dg, lux, n_objects=db.n_objects)


class TestPrimitives:
    def test_closure_and_supports_on_toy(self, toy_db):
        frequent, derivation = build_derivation(toy_db, 0.4)
        assert derivation.closure(Itemset("a")) == Itemset("ac")
        assert derivation.support_count(Itemset("a")) == 3
        assert derivation.support(Itemset("bc")) == pytest.approx(0.6)
        assert derivation.support_count(Itemset("abce")) == 2

    def test_confidence_reconstruction(self, toy_db):
        _, derivation = build_derivation(toy_db, 0.4)
        assert derivation.confidence(Itemset("a"), Itemset("c")) == 1.0
        assert derivation.confidence(Itemset("c"), Itemset("a")) == pytest.approx(0.75)
        assert derivation.confidence(Itemset("c"), Itemset("abe")) == pytest.approx(0.5)

    def test_derive_single_rule(self, toy_db):
        _, derivation = build_derivation(toy_db, 0.4)
        rule = derivation.derive_rule(Itemset("c"), Itemset("be"))
        assert rule.support == pytest.approx(0.6)
        assert rule.confidence == pytest.approx(0.75)
        assert rule.support_count == 3

    def test_unknown_closed_support_raises(self, toy_db):
        _, derivation = build_derivation(toy_db, 0.4)
        with pytest.raises(DerivationError):
            derivation.support_count_of_closed(Itemset("ad"))

    def test_invalid_constructor_arguments(self, toy_db):
        frequent, derivation = build_derivation(toy_db, 0.4)
        with pytest.raises(InvalidParameterError):
            BasisDerivation.__init__(derivation, None, None, n_objects=0)
        with pytest.raises(InvalidParameterError):
            derivation.derive_approximate_rules(frequent, minconf=2.0)


class TestRoundTrip:
    @pytest.mark.parametrize("minconf", [0.0, 0.5, 0.7, 0.9])
    def test_toy_round_trip(self, toy_db, minconf):
        frequent, derivation = build_derivation(toy_db, 0.4)
        naive = generate_all_rules(frequent, minconf=minconf)
        derived = derivation.derive_all_rules(frequent, minconf)
        assert naive.same_rules_and_statistics(derived)

    @pytest.mark.parametrize("minsup", [0.1, 0.25, 0.5])
    def test_random_databases_round_trip(self, random_db, minsup):
        frequent, derivation = build_derivation(random_db, minsup)
        for minconf in (0.4, 0.7):
            naive = generate_all_rules(frequent, minconf=minconf)
            derived = derivation.derive_all_rules(frequent, minconf)
            assert naive.same_rules_and_statistics(derived)

    def test_exact_rules_round_trip(self, random_db):
        frequent, derivation = build_derivation(random_db, 0.2)
        naive = generate_exact_rules(frequent)
        derived = derivation.derive_exact_rules(frequent)
        assert naive.same_rules_and_statistics(derived)

    def test_approximate_rules_round_trip(self, random_db):
        frequent, derivation = build_derivation(random_db, 0.2)
        naive = generate_approximate_rules(frequent, minconf=0.5)
        derived = derivation.derive_approximate_rules(frequent, minconf=0.5)
        assert naive.same_rules_and_statistics(derived)

    def test_universal_item_round_trip(self, allx_db):
        frequent, derivation = build_derivation(allx_db, 0.25)
        naive = generate_all_rules(frequent, minconf=0.3)
        derived = derivation.derive_all_rules(frequent, 0.3)
        assert naive.same_rules_and_statistics(derived)

    def test_dense_smoke_round_trip(self, dense_smoke_db):
        frequent, derivation = build_derivation(dense_smoke_db, 0.4)
        naive = generate_all_rules(frequent, minconf=0.7)
        derived = derivation.derive_all_rules(frequent, 0.7)
        assert naive.same_rules_and_statistics(derived)

    def test_derivation_works_from_full_luxenburger_basis_too(self, toy_db):
        frequent = Apriori(0.4).mine(toy_db)
        closed = Close(0.4).mine(toy_db)
        dg = build_duquenne_guigues_basis(frequent, closed)
        full = LuxenburgerBasis(closed, minconf=0.0, transitive_reduction=False)
        derivation = BasisDerivation(dg, full, n_objects=toy_db.n_objects)
        naive = generate_all_rules(frequent, minconf=0.5)
        derived = derivation.derive_all_rules(frequent, 0.5)
        assert naive.same_rules_and_statistics(derived)
