"""Tests for the sampling / splitting utilities."""

from __future__ import annotations

import pytest

from repro.data.context import TransactionDatabase
from repro.data.sampling import bootstrap_objects, sample_objects, split_objects
from repro.errors import InvalidParameterError


class TestSampleObjects:
    def test_sample_size_and_item_universe(self, dense_smoke_db):
        sample = sample_objects(dense_smoke_db, 30, seed=1)
        assert sample.n_objects == 30
        assert sample.items == dense_smoke_db.items
        assert "sample30" in sample.name

    def test_sampling_is_deterministic(self, dense_smoke_db):
        first = sample_objects(dense_smoke_db, 25, seed=3)
        second = sample_objects(dense_smoke_db, 25, seed=3)
        assert first.transactions() == second.transactions()

    def test_sampling_whole_database_returns_it_unchanged(self, toy_db):
        assert sample_objects(toy_db, 10, seed=0) is toy_db

    def test_sampled_transactions_come_from_the_original(self, toy_db):
        sample = sample_objects(toy_db, 3, seed=5)
        original = set(toy_db.transactions())
        assert all(row in original for row in sample)

    def test_invalid_size(self, toy_db):
        with pytest.raises(InvalidParameterError):
            sample_objects(toy_db, 0)

    def test_oversized_sample_with_new_name_is_renamed(self, toy_db):
        renamed = sample_objects(toy_db, toy_db.n_objects + 5, name="alias")
        assert renamed is not toy_db
        assert renamed.name == "alias"
        assert renamed.transactions() == toy_db.transactions()
        assert renamed.items == toy_db.items
        assert renamed.object_ids == toy_db.object_ids

    def test_oversized_sample_with_same_name_is_identity(self, toy_db):
        assert sample_objects(toy_db, 99, name=toy_db.name) is toy_db


class TestSplitObjects:
    def test_split_sizes_and_disjointness(self, dense_smoke_db):
        first, second = split_objects(dense_smoke_db, 0.25, seed=2)
        assert first.n_objects + second.n_objects == dense_smoke_db.n_objects
        assert first.n_objects == round(0.25 * dense_smoke_db.n_objects)
        assert set(first.object_ids).isdisjoint(second.object_ids)

    def test_split_preserves_item_universe(self, dense_smoke_db):
        first, second = split_objects(dense_smoke_db, 0.5, seed=2)
        assert first.items == dense_smoke_db.items
        assert second.items == dense_smoke_db.items

    def test_invalid_fraction(self, toy_db):
        with pytest.raises(InvalidParameterError):
            split_objects(toy_db, 0.0)
        with pytest.raises(InvalidParameterError):
            split_objects(toy_db, 1.0)

    def test_empty_side_raises_instead_of_returning_empty_database(self):
        lonely = TransactionDatabase([["a", "b"]])
        with pytest.raises(InvalidParameterError, match="one side would be empty"):
            split_objects(lonely, 0.5)
        pair = TransactionDatabase([["a"], ["b"]])
        with pytest.raises(InvalidParameterError, match="one side would be empty"):
            split_objects(pair, 0.1)
        # the smallest splittable case still works
        first, second = split_objects(pair, 0.5, seed=0)
        assert first.n_objects == 1 and second.n_objects == 1


class TestBootstrap:
    def test_default_size_matches_original(self, toy_db):
        resample = bootstrap_objects(toy_db, seed=1)
        assert resample.n_objects == toy_db.n_objects

    def test_explicit_size(self, toy_db):
        assert bootstrap_objects(toy_db, n_objects=12, seed=1).n_objects == 12

    def test_deterministic(self, toy_db):
        assert (
            bootstrap_objects(toy_db, seed=9).transactions()
            == bootstrap_objects(toy_db, seed=9).transactions()
        )

    def test_invalid_size(self, toy_db):
        with pytest.raises(InvalidParameterError):
            bootstrap_objects(toy_db, n_objects=0)
