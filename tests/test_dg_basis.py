"""Tests for the Duquenne-Guigues basis of exact rules (Theorem 1)."""

from __future__ import annotations

import pytest

from repro import Apriori, Close, build_duquenne_guigues_basis
from repro.algorithms.rule_generation import generate_exact_rules
from repro.core.itemset import Itemset


def build(db, minsup):
    frequent = Apriori(minsup).mine(db)
    closed = Close(minsup).mine(db)
    return frequent, closed, build_duquenne_guigues_basis(frequent, closed)


class TestToyBasis:
    def test_rules_of_the_toy_context(self, toy_db):
        _, _, basis = build(toy_db, 0.4)
        keys = {(rule.antecedent, rule.consequent) for rule in basis}
        assert keys == {
            (Itemset("a"), Itemset("c")),
            (Itemset("b"), Itemset("e")),
            (Itemset("e"), Itemset("b")),
        }

    def test_rule_statistics(self, toy_db):
        _, _, basis = build(toy_db, 0.4)
        rule = basis.rules.get(Itemset("a"), Itemset("c"))
        assert rule is not None
        assert rule.confidence == 1.0
        assert rule.support == pytest.approx(0.6)
        assert rule.support_count == 3

    def test_len_matches_pseudo_closed_count(self, toy_db):
        _, _, basis = build(toy_db, 0.4)
        assert len(basis) == len(basis.pseudo_closed_itemsets) == 3

    def test_universal_item_context_includes_empty_antecedent_rule(self, allx_db):
        _, _, basis = build(allx_db, 0.25)
        rule = basis.rules.get(Itemset(), Itemset("x"))
        assert rule is not None
        assert rule.support == pytest.approx(1.0)


class TestSemanticClosure:
    @pytest.mark.parametrize("minsup", [0.1, 0.3, 0.5])
    def test_implied_closure_equals_galois_closure_on_frequent_itemsets(
        self, random_db, minsup
    ):
        """The basis axiomatises h on the frequent itemsets."""
        frequent, _, basis = build(random_db, minsup)
        for itemset in frequent:
            assert basis.implied_closure(itemset) == random_db.closure(itemset)

    def test_implied_closure_of_empty_set(self, allx_db):
        _, _, basis = build(allx_db, 0.25)
        assert basis.implied_closure(Itemset()) == Itemset("x")

    def test_derives_every_naive_exact_rule(self, random_db):
        frequent, _, basis = build(random_db, 0.2)
        for rule in generate_exact_rules(frequent):
            assert basis.derives(rule.antecedent, rule.consequent)

    def test_does_not_derive_approximate_implications(self, toy_db):
        _, _, basis = build(toy_db, 0.4)
        # c -> a has confidence 0.75 < 1 and must not be derivable.
        assert not basis.derives(Itemset("c"), Itemset("a"))
        assert not basis.derives(Itemset("be"), Itemset("c"))


class TestMinimality:
    def test_toy_basis_is_non_redundant(self, toy_db):
        _, _, basis = build(toy_db, 0.4)
        assert basis.is_non_redundant()

    @pytest.mark.parametrize("seed_minsup", [0.2, 0.4])
    def test_random_bases_are_non_redundant(self, random_db, seed_minsup):
        _, _, basis = build(random_db, seed_minsup)
        assert basis.is_non_redundant()

    def test_basis_is_never_larger_than_the_naive_exact_rule_set(self, random_db):
        frequent, _, basis = build(random_db, 0.2)
        naive = generate_exact_rules(frequent)
        if len(naive) > 0:
            assert len(basis) <= len(naive)

    def test_basis_much_smaller_on_dense_data(self, dense_smoke_db):
        frequent, _, basis = build(dense_smoke_db, 0.3)
        naive = generate_exact_rules(frequent)
        assert len(naive) > 5 * max(len(basis), 1)
