"""Unit tests for :class:`AssociationRule` and :class:`RuleSet`."""

from __future__ import annotations

import pytest

from repro.core.itemset import Itemset
from repro.core.rules import AssociationRule, RuleSet
from repro.errors import InconsistentRuleError


def rule(antecedent: str, consequent: str, support=0.4, confidence=0.8):
    return AssociationRule(
        Itemset(antecedent), Itemset(consequent), support=support, confidence=confidence
    )


class TestAssociationRule:
    def test_basic_attributes(self):
        r = rule("a", "bc", support=0.4, confidence=2 / 3)
        assert r.antecedent == Itemset("a")
        assert r.consequent == Itemset("bc")
        assert r.itemset == Itemset("abc")
        assert r.support == pytest.approx(0.4)
        assert r.confidence == pytest.approx(2 / 3)

    def test_exact_and_approximate_flags(self):
        assert rule("a", "b", confidence=1.0).is_exact
        assert not rule("a", "b", confidence=0.9).is_exact
        assert rule("a", "b", confidence=0.9).is_approximate

    def test_antecedent_support_is_recovered(self):
        r = rule("a", "b", support=0.4, confidence=0.5)
        assert r.antecedent_support() == pytest.approx(0.8)

    def test_empty_antecedent_is_allowed(self):
        r = AssociationRule(Itemset(), Itemset("x"), support=1.0, confidence=1.0)
        assert r.antecedent == Itemset()

    def test_empty_consequent_is_rejected(self):
        with pytest.raises(InconsistentRuleError):
            AssociationRule(Itemset("a"), Itemset(), support=0.5, confidence=0.5)

    def test_overlapping_sides_are_rejected(self):
        with pytest.raises(InconsistentRuleError):
            AssociationRule(Itemset("ab"), Itemset("bc"), support=0.5, confidence=0.5)

    def test_out_of_range_support_is_rejected(self):
        with pytest.raises(InconsistentRuleError):
            rule("a", "b", support=1.5)
        with pytest.raises(InconsistentRuleError):
            rule("a", "b", support=-0.1)

    def test_out_of_range_confidence_is_rejected(self):
        with pytest.raises(InconsistentRuleError):
            rule("a", "b", confidence=0.0)
        with pytest.raises(InconsistentRuleError):
            rule("a", "b", confidence=1.5)

    def test_equality_ignores_statistics(self):
        assert rule("a", "b", confidence=0.5) == rule("a", "b", confidence=0.9)
        assert hash(rule("a", "b")) == hash(rule("a", "b", confidence=0.9))

    def test_inequality_on_different_sides(self):
        assert rule("a", "b") != rule("a", "c")
        assert rule("a", "b") != rule("b", "a")

    def test_same_statistics(self):
        assert rule("a", "b", 0.4, 0.8).same_statistics(rule("a", "b", 0.4, 0.8))
        assert not rule("a", "b", 0.4, 0.8).same_statistics(rule("a", "b", 0.4, 0.81))

    def test_ordering_is_deterministic(self):
        rules = [rule("b", "c"), rule("a", "c"), rule("a", "b")]
        assert sorted(rules) == [rule("a", "b"), rule("a", "c"), rule("b", "c")]

    def test_str_formats_both_sides(self):
        text = str(rule("a", "bc", support=0.25, confidence=0.5))
        assert "{a} -> {b, c}" in text
        assert "0.250" in text and "0.500" in text

    def test_support_count_is_optional(self):
        r = AssociationRule(Itemset("a"), Itemset("b"), 0.5, 0.5, support_count=10)
        assert r.support_count == 10
        assert rule("a", "b").support_count is None


class TestRuleSet:
    def test_add_and_len(self):
        rules = RuleSet()
        assert rules.add(rule("a", "b"))
        assert not rules.add(rule("a", "b", confidence=0.9))  # duplicate key
        assert len(rules) == 1

    def test_update_counts_new_rules(self):
        rules = RuleSet([rule("a", "b")])
        added = rules.update([rule("a", "b"), rule("a", "c")])
        assert added == 1
        assert len(rules) == 2

    def test_contains_rule_and_key(self):
        rules = RuleSet([rule("a", "b")])
        assert rule("a", "b") in rules
        assert (Itemset("a"), Itemset("b")) in rules
        assert rule("a", "c") not in rules

    def test_get(self):
        rules = RuleSet([rule("a", "b", confidence=0.75)])
        found = rules.get(Itemset("a"), Itemset("b"))
        assert found is not None and found.confidence == pytest.approx(0.75)
        assert rules.get(Itemset("a"), Itemset("c")) is None

    def test_discard(self):
        rules = RuleSet([rule("a", "b")])
        assert rules.discard(rule("a", "b"))
        assert not rules.discard(rule("a", "b"))
        assert len(rules) == 0

    def test_exact_and_approximate_partitions(self):
        rules = RuleSet([rule("a", "b", confidence=1.0), rule("a", "c", confidence=0.5)])
        assert len(rules.exact_rules()) == 1
        assert len(rules.approximate_rules()) == 1
        assert rules.count_exact() == 1
        assert rules.count_approximate() == 1

    def test_confidence_and_support_filters(self):
        rules = RuleSet(
            [rule("a", "b", 0.5, 0.9), rule("a", "c", 0.2, 0.6), rule("b", "c", 0.1, 0.95)]
        )
        assert len(rules.with_min_confidence(0.9)) == 2
        assert len(rules.with_min_support(0.2)) == 2

    def test_set_operations(self):
        first = RuleSet([rule("a", "b"), rule("a", "c")])
        second = RuleSet([rule("a", "c"), rule("b", "c")])
        assert len(first.union(second)) == 3
        assert first.difference(second).keys() == {(Itemset("a"), Itemset("b"))}
        assert first.intersection(second).keys() == {(Itemset("a"), Itemset("c"))}

    def test_same_rules_and_statistics(self):
        first = RuleSet([rule("a", "b", 0.4, 0.8)])
        same = RuleSet([rule("a", "b", 0.4, 0.8)])
        different_stats = RuleSet([rule("a", "b", 0.4, 0.7)])
        assert first.same_rules(different_stats)
        assert first.same_rules_and_statistics(same)
        assert not first.same_rules_and_statistics(different_stats)

    def test_sorted_rules(self):
        rules = RuleSet([rule("b", "c"), rule("a", "b")])
        assert [r.key() for r in rules.sorted_rules()] == [
            (Itemset("a"), Itemset("b")),
            (Itemset("b"), Itemset("c")),
        ]

    def test_averages_on_empty_set(self):
        empty = RuleSet()
        assert empty.average_confidence() == 0.0
        assert empty.average_support() == 0.0
        assert not empty

    def test_averages(self):
        rules = RuleSet([rule("a", "b", 0.4, 0.8), rule("a", "c", 0.2, 0.6)])
        assert rules.average_support() == pytest.approx(0.3)
        assert rules.average_confidence() == pytest.approx(0.7)
