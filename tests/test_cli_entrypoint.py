"""Smoke tests for the ``repro`` console-script entry point.

The entry point is declared in ``pyproject.toml`` and wired to
:func:`repro.experiments.cli.main`; these tests check the declaration,
that ``--help`` works through the module entry (the exact code path the
console script runs), and a tiny end-to-end mine-and-bases run.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.data.io import save_basket_file
from repro.experiments.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestEntryPointDeclaration:
    def test_pyproject_declares_repro_script(self):
        pyproject = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert 'repro = "repro.experiments.cli:main"' in pyproject
        # The historical name keeps working too.
        assert 'repro-mine = "repro.experiments.cli:main"' in pyproject


class TestHelp:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert "repro" in output
        assert "bases" in output

    def test_module_invocation_help(self):
        # The console script calls the same main(); `python -m` exercises
        # the full interpreter-level path without requiring installation.
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "--help"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert result.returncode == 0
        assert "usage: repro" in result.stdout

    @pytest.mark.skipif(
        shutil.which("repro") is None,
        reason="console script not installed in this environment",
    )
    def test_installed_console_script_help(self):
        result = subprocess.run(
            ["repro", "--help"], capture_output=True, text=True
        )
        assert result.returncode == 0
        assert "usage: repro" in result.stdout


class TestEndToEnd:
    def test_tiny_mine_and_bases_run(self, tmp_path, capsys, toy_db):
        path = tmp_path / "toy.basket"
        save_basket_file(toy_db, path)
        assert main(["mine", "--dataset", str(path), "--minsup", "0.4"]) == 0
        assert (
            main(
                [
                    "bases",
                    "--dataset",
                    str(path),
                    "--minsup",
                    "0.4",
                    "--minconf",
                    "0.5",
                    "--bases",
                    "dg,luxenburger-reduced,generic",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "dg [exact]" in output
        assert "generic [exact]" in output

    def test_list_bases_names_all_nine(self, capsys):
        assert main(["list-bases"]) == 0
        output = capsys.readouterr().out
        for name in (
            "all",
            "exact",
            "approximate",
            "dg",
            "luxenburger",
            "luxenburger-reduced",
            "generic",
            "informative",
            "informative-reduced",
        ):
            assert name in output
