"""Tests of the batch closure engines (`repro.engine`).

Four groups of guarantees:

* **batch/single agreement** — property tests that ``closures()`` /
  ``supports()`` / ``extents()`` over a batch agree itemset-by-itemset
  with the single-itemset ``TransactionDatabase`` API and with a
  brute-force reference, on random contexts;
* **engine equivalence** — the numpy and bitset backends return identical
  results on random contexts;
* **cache behaviour** — LRU hits/misses/eviction of the shared closure
  cache;
* **wiring** — the level-wise miners actually route whole candidate
  levels through the engine batch entry points.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import AClose, Apriori, Charm, Close, TransactionDatabase
from repro.core.itemset import Itemset
from repro.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    BitsetClosureEngine,
    NumpyClosureEngine,
    make_engine,
    resolve_engine_name,
)
from repro.errors import InvalidItemsetError, InvalidParameterError

ITEM_POOL = ["a", "b", "c", "d", "e", "f"]


@st.composite
def contexts(draw) -> TransactionDatabase:
    """Random small mining contexts (1–12 objects over 6 items)."""
    n_rows = draw(st.integers(min_value=1, max_value=12))
    rows = [
        draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=len(ITEM_POOL)))
        for _ in range(n_rows)
    ]
    return TransactionDatabase(rows, item_order=ITEM_POOL)


@st.composite
def context_and_batch(draw):
    db = draw(contexts())
    batch = [
        Itemset(draw(st.sets(st.sampled_from(ITEM_POOL), min_size=0, max_size=4)))
        for _ in range(draw(st.integers(min_value=0, max_value=12)))
    ]
    return db, batch


def brute_force_closure(db: TransactionDatabase, itemset: Itemset) -> Itemset:
    covering = [row for row in db if itemset.issubset(row)]
    if not covering:
        return db.item_universe
    result = covering[0]
    for row in covering[1:]:
        result = result.intersection(row)
    return result


def make_random_db(seed: int, n_objects: int = 60, n_items: int = 10):
    rng = random.Random(seed)
    rows = [
        sorted({f"i{rng.randrange(n_items)}" for _ in range(rng.randint(0, 7))})
        for _ in range(n_objects)
    ]
    return TransactionDatabase(rows, name=f"random{seed}")


# ----------------------------------------------------------------------
# Batch results agree with the single-itemset API and brute force
# ----------------------------------------------------------------------
class TestBatchAgreesWithSingle:
    @settings(max_examples=60, deadline=None)
    @given(data=context_and_batch(), engine_name=st.sampled_from(sorted(ENGINES)))
    def test_closures_match_per_itemset_closure(self, data, engine_name):
        db, batch = data
        engine = make_engine(db, engine_name)
        closures = engine.closures(batch)
        assert len(closures) == len(batch)
        for itemset, closure in zip(batch, closures):
            assert closure == db.closure(itemset)
            assert closure == brute_force_closure(db, itemset)

    @settings(max_examples=60, deadline=None)
    @given(data=context_and_batch(), engine_name=st.sampled_from(sorted(ENGINES)))
    def test_supports_and_extents_match_reference(self, data, engine_name):
        db, batch = data
        engine = make_engine(db, engine_name)
        supports = engine.supports(batch)
        extents = engine.extents(batch)
        for itemset, support, extent in zip(batch, supports, extents):
            expected = frozenset(
                t for t, row in enumerate(db) if itemset.issubset(row)
            )
            assert extent == expected
            assert support == len(expected)

    @settings(max_examples=40, deadline=None)
    @given(data=context_and_batch())
    def test_closures_and_supports_consistent(self, data):
        db, batch = data
        pairs = db.engine().closures_and_supports(batch)
        assert pairs == list(
            zip(db.engine().closures(batch), db.engine().supports(batch))
        )

    def test_large_batch_crosses_small_batch_threshold(self):
        # Exercise both the direct decode path (tiny batches) and the
        # dedup + matmul path (large batches) of the numpy engine.
        db = make_random_db(1)
        rng = random.Random(9)
        batch = [
            Itemset(rng.sample(db.items, rng.randint(0, 4))) for _ in range(300)
        ]
        engine = make_engine(db, "numpy", cache_size=0)
        expected = [engine.closure_and_support(c) for c in batch]
        assert engine.closures_and_supports(batch) == expected

    def test_unknown_item_raises(self):
        db = make_random_db(2)
        for name in sorted(ENGINES):
            with pytest.raises(InvalidItemsetError):
                make_engine(db, name).closures([Itemset.of("nope")])

    def test_duplicates_in_one_batch(self):
        db = make_random_db(3)
        itemset = Itemset.of(db.items[0])
        engine = make_engine(db, "numpy")
        closures = engine.closures([itemset, itemset, itemset])
        assert closures[0] == closures[1] == closures[2] == db.closure(itemset)


# ----------------------------------------------------------------------
# The two backends are interchangeable
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(data=context_and_batch())
    def test_numpy_and_bitset_agree(self, data):
        db, batch = data
        numpy_engine = make_engine(db, "numpy")
        bitset_engine = make_engine(db, "bitset")
        assert numpy_engine.closures_and_supports(
            batch
        ) == bitset_engine.closures_and_supports(batch)
        assert numpy_engine.extents(batch) == bitset_engine.extents(batch)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engines_agree_on_larger_random_contexts(self, seed):
        db = make_random_db(seed, n_objects=150, n_items=14)
        rng = random.Random(seed + 100)
        batch = [
            Itemset(rng.sample(db.items, rng.randint(0, 5))) for _ in range(200)
        ]
        assert make_engine(db, "numpy").closures_and_supports(
            batch
        ) == make_engine(db, "bitset").closures_and_supports(batch)

    @pytest.mark.parametrize("engine_name", sorted(ENGINES))
    def test_miners_equivalent_across_engines(self, engine_name):
        db = make_random_db(7, n_objects=80, n_items=9)
        reference = {
            "Close": Close(0.1).mine(db),
            "A-Close": AClose(0.1).mine(db),
            "Apriori": Apriori(0.1).mine(db),
        }
        assert dict(Close(0.1, engine=engine_name).mine(db).items_with_supports()) == dict(
            reference["Close"].items_with_supports()
        )
        assert dict(
            AClose(0.1, engine=engine_name).mine(db).items_with_supports()
        ) == dict(reference["A-Close"].items_with_supports())
        assert dict(
            Apriori(0.1, engine=engine_name).mine(db).items_with_supports()
        ) == dict(reference["Apriori"].items_with_supports())

    def test_empty_context_edge_cases(self):
        db = TransactionDatabase([[]], item_order=["a", "b"])
        for name in sorted(ENGINES):
            engine = make_engine(db, name)
            assert engine.closures([Itemset.empty()]) == [Itemset.empty()]
            assert engine.supports([Itemset.of("a")]) == [0]
            assert engine.closures([Itemset.of("a")]) == [db.item_universe]


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------
class TestClosureCache:
    def test_repeated_single_calls_hit_the_cache(self):
        db = make_random_db(11)
        engine = make_engine(db, "numpy")
        itemset = Itemset.of(db.items[0], db.items[1])
        first = engine.closure_and_support(itemset)
        info_after_first = engine.cache_info()
        second = engine.closure_and_support(itemset)
        info_after_second = engine.cache_info()
        assert first == second
        assert info_after_first.misses == 1 and info_after_first.hits == 0
        assert info_after_second.hits == 1 and info_after_second.misses == 1
        assert info_after_second.currsize == 1

    def test_batch_only_computes_cache_misses(self):
        db = make_random_db(12)
        engine = make_engine(db, "numpy")
        warm = [Itemset.of(item) for item in db.items[:3]]
        cold = [Itemset.of(item) for item in db.items[3:6]]
        engine.closures(warm)
        before = engine.cache_info()
        engine.closures(warm + cold)
        after = engine.cache_info()
        assert after.hits == before.hits + len(warm)
        assert after.misses == before.misses + len(cold)

    def test_supports_use_cached_closure_pairs(self):
        db = make_random_db(13)
        engine = make_engine(db, "numpy")
        itemset = Itemset.of(db.items[0])
        _, support = engine.closure_and_support(itemset)
        assert engine.supports([itemset]) == [support]
        assert engine.cache_info().hits == 1

    def test_lru_eviction_bounds_cache_size(self):
        db = make_random_db(14)
        engine = make_engine(db, "numpy", cache_size=4)
        batch = [Itemset.of(item) for item in db.items[:8]]
        engine.closures(batch)
        info = engine.cache_info()
        assert info.currsize == 4
        # The oldest entries were evicted: querying them misses again.
        engine.closure(batch[0])
        assert engine.cache_info().misses == info.misses + 1
        # The newest entries are still cached.
        engine.closure(batch[-1])
        assert engine.cache_info().hits == info.hits + 1

    def test_cache_clear_and_disabled_cache(self):
        db = make_random_db(15)
        engine = make_engine(db, "numpy")
        engine.closure(Itemset.of(db.items[0]))
        engine.cache_clear()
        info = engine.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)
        uncached = make_engine(db, "numpy", cache_size=0)
        uncached.closure(Itemset.of(db.items[0]))
        uncached.closure(Itemset.of(db.items[0]))
        assert uncached.cache_info().currsize == 0
        assert uncached.cache_info().hits == 0


# ----------------------------------------------------------------------
# Engine selection seam
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_database_engine_accessor_caches_per_backend(self):
        db = make_random_db(21)
        assert db.engine() is db.engine(DEFAULT_ENGINE)
        assert db.engine("bitset") is db.engine("bitset")
        assert isinstance(db.engine("numpy"), NumpyClosureEngine)
        assert isinstance(db.engine("bitset"), BitsetClosureEngine)
        assert db.engine("numpy") is not db.engine("bitset")

    def test_database_default_engine_kwarg(self):
        rows = [["a", "b"], ["a"]]
        db = TransactionDatabase(rows, engine="bitset")
        assert db.default_engine_name == "bitset"
        assert isinstance(db.engine(), BitsetClosureEngine)
        restricted = db.restrict_to_items(["a"])
        assert restricted.default_engine_name == "bitset"

    def test_unknown_engine_name_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_engine_name("fortran")
        db = make_random_db(22)
        with pytest.raises(InvalidParameterError):
            db.engine("fortran")
        with pytest.raises(InvalidParameterError):
            Close(0.5, engine="fortran")

    def test_charm_requires_bitset_engine(self):
        with pytest.raises(InvalidParameterError):
            Charm(0.5, engine="numpy")
        assert Charm(0.5, engine="bitset").engine_name == "bitset"

    def test_database_wrappers_route_through_default_engine(self):
        db = make_random_db(23)
        itemset = Itemset.of(db.items[0])
        db.closure(itemset)
        db.closure(itemset)
        assert db.engine().cache_info().hits >= 1


# ----------------------------------------------------------------------
# The miners actually use the batch entry points
# ----------------------------------------------------------------------
class TestMinersUseBatches:
    def _record_batches(self, monkeypatch, engine, method_name):
        calls: list[int] = []
        original = getattr(engine, method_name)

        def recording(itemsets):
            batch = list(itemsets)
            calls.append(len(batch))
            return original(batch)

        monkeypatch.setattr(engine, method_name, recording)
        return calls

    def test_close_batches_whole_levels(self, monkeypatch):
        db = make_random_db(31)
        engine = db.engine()
        calls = self._record_batches(monkeypatch, engine, "closures_and_supports")
        Close(0.1).mine(db)
        # One batch per level, each covering the full candidate level: far
        # fewer calls than candidates evaluated.
        assert calls and max(calls) > 1
        assert calls[0] == db.n_items

    def test_aclose_batches_supports_and_final_closures(self, monkeypatch):
        db = make_random_db(32)
        engine = db.engine()
        support_calls = self._record_batches(monkeypatch, engine, "supports")
        closure_calls = self._record_batches(monkeypatch, engine, "closures")
        AClose(0.1).mine(db)
        assert support_calls and support_calls[0] == db.n_items
        # Exactly one closure batch: the phase-2 pass over all generators.
        assert len(closure_calls) == 1 and closure_calls[0] > 1

    def test_apriori_batches_support_counting(self, monkeypatch):
        db = make_random_db(33)
        engine = db.engine()
        calls = self._record_batches(monkeypatch, engine, "supports")
        run = Apriori(0.1).run(db)
        assert calls and calls[0] == db.n_items
        # One supports batch per level.
        assert len(calls) == run.statistics.levels
