"""Tests for the Galois connection wrapper and formal-concept enumeration."""

from __future__ import annotations

import pytest

from repro import GaloisConnection, enumerate_concepts
from repro.core.concept import FormalConcept
from repro.core.itemset import Itemset


class TestGaloisConnection:
    def test_f_and_g_on_the_toy_context(self, toy_db):
        connection = GaloisConnection(toy_db)
        assert connection.g(Itemset("a")) == frozenset({0, 2, 4})
        assert connection.f([0, 2, 4]) == Itemset("ac")
        assert connection.h(Itemset("a")) == Itemset("ac")

    def test_database_property(self, toy_db):
        assert GaloisConnection(toy_db).database is toy_db

    def test_support_shortcuts(self, toy_db):
        connection = GaloisConnection(toy_db)
        assert connection.support_count(Itemset("be")) == 4
        assert connection.support(Itemset("be")) == pytest.approx(0.8)

    def test_is_closed_itemset(self, toy_db):
        connection = GaloisConnection(toy_db)
        assert connection.is_closed_itemset(Itemset("bce"))
        assert not connection.is_closed_itemset(Itemset("bc"))

    def test_objectset_closure(self, toy_db):
        connection = GaloisConnection(toy_db)
        # Objects {2, 4} share {a,b,c,e}, whose cover is exactly {2, 4}.
        assert connection.objectset_closure([2, 4]) == frozenset({2, 4})
        # Objects {0, 3} only share nothing, so their closure is every object.
        assert connection.objectset_closure([0, 3]) == frozenset(range(5))

    def test_closed_itemsets_enumeration(self, toy_db):
        connection = GaloisConnection(toy_db)
        closed = set(connection.closed_itemsets())
        # All frequent closed itemsets plus the infrequent ones (acd, the
        # universe, the empty set...).
        expected_members = {
            Itemset(""),
            Itemset("c"),
            Itemset("ac"),
            Itemset("be"),
            Itemset("bce"),
            Itemset("abce"),
            Itemset("acd"),
            Itemset("abcde"),
        }
        assert expected_members <= closed
        for itemset in closed:
            assert toy_db.closure(itemset) == itemset

    def test_concept_count(self, toy_db):
        connection = GaloisConnection(toy_db)
        assert connection.concept_count() == len(set(connection.closed_itemsets()))


class TestFormalConcepts:
    def test_enumerate_concepts_extents_match_intents(self, toy_db):
        concepts = list(enumerate_concepts(toy_db))
        assert concepts == sorted(concepts)
        for concept in concepts:
            assert toy_db.cover(concept.intent) == concept.extent
            assert concept.support_count == len(concept.extent)
            if concept.extent:
                assert toy_db.common_items(concept.extent) == concept.intent

    def test_relative_support(self):
        concept = FormalConcept(
            intent=Itemset("ab"), extent=frozenset({0, 1}), support_count=2
        )
        assert concept.support(4) == pytest.approx(0.5)
        assert concept.support(0) == 0.0

    def test_str(self):
        concept = FormalConcept(
            intent=Itemset("ab"), extent=frozenset({0}), support_count=1
        )
        assert "support_count=1" in str(concept)

    def test_concepts_of_identical_rows(self, identical_rows_db):
        concepts = list(enumerate_concepts(identical_rows_db))
        intents = {concept.intent for concept in concepts}
        assert intents == {Itemset("abc")}
