"""Store integrity: digests, the corruption matrix, atomic writes.

The corruption matrix drives every tamper mode the integrity layer
claims to catch through a real saved container:

* truncation (half the file gone) — caught at any verify level, the
  zip central directory is unreadable;
* a flipped byte in each manifest-listed array's decompressed payload,
  re-zipped with a valid CRC — exactly the silent-corruption case only
  the sha256 digests catch, so ``verify="full"`` must raise;
* a missing array — the manifest inventory check catches it at the
  default ``verify="manifest"``;
* a stale digest (manifest lists a wrong hash) — ``verify="full"``
  raises, ``verify="manifest"`` (inventory only) still loads.

Plus: a live :class:`~repro.serve.app.ServeApp` keeps serving the old
generation when a reload hits a corrupted replacement, and the
:func:`~repro.ioutils.atomic_write` helper used by every saver is
all-or-nothing.
"""

from __future__ import annotations

import io
import json
import zipfile

import numpy as np
import pytest

from repro.data.context import TransactionDatabase
from repro.errors import (
    InvalidParameterError,
    StoreFormatError,
    StoreIntegrityError,
)
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.ioutils import atomic_write
from repro.serve import ServeApp
from repro.store import load_run, read_manifest
from repro.testing import FaultInjector

FIG1 = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


def build_store(path):
    db = TransactionDatabase(FIG1, name="fig1")
    mining = mine_itemsets(db, minsup=0.4)
    return save_artifacts(path, mining, build_rule_artifacts(mining, 0.7))


@pytest.fixture()
def store_path(tmp_path):
    return build_store(tmp_path / "fig1.npz")


def rezip(source, dest, mutate):
    """Rewrite the npz *source* into *dest*, passing each decompressed
    member through *mutate(name, payload) -> payload* (valid CRCs out).
    """
    with zipfile.ZipFile(source) as archive:
        members = {name: archive.read(name) for name in archive.namelist()}
    with zipfile.ZipFile(dest, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, payload in members.items():
            archive.writestr(name, mutate(name, payload))


def listed_arrays(path) -> dict[str, str]:
    return read_manifest(path)["integrity"]["arrays"]


class TestDigestsInManifest:
    def test_saved_manifest_lists_every_array(self, store_path):
        manifest = read_manifest(store_path)
        integrity = manifest["integrity"]
        assert integrity["algorithm"] == "sha256"
        with zipfile.ZipFile(store_path) as archive:
            members = {
                name.removesuffix(".npy")
                for name in archive.namelist()
                if name != "manifest.npy"
            }
        assert set(integrity["arrays"]) == members

    def test_full_verify_round_trip(self, store_path):
        run = load_run(store_path, verify="full")
        assert run.name == "fig1"

    def test_bad_verify_mode_rejected(self, store_path):
        with pytest.raises(InvalidParameterError, match="verify"):
            load_run(store_path, verify="paranoid")


class TestCorruptionMatrix:
    def test_truncated_container(self, store_path):
        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StoreIntegrityError):
            load_run(store_path)

    def test_flipped_byte_in_each_listed_array(self, store_path, tmp_path):
        """Silent bitrot in any array payload must fail ``verify="full"``.

        The flip happens on the *decompressed* bytes and the member is
        re-zipped, so zip CRCs are valid and only the digests disagree.
        """
        corrupt = tmp_path / "corrupt.npz"
        flipped = 0
        for key in listed_arrays(store_path):
            member = f"{key}.npy"

            def mutate(name, payload, member=member):
                if name != member:
                    return payload
                mutated = bytearray(payload)
                mutated[-1] ^= 0x01  # last byte: array data, not header
                return bytes(mutated)

            rezip(store_path, corrupt, mutate)
            if corrupt.read_bytes() == store_path.read_bytes():
                continue  # zero-byte array; nothing to corrupt
            flipped += 1
            with pytest.raises(StoreIntegrityError, match=key):
                load_run(corrupt, verify="full")
        assert flipped > 0

    def test_missing_array(self, store_path, tmp_path):
        victim = next(iter(listed_arrays(store_path)))
        stripped = tmp_path / "stripped.npz"
        with zipfile.ZipFile(store_path) as archive:
            members = {
                name: archive.read(name)
                for name in archive.namelist()
                if name != f"{victim}.npy"
            }
        with zipfile.ZipFile(stripped, "w", zipfile.ZIP_DEFLATED) as archive:
            for name, payload in members.items():
                archive.writestr(name, payload)
        with pytest.raises(StoreIntegrityError, match=victim):
            load_run(stripped)  # default verify="manifest" suffices

    def test_stale_digest(self, store_path, tmp_path):
        victim = next(iter(listed_arrays(store_path)))
        stale = tmp_path / "stale.npz"

        def mutate(name, payload):
            if name != "manifest.npy":
                return payload
            header_end = payload.index(b"\n") + 1
            manifest = json.loads(bytes(payload[header_end:]))
            manifest["integrity"]["arrays"][victim] = "0" * 64
            body = json.dumps(manifest, sort_keys=True).encode("utf-8")
            buffer = io.BytesIO()
            np.save(buffer, np.frombuffer(body, dtype=np.uint8))
            return buffer.getvalue()

        rezip(store_path, stale, mutate)
        with pytest.raises(StoreIntegrityError, match=victim):
            load_run(stale, verify="full")
        # Inventory-only verification does not recompute digests.
        assert load_run(stale, verify="manifest").name == "fig1"

    def test_legacy_store_without_digests(self, store_path, tmp_path):
        """A pre-integrity container fails closed, with an escape hatch."""
        legacy = tmp_path / "legacy.npz"

        def mutate(name, payload):
            if name != "manifest.npy":
                return payload
            header_end = payload.index(b"\n") + 1
            manifest = json.loads(bytes(payload[header_end:]))
            del manifest["integrity"]
            body = json.dumps(manifest, sort_keys=True).encode("utf-8")
            buffer = io.BytesIO()
            np.save(buffer, np.frombuffer(body, dtype=np.uint8))
            return buffer.getvalue()

        rezip(store_path, legacy, mutate)
        with pytest.raises(StoreIntegrityError, match="verify='off'"):
            load_run(legacy)
        assert load_run(legacy, verify="off").name == "fig1"

    def test_integrity_error_is_a_store_format_error(self):
        assert issubclass(StoreIntegrityError, StoreFormatError)


class TestReloadKeepsOldGeneration:
    def test_corrupt_replacement_keeps_serving(self, store_path):
        app = ServeApp(store_path, watch=False)
        status, healthy = app.handle("GET", "/healthz")
        assert status == 200 and healthy["generation"] == 1

        data = store_path.read_bytes()
        store_path.write_bytes(data[: len(data) // 2])
        app.request_reload()  # what the SIGHUP handler calls
        status, payload = app.handle("GET", "/healthz")
        assert status == 200 and payload["generation"] == 1

        status, metrics = app.handle("GET", "/metrics")
        assert metrics["reload_failures"] == 1
        assert metrics["integrity_failures"] == 1
        assert "readable" in metrics["last_reload_error"]

        # ... and the repaired store reloads fine afterwards.
        store_path.write_bytes(data)
        app.request_reload()
        status, payload = app.handle("GET", "/healthz")
        assert status == 200 and payload["generation"] == 2


class TestAtomicWrite:
    def test_success_is_visible_whole(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_write(target, "w", encoding="utf-8") as handle:
            handle.write("hello\n")
        assert target.read_text(encoding="utf-8") == "hello\n"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_leaves_no_trace(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original", encoding="utf-8")
        with pytest.raises(RuntimeError):
            with atomic_write(target, "w", encoding="utf-8") as handle:
                handle.write("partial")
                raise RuntimeError("crash mid-write")
        assert target.read_text(encoding="utf-8") == "original"
        assert list(tmp_path.iterdir()) == [target]

    def test_append_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_write(tmp_path / "x", "a"):
                pass


class TestFaultSpecParsing:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="valid:"):
            FaultInjector("serve.request:explode")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="point:action"):
            FaultInjector("serve.request")

    def test_non_numeric_argument_rejected(self):
        with pytest.raises(ValueError, match="number"):
            FaultInjector("serve.request:slow:fast")

    def test_empty_spec_arms_nothing(self):
        assert not FaultInjector(None)
        assert not FaultInjector("")

    def test_accept_error_is_transient(self):
        injector = FaultInjector("serve.accept:error:2")
        for _ in range(2):
            with pytest.raises(OSError, match="injected"):
                injector.fire("serve.accept")
        injector.fire("serve.accept")  # budget exhausted: no-op

    def test_truncate_is_one_shot(self, tmp_path):
        victim = tmp_path / "store.npz"
        victim.write_bytes(b"x" * 100)
        injector = FaultInjector("store.load:truncate")
        injector.fire("store.load", path=victim)
        assert victim.stat().st_size == 50
        injector.fire("store.load", path=victim)
        assert victim.stat().st_size == 50  # second fire is a no-op
