"""Property tests of the bit-packed matrix against plain numpy bool ops.

Every :class:`~repro.core.bitmatrix.BitMatrix` operation must agree with
the corresponding dense numpy operation on random matrices (including
degenerate 0-row / 0-column shapes and widths straddling the 64-bit word
boundary), and the packed order constructions must agree with the dense
ones of :mod:`repro.core.order` on random itemset families — both in
canonical (size-sorted) member order, which enables the pruned fast
path, and shuffled, which exercises the full-scan fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bitmatrix import (
    BitMatrix,
    packed_containment,
    packed_hasse_reduction,
)
from repro.core.itemset import Itemset
from repro.core.order import (
    containment_matrix,
    hasse_reduction,
    pack_itemset_masks,
)


@st.composite
def bool_matrices(draw, max_rows: int = 24, max_cols: int = 150) -> np.ndarray:
    """Random bool matrices; widths deliberately straddle the word size."""
    n_rows = draw(st.integers(min_value=0, max_value=max_rows))
    n_cols = draw(st.integers(min_value=0, max_value=max_cols))
    bits = draw(
        st.lists(
            st.booleans(), min_size=n_rows * n_cols, max_size=n_rows * n_cols
        )
    )
    return np.array(bits, dtype=bool).reshape(n_rows, n_cols)


@st.composite
def matrix_pairs(draw):
    """Two equal-shape random bool matrices."""
    first = draw(bool_matrices())
    second = (
        np.array(
            draw(
                st.lists(
                    st.booleans(), min_size=first.size, max_size=first.size
                )
            ),
            dtype=bool,
        ).reshape(first.shape)
    )
    return first, second


@st.composite
def matmul_operands(draw):
    """Random bool matrices with compatible inner dimensions."""
    n, k, m = (draw(st.integers(min_value=0, max_value=20)) for _ in range(3))
    left = np.array(
        draw(st.lists(st.booleans(), min_size=n * k, max_size=n * k)), dtype=bool
    ).reshape(n, k)
    right = np.array(
        draw(st.lists(st.booleans(), min_size=k * m, max_size=k * m)), dtype=bool
    ).reshape(k, m)
    return left, right


@st.composite
def itemset_families(draw):
    """Random distinct itemset families over a 16-item universe."""
    universe = list("abcdefghijklmnop")
    members = draw(
        st.sets(
            st.frozensets(st.sampled_from(universe), min_size=0, max_size=9),
            min_size=1,
            max_size=30,
        )
    )
    return sorted(Itemset(member) for member in members)


class TestBitMatrixVsDense:
    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_pack_roundtrip_and_shape(self, dense):
        packed = BitMatrix.from_dense(dense)
        assert packed.shape == dense.shape
        assert np.array_equal(packed.to_dense(), dense)

    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_popcount_statistics(self, dense):
        packed = BitMatrix.from_dense(dense)
        assert np.array_equal(packed.row_counts(), dense.sum(axis=1))
        assert np.array_equal(packed.column_counts(), dense.sum(axis=0))
        assert packed.count() == int(dense.sum())

    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_row_and_column_views(self, dense):
        packed = BitMatrix.from_dense(dense)
        for row in range(dense.shape[0]):
            assert np.array_equal(packed.row_bool(row), dense[row])
            assert np.array_equal(
                packed.row_indices(row), np.nonzero(dense[row])[0]
            )
        for col in range(dense.shape[1]):
            assert np.array_equal(packed.column_bool(col), dense[:, col])
            assert np.array_equal(
                packed.column_indices(col), np.nonzero(dense[:, col])[0]
            )
        if dense.size:
            assert packed.get(0, 0) == bool(dense[0, 0])

    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_nonzero_matches_numpy(self, dense):
        packed = BitMatrix.from_dense(dense)
        rows, cols = packed.nonzero()
        expected_rows, expected_cols = np.nonzero(dense)
        assert np.array_equal(rows, expected_rows)
        assert np.array_equal(cols, expected_cols)

    @settings(max_examples=80, deadline=None)
    @given(pair=matrix_pairs())
    def test_elementwise_ops(self, pair):
        first, second = pair
        left, right = BitMatrix.from_dense(first), BitMatrix.from_dense(second)
        assert np.array_equal((left & right).to_dense(), first & second)
        assert np.array_equal((left | right).to_dense(), first | second)
        assert np.array_equal(left.and_not(right).to_dense(), first & ~second)
        assert np.array_equal(left.logical_not().to_dense(), ~first)

    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_logical_not_preserves_padding_invariant(self, dense):
        negated = BitMatrix.from_dense(dense).logical_not()
        # Popcounts would overcount if padding bits past n_cols leaked.
        assert negated.count() == int((~dense).sum())

    @settings(max_examples=80, deadline=None)
    @given(dense=bool_matrices())
    def test_clear_diagonal(self, dense):
        packed = BitMatrix.from_dense(dense)
        packed.clear_diagonal()
        expected = dense.copy()
        n = min(expected.shape)
        expected[np.arange(n), np.arange(n)] = False
        assert np.array_equal(packed.to_dense(), expected)

    @settings(max_examples=80, deadline=None)
    @given(operands=matmul_operands())
    def test_bool_matmul_matches_dense(self, operands):
        left, right = operands
        expected = (left.astype(np.int64) @ right.astype(np.int64)) > 0
        product = BitMatrix.from_dense(left).bool_matmul(
            BitMatrix.from_dense(right)
        )
        assert product.shape == expected.shape
        assert np.array_equal(product.to_dense(), expected)

    def test_shape_mismatch_raises(self):
        left = BitMatrix.zeros(2, 3)
        right = BitMatrix.zeros(2, 4)
        with pytest.raises(ValueError):
            left & right  # noqa: B018 - the op itself is the assertion
        with pytest.raises(ValueError):
            left.bool_matmul(right)

    def test_copy_is_independent(self):
        original = BitMatrix.from_dense(np.ones((2, 2), dtype=bool))
        duplicate = original.copy()
        duplicate.clear_diagonal()
        assert original.count() == 4
        assert duplicate.count() == 2


class TestPackedOrderConstruction:
    @settings(max_examples=60, deadline=None)
    @given(members=itemset_families())
    def test_containment_matches_dense(self, members):
        masks, _ = pack_itemset_masks(members)
        assert np.array_equal(
            packed_containment(masks).to_dense(), containment_matrix(masks)
        )

    @settings(max_examples=60, deadline=None)
    @given(members=itemset_families(), seed=st.integers(0, 2**16))
    def test_containment_unsorted_fallback(self, members, seed):
        # Shuffled member order disables the size-pruned fast path; the
        # full-scan fallback must give the same relation.
        shuffled = list(members)
        np.random.default_rng(seed).shuffle(shuffled)
        masks, _ = pack_itemset_masks(shuffled)
        assert np.array_equal(
            packed_containment(masks).to_dense(), containment_matrix(masks)
        )

    @settings(max_examples=60, deadline=None)
    @given(members=itemset_families())
    def test_hasse_reduction_matches_dense(self, members):
        masks, _ = pack_itemset_masks(members)
        dense_proper = containment_matrix(masks)
        packed_proper = packed_containment(masks)
        assert np.array_equal(
            packed_hasse_reduction(packed_proper).to_dense(),
            hasse_reduction(dense_proper),
        )
