"""Golden-file regression tests pinning the CLI's exact output.

The paper-table pipeline is the product surface of this reproduction:
``repro bases`` on the Fig. 1 toy context and the ``repro experiment
T6`` basis-statistics table are pinned character-for-character against
golden files under ``tests/golden/``, so a refactor that silently drifts
a count, a float format or a rule ordering fails loudly instead of
shipping different tables.

To regenerate after an *intentional* output change::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_cli_golden.py

then review the golden diff like any other code change.
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

import pytest

from repro.experiments import cli

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The five-transaction context of the paper's running example (Fig. 1).
FIG1_TRANSACTIONS = [
    ["a", "c", "d"],
    ["b", "c", "e"],
    ["a", "b", "c", "e"],
    ["b", "e"],
    ["a", "b", "c", "e"],
]


def check_golden(name: str, actual: str) -> None:
    """Compare *actual* against the golden file (or regenerate it)."""
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual, encoding="utf-8")
        pytest.skip(f"golden file {name} regenerated")
    assert path.exists(), (
        f"golden file {path} is missing; run with REPRO_UPDATE_GOLDEN=1 "
        "to create it"
    )
    expected = path.read_text(encoding="utf-8")
    if actual != expected:
        diff = "".join(
            difflib.unified_diff(
                expected.splitlines(keepends=True),
                actual.splitlines(keepends=True),
                fromfile=f"golden/{name}",
                tofile="actual",
            )
        )
        raise AssertionError(f"CLI output drifted from golden/{name}:\n{diff}")


@pytest.fixture()
def fig1_basket(tmp_path) -> Path:
    """The Fig. 1 context as a basket file with a stable dataset name."""
    path = tmp_path / "fig1.basket"
    path.write_text(
        "".join(" ".join(row) + "\n" for row in FIG1_TRANSACTIONS), encoding="utf-8"
    )
    return path


def run_cli(capsys, *args: str) -> str:
    assert cli.main(list(args)) == 0
    return capsys.readouterr().out


def test_bases_default_output_fig1(fig1_basket, capsys):
    """The classic `repro bases` report on Fig. 1, pinned exactly."""
    out = run_cli(
        capsys,
        "bases",
        "--dataset",
        str(fig1_basket),
        "--minsup",
        "0.4",
        "--minconf",
        "0.7",
    )
    check_golden("bases_fig1.txt", out)


def test_bases_all_registered_output_fig1(fig1_basket, capsys):
    """The nine-bases selection output on Fig. 1, pinned exactly."""
    from repro.bases import registered_names

    out = run_cli(
        capsys,
        "bases",
        "--dataset",
        str(fig1_basket),
        "--minsup",
        "0.4",
        "--minconf",
        "0.5",
        "--bases",
        ",".join(registered_names()),
    )
    check_golden("bases_fig1_all.txt", out)


def test_experiment_t6_smoke_output(capsys):
    """The T6 per-basis statistics table (smoke grid), pinned exactly."""
    out = run_cli(capsys, "experiment", "T6", "--smoke")
    check_golden("experiment_t6_smoke.txt", out)


def test_help_pages_pinned(capsys, monkeypatch):
    """Every verb's --help page, pinned in one golden file.

    Catches help drift: a new flag, a reworded description or a lost
    epilog example shows up as a golden diff.  ``COLUMNS`` is pinned
    because argparse wraps to the terminal width.
    """
    monkeypatch.setenv("COLUMNS", "80")
    sections = []
    for verb in (None, "stats", "mine", "bases", "list-bases", "save",
                 "load", "export", "serve", "recommend", "experiment"):
        args = ["--help"] if verb is None else [verb, "--help"]
        with pytest.raises(SystemExit) as excinfo:
            cli.main(args)
        assert excinfo.value.code == 0
        title = "repro --help" if verb is None else f"repro {verb} --help"
        sections.append(f"$ {title}\n{capsys.readouterr().out}")
    check_golden("cli_help.txt", "\n".join(sections))
