"""Unit tests of the CI benchmark-regression gate.

``scripts/check_bench_regression.py`` is the blocking step of the bench
job; these tests pin its decision table — pass, regression, missing
baseline, and (the bug this file was added with) an *empty current run*,
which must fail loudly instead of reading as "nothing to gate".
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).parent.parent / "scripts" / "check_bench_regression.py"

spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def write_bench(path: Path, means: dict[str, float]) -> Path:
    payload = {
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean}}
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


@pytest.fixture()
def baseline(tmp_path):
    return write_bench(
        tmp_path / "base.json",
        {"test_engine_fast": 0.010, "test_engine_other": 0.020},
    )


def test_no_regression_passes(tmp_path, baseline, capsys):
    current = write_bench(
        tmp_path / "cur.json",
        {"test_engine_fast": 0.012, "test_engine_other": 0.019},
    )
    assert gate.main([str(baseline), str(current)]) == 0
    assert "ok: no engine benchmark" in capsys.readouterr().out


def test_regression_fails(tmp_path, baseline, capsys):
    current = write_bench(
        tmp_path / "cur.json",
        {"test_engine_fast": 0.050, "test_engine_other": 0.019},
    )
    assert gate.main([str(baseline), str(current)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "test_engine_fast" in out


def test_missing_baseline_passes(tmp_path, capsys):
    """A base ref that predates the suite must not block the gate."""
    current = write_bench(tmp_path / "cur.json", {"test_engine_fast": 0.012})
    assert gate.main([str(tmp_path / "nope.json"), str(current)]) == 0
    assert "no readable baseline" in capsys.readouterr().out


def test_empty_current_run_fails(tmp_path, baseline, capsys):
    """A current side with zero benchmarks is a broken suite, not a pass."""
    empty = write_bench(tmp_path / "cur.json", {})
    assert gate.main([str(baseline), str(empty)]) == 1
    assert "ERROR: no readable current-run benchmarks" in capsys.readouterr().out


def test_missing_current_file_fails(tmp_path, baseline, capsys):
    """Pointing the gate at nonexistent current files must fail too."""
    assert gate.main([str(baseline), str(tmp_path / "absent.json")]) == 1
    assert "ERROR" in capsys.readouterr().out


def test_both_sides_empty_fails(tmp_path, capsys):
    """An environmental break that empties BOTH sides must still fail.

    The current-side check runs first, so the lenient missing-baseline
    early exit cannot mask a fully broken benchmark suite.
    """
    assert gate.main(
        [str(tmp_path / "no-base.json"), str(tmp_path / "no-cur.json")]
    ) == 1
    assert "ERROR: no readable current-run benchmarks" in capsys.readouterr().out


def test_unreadable_current_file_fails(tmp_path, baseline, capsys):
    broken = tmp_path / "broken.json"
    broken.write_text("{not json", encoding="utf-8")
    assert gate.main([str(baseline), str(broken)]) == 1


def test_benchmark_missing_from_current_warns_loudly(tmp_path, baseline, capsys):
    """Deleting a gated benchmark cannot fail, but must be impossible to miss."""
    current = write_bench(tmp_path / "cur.json", {"test_engine_fast": 0.011})
    assert gate.main([str(baseline), str(current)]) == 0
    out = capsys.readouterr().out
    assert "WARNING" in out and "test_engine_other" in out and "MISSING" in out


def test_best_of_n_uses_minimum_mean(tmp_path, baseline, capsys):
    """A single noisy run must not fail when a sibling run was fine."""
    slow = write_bench(tmp_path / "cur1.json", {"test_engine_fast": 0.500})
    fast = write_bench(tmp_path / "cur2.json", {"test_engine_fast": 0.011})
    assert gate.main([str(baseline), f"{slow},{fast}"]) == 0


def test_bare_name_collision_does_not_alias(tmp_path, capsys):
    """Two benchmarks sharing a bare ``name`` must stay distinct entries.

    The bug this guards: entries without a ``fullname`` (e.g. parallel
    variants of an existing kernel) used to overwrite the serial
    baseline's mean in the loaded dict, so a fast parallel run could
    mask — or a slow one fabricate — a regression of the serial path.
    """
    payload = {
        "benchmarks": [
            {"name": "test_engine_kernel", "stats": {"mean": 0.010}},
            {"name": "test_engine_kernel", "stats": {"mean": 0.999}},
        ]
    }
    path = tmp_path / "dup.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    means = gate.load_means(path)
    assert means == {
        "test_engine_kernel": 0.010,
        "test_engine_kernel#2": 0.999,
    }
    out = capsys.readouterr().out
    assert "duplicate benchmark name" in out


def test_bare_name_collision_gates_each_variant(tmp_path, capsys):
    """The suffixed duplicate is gated on its own baseline, not the serial one."""
    dup = {
        "benchmarks": [
            {"name": "test_engine_kernel", "stats": {"mean": 0.010}},
            {"name": "test_engine_kernel", "stats": {"mean": 0.030}},
        ]
    }
    base = tmp_path / "base.json"
    base.write_text(json.dumps(dup), encoding="utf-8")
    # Serial unchanged; the second (parallel) variant regresses 10x.  With
    # aliasing the parallel mean would overwrite the serial entry on both
    # sides and the 10x regression of the duplicate would still be caught —
    # but a *fast* current duplicate would mask a serial regression, so
    # check that direction: serial regresses, duplicate is fine.
    cur = {
        "benchmarks": [
            {"name": "test_engine_kernel", "stats": {"mean": 0.100}},
            {"name": "test_engine_kernel", "stats": {"mean": 0.029}},
        ]
    }
    current = tmp_path / "cur.json"
    current.write_text(json.dumps(cur), encoding="utf-8")
    assert gate.main([str(base), str(current)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def load_merge_module():
    """The merge_bench_runs script, imported fresh from its file."""
    import importlib.util as _ilu

    merge_script = SCRIPT.parent / "merge_bench_runs.py"
    merge_spec = _ilu.spec_from_file_location("merge_bench_runs", merge_script)
    merge = _ilu.module_from_spec(merge_spec)
    merge_spec.loader.exec_module(merge)
    return merge


def test_merge_bench_runs_keeps_bare_name_duplicates_distinct(tmp_path):
    """The trajectory artifact must not fold two benchmarks into one entry."""
    merge = load_merge_module()
    payload = {
        "benchmarks": [
            {"name": "test_engine_kernel", "stats": {"median": 0.010, "mean": 0.011}},
            {"name": "test_engine_kernel", "stats": {"median": 0.030, "mean": 0.031}},
        ]
    }
    merged = merge.merge_runs([payload, payload])
    assert set(merged) == {"test_engine_kernel", "test_engine_kernel#2"}
    assert merged["test_engine_kernel"]["median"] == 0.010
    assert merged["test_engine_kernel#2"]["median"] == 0.030


def test_merge_bench_runs_writes_trajectory(tmp_path, capsys):
    """The happy path: three runs fold into one best-of-N document."""
    merge = load_merge_module()
    runs = []
    for index, median in enumerate((0.012, 0.010, 0.011)):
        payload = {
            "benchmarks": [
                {
                    "fullname": "test_engine_kernel",
                    "stats": {"median": median, "mean": median, "rounds": 3},
                }
            ]
        }
        path = tmp_path / f"run{index}.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        runs.append(str(path))
    output = tmp_path / "BENCH_abc1234.json"
    assert merge.main([*runs, "--output", str(output), "--commit", "abc1234"]) == 0
    document = json.loads(output.read_text(encoding="utf-8"))
    assert document["schema"] == 1
    assert document["commit"] == "abc1234"
    assert document["runs"] == 3
    assert document["benchmarks"]["test_engine_kernel"]["median"] == 0.010
    assert document["benchmarks"]["test_engine_kernel"]["rounds"] == 9


def test_merge_bench_runs_refuses_empty_benchmark_set(tmp_path, capsys):
    """Readable runs with zero benchmark entries must fail, not write {}.

    A filtered-to-nothing or crashed bench run produces a valid JSON
    payload whose ``benchmarks`` list is empty; silently emitting an
    empty trajectory artifact would poison the ``BENCH_<sha>.json``
    series, so the merge must exit non-zero and write nothing.
    """
    merge = load_merge_module()
    empty = tmp_path / "run.json"
    empty.write_text(json.dumps({"benchmarks": []}), encoding="utf-8")
    output = tmp_path / "BENCH_abc1234.json"
    assert merge.main([str(empty), "--output", str(output)]) == 1
    assert not output.exists()
    assert "no benchmark entries" in capsys.readouterr().err


def test_merge_bench_runs_no_readable_runs_fails(tmp_path, capsys):
    """Zero readable run files is an error, mirroring the empty-set case."""
    merge = load_merge_module()
    missing = tmp_path / "nope.json"
    output = tmp_path / "BENCH_abc1234.json"
    assert merge.main([str(missing), "--output", str(output)]) == 1
    assert not output.exists()
    assert "no readable benchmark runs" in capsys.readouterr().err


def test_filter_restricts_gated_set(tmp_path, capsys):
    baseline = write_bench(tmp_path / "base.json", {"test_table_slow": 0.01})
    current = write_bench(tmp_path / "cur.json", {"test_table_slow": 1.00})
    # Outside the 'engine' filter: a 100x slowdown is not gated...
    assert gate.main([str(baseline), str(current)]) == 0
    capsys.readouterr()
    # ...but gating everything ('' filter) catches it.
    assert gate.main([str(baseline), str(current), "--filter", ""]) == 1
