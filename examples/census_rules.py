"""Dense categorical data: where the closed-set bases shine.

This example mirrors the paper's census / MUSHROOM experiments: a dense,
highly correlated categorical dataset (every object has one value per
attribute) produces an enormous number of valid association rules, most of
them redundant.  The Duquenne-Guigues and Luxenburger bases compress that
output by one to two orders of magnitude without losing any information.

Run with:  python examples/census_rules.py
"""

from __future__ import annotations

from repro import Close
from repro.core.informative import GenericBasis, InformativeBasis
from repro.core.generators import GeneratorFamily
from repro.data.benchmarks_data import make_census
from repro.experiments.harness import build_rule_artifacts, mine_itemsets
from repro.experiments.report import render_text_table

MINSUP = 0.25
MINCONF = 0.7


def main() -> None:
    database = make_census(n_objects=2_000, n_attributes=10, seed=99, name="census-demo")
    print(database)

    mining = mine_itemsets(database, MINSUP)
    artifacts = build_rule_artifacts(mining, minconf=MINCONF)
    report = artifacts.report

    print(
        f"\nminsup={MINSUP}, minconf={MINCONF}: "
        f"{len(mining.frequent)} frequent itemsets, {len(mining.closed)} closed"
    )
    rows = [
        {"rule set": "all exact rules", "rules": report.all_exact_rules},
        {"rule set": "Duquenne-Guigues basis", "rules": report.dg_basis_size},
        {"rule set": "all approximate rules", "rules": report.all_approximate_rules},
        {"rule set": "Luxenburger basis (full)", "rules": report.luxenburger_full_size},
        {"rule set": "Luxenburger basis (reduced)", "rules": report.luxenburger_reduced_size},
        {"rule set": "both bases together", "rules": report.bases_total},
    ]
    print()
    print(render_text_table(rows, title="census-demo: rule counts"))
    print(
        f"\ntotal reduction factor: x{report.total_reduction_factor:.1f} "
        f"(exact rules alone: x{report.exact_reduction_factor:.1f})\n"
    )

    print("Duquenne-Guigues basis (first 10 rules):")
    for rule in artifacts.dg_basis.rules.sorted_rules()[:10]:
        print(f"  {rule}")

    print("\nReduced Luxenburger basis (first 10 rules):")
    for rule in artifacts.luxenburger_reduced.rules.sorted_rules()[:10]:
        print(f"  {rule}")

    # Extension: the generator-based (generic / informative) bases of the
    # same research group, built from the minimal generators Close found.
    miner = Close(MINSUP)
    closed = miner.mine(database)
    generators = GeneratorFamily(closed, miner.generators_by_closure)
    generic = GenericBasis(generators)
    informative = InformativeBasis(generators, minconf=MINCONF, reduced=True)
    print(
        f"\nextension — generator-based bases: generic={len(generic)} rules, "
        f"informative (reduced)={len(informative)} rules"
    )


if __name__ == "__main__":
    main()
