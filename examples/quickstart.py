"""Quickstart: mine closed itemsets and rule bases from a tiny basket.

This is the five-transaction example context used throughout the Close /
A-Close papers.  The script walks through the complete pipeline of the
ICDE 2000 paper:

1. build the mining context ``D = (O, I, R)``;
2. mine all frequent itemsets (Apriori) and the frequent *closed*
   itemsets (Close);
3. build the Duquenne-Guigues basis (exact rules) and the reduced
   Luxenburger basis (approximate rules);
4. show that the two bases are a tiny, non-redundant subset of the full
   rule set, yet every rule (with support and confidence) can be derived
   back from them.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Apriori,
    BasisDerivation,
    Close,
    LuxenburgerBasis,
    TransactionDatabase,
    build_duquenne_guigues_basis,
    generate_all_rules,
)

MINSUP = 0.4
MINCONF = 0.5


def main() -> None:
    # 1. The mining context: five customers, five products.
    database = TransactionDatabase(
        [
            ["bread", "milk", "apples"],
            ["beer", "milk", "eggs"],
            ["bread", "beer", "milk", "eggs"],
            ["beer", "eggs"],
            ["bread", "beer", "milk", "eggs"],
        ],
        name="grocery-quickstart",
    )
    print(database)

    # 2. Frequent itemsets vs frequent closed itemsets.
    frequent = Apriori(minsup=MINSUP).mine(database)
    closed = Close(minsup=MINSUP).mine(database)
    print(f"\nfrequent itemsets at minsup={MINSUP}: {len(frequent)}")
    print(f"frequent CLOSED itemsets:              {len(closed)}")
    for itemset, count in closed.items_with_supports():
        print(f"  {itemset}  support={count}/{database.n_objects}")

    # 3. The two bases.
    dg_basis = build_duquenne_guigues_basis(frequent, closed)
    luxenburger = LuxenburgerBasis(closed, minconf=MINCONF, transitive_reduction=True)

    print(f"\nDuquenne-Guigues basis ({len(dg_basis)} exact rules):")
    for rule in dg_basis.rules.sorted_rules():
        print(f"  {rule}")

    print(f"\nReduced Luxenburger basis ({len(luxenburger)} approximate rules):")
    for rule in luxenburger.rules.sorted_rules():
        print(f"  {rule}")

    # 4. Compare against the classical "all valid rules" output and verify
    #    that everything is derivable from the bases.
    all_rules = generate_all_rules(frequent, minconf=MINCONF)
    derivation = BasisDerivation(dg_basis, luxenburger, n_objects=database.n_objects)
    derived = derivation.derive_all_rules(frequent, MINCONF)

    print(f"\nall valid rules (minconf={MINCONF}):            {len(all_rules)}")
    print(f"rules in the two bases:                   {len(dg_basis) + len(luxenburger)}")
    print(f"rules re-derived from the bases:          {len(derived)}")
    print(
        "derived set identical (incl. statistics): "
        f"{all_rules.same_rules_and_statistics(derived)}"
    )


if __name__ == "__main__":
    main()
