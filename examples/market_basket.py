"""Market-basket analysis on a Quest-style synthetic dataset.

The paper's motivating scenario: a retailer mines association rules from
sales transactions and is drowned in tens of thousands of mostly redundant
rules.  This example generates a weakly correlated basket dataset with the
from-scratch IBM Quest re-implementation, mines it at several support
thresholds, and contrasts the classical rule output with the bases —
including the interestingness measures practitioners actually look at.

Run with:  python examples/market_basket.py
"""

from __future__ import annotations

from repro import Apriori, Close, LuxenburgerBasis, build_duquenne_guigues_basis
from repro.algorithms.rule_generation import generate_all_rules
from repro.analysis.metrics import rule_metrics
from repro.data.synthetic import make_quest_dataset
from repro.experiments.report import render_text_table

MINCONF = 0.5


def main() -> None:
    database = make_quest_dataset(
        avg_transaction_size=8,
        avg_pattern_size=4,
        n_transactions=4_000,
        n_items=250,
        n_patterns=80,
        seed=17,
        name="baskets",
    )
    print(database)
    print(f"average basket size: {database.avg_transaction_size:.1f} items\n")

    rows = []
    for minsup in (0.03, 0.02, 0.01):
        frequent = Apriori(minsup).mine(database)
        closed = Close(minsup).mine(database)
        all_rules = generate_all_rules(frequent, minconf=MINCONF)
        dg_basis = build_duquenne_guigues_basis(frequent, closed)
        luxenburger = LuxenburgerBasis(closed, minconf=MINCONF)
        rows.append(
            {
                "minsup": minsup,
                "frequent": len(frequent),
                "closed": len(closed),
                "all_rules": len(all_rules),
                "dg_basis": len(dg_basis),
                "lux_reduced": len(luxenburger),
            }
        )
    print(render_text_table(rows, title="basket data: rule counts vs bases"))
    print(
        "\nOn weakly correlated basket data the closed itemsets nearly coincide\n"
        "with the frequent ones, so the bases bring a modest reduction — exactly\n"
        "the behaviour the paper reports for the synthetic T-datasets.\n"
    )

    # Show the ten most interesting approximate basis rules by lift.
    minsup = 0.01
    frequent = Apriori(minsup).mine(database)
    closed = Close(minsup).mine(database)
    luxenburger = LuxenburgerBasis(closed, minconf=MINCONF)
    supports = closed.inferred_support

    def support_oracle(itemset):
        value = supports(itemset)
        return value if value is not None else 0.0

    scored = rule_metrics(luxenburger.rules, support_oracle)
    scored.sort(key=lambda metric: metric.lift, reverse=True)
    print("top approximate basis rules by lift:")
    for metric in scored[:10]:
        rule = metric.rule
        print(
            f"  {rule.antecedent} -> {rule.consequent}  "
            f"conf={rule.confidence:.2f} lift={metric.lift:.2f} "
            f"support={rule.support:.3f}"
        )


if __name__ == "__main__":
    main()
