"""Mine a context, save it, and recommend items for partial baskets.

The recommendation loop of the mine-once/serve-many pipeline: the rule
bases mined from the ICDE 2000 Fig. 1 context double as a top-k
consequent recommender — "the basket holds b and c; which items do the
rules suggest next?"  This example walks both access paths:

1. mine the Fig. 1 context, build the bases, save a store container;
2. answer basket queries through the Python API
   (``repro.recommend.Recommender``), including the self-explaining
   winning rule behind each suggestion;
3. boot the `repro serve` daemon and ask the same questions over
   ``POST /recommend``, showing the two paths agree answer-for-answer.

Run with:  python examples/recommend_basket.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
from pathlib import Path

from repro.data.context import TransactionDatabase
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.recommend import Recommender
from repro.serve import ServeApp, serve_in_thread


def post(connection: http.client.HTTPConnection, path: str, body: dict) -> dict:
    connection.request(
        "POST", path, body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    return json.loads(connection.getresponse().read())


def main() -> None:
    # -- 1. mine Fig. 1, build the bases, persist one store file --------
    db = TransactionDatabase(
        [["a", "c", "d"], ["b", "c", "e"], ["a", "b", "c", "e"],
         ["b", "e"], ["a", "b", "c", "e"]],
        name="fig1",
    )
    mining = mine_itemsets(db, minsup=0.4)
    artifacts = build_rule_artifacts(mining, minconf=0.7)

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "fig1.npz"
        save_artifacts(store_path, mining, artifacts)
        print(f"store written: {store_path.name}")

        # -- 2. the Python API: Recommender straight off the store ------
        engine = Recommender.from_store(store_path, basis="all")
        print(f"\nengine: {engine!r}")
        for basket in (["b", "c"], ["a"], ["b", "e", "nachos"]):
            result = engine.query(basket, k=3)
            print(f"basket {basket} "
                  f"(matched {result.matched_rules} rules, "
                  f"known items {list(result.known_items)}):")
            for rank, rec in enumerate(result.recommendations, start=1):
                because = (f"{{{', '.join(rec.antecedent) or ''}}} => "
                           f"{{{', '.join(rec.consequent)}}}")
                print(f"  {rank}. {', '.join(rec.items):<4} "
                      f"conf={rec.confidence:.2f} sup={rec.support:.2f} "
                      f"because {because}")

        # -- 3. the HTTP path: POST /recommend on the daemon ------------
        server, _thread = serve_in_thread(ServeApp(store_path, watch=False))
        print(f"\ndaemon up at {server.url}")
        connection = http.client.HTTPConnection(*server.server_address[:2])

        answer = post(connection, "/recommend",
                      {"basket": ["b", "c"], "k": 3, "basis": "all"})
        print(f"POST /recommend basket=['b', 'c'] "
              f"(basis {answer['basis']}, {answer['matched_rules']} matched):")
        for rank, rec in enumerate(answer["recommendations"], start=1):
            print(f"  {rank}. {', '.join(rec['items']):<4} "
                  f"conf={rec['confidence']:.2f} sup={rec['support']:.2f}")

        # The two paths answer identically — same engine, same snapshot.
        api = [list(rec.items) for rec
               in engine.query(["b", "c"], k=3).recommendations]
        http_items = [rec["items"] for rec in answer["recommendations"]]
        assert api == http_items
        print("HTTP answers == Python API answers")

        connection.close()
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
