"""Exploring the iceberg lattice and deriving rules without the database.

The frequent closed itemsets ordered by inclusion form the iceberg lattice;
its Hasse edges are the reduced Luxenburger basis, and walking its paths
reconstructs the confidence of any rule.  This example builds the lattice
of a small categorical dataset, prints its structure level by level, and
then answers ad-hoc rule queries using only the bases — the database is
explicitly discarded after mining.

Run with:  python examples/lattice_exploration.py
"""

from __future__ import annotations

from repro import (
    Apriori,
    BasisDerivation,
    Close,
    IcebergLattice,
    Itemset,
    LuxenburgerBasis,
    build_duquenne_guigues_basis,
)
from repro.data.benchmarks_data import make_categorical_dataset

MINSUP = 0.3
MINCONF = 0.5


def main() -> None:
    database = make_categorical_dataset(
        n_objects=400,
        n_attributes=5,
        values_per_attribute=3,
        n_latent_classes=2,
        class_fidelity=0.9,
        n_deterministic_attributes=2,
        n_constant_attributes=1,
        seed=21,
        name="lattice-demo",
    )
    n_objects = database.n_objects

    frequent = Apriori(MINSUP).mine(database)
    closed = Close(MINSUP).mine(database)
    lattice = IcebergLattice(closed)

    print(database)
    print(
        f"\niceberg lattice at minsup={MINSUP}: {len(lattice)} closed itemsets, "
        f"{lattice.edge_count()} Hasse edges, height {lattice.height()}"
    )
    print("closed itemsets per size:", lattice.width_by_size())
    print("minimal elements:", [str(i) for i in lattice.minimal_elements()])
    print("maximal elements:", [str(i) for i in lattice.maximal_elements()])

    print("\nHasse edges (closed itemset -> immediate successors):")
    for node in lattice.nodes()[:8]:
        successors = lattice.immediate_successors(node)
        if successors:
            print(f"  {node}  ->  {', '.join(str(s) for s in successors)}")

    # Build the bases, then *discard the database*: every further answer is
    # produced from the bases alone.
    dg_basis = build_duquenne_guigues_basis(frequent, closed)
    luxenburger = LuxenburgerBasis(closed, minconf=0.0, transitive_reduction=True)
    derivation = BasisDerivation(dg_basis, luxenburger, n_objects=n_objects)
    del database

    print(
        f"\nbases: {len(dg_basis)} exact rules (Duquenne-Guigues), "
        f"{len(luxenburger)} approximate rules (reduced Luxenburger)"
    )

    # Ad-hoc queries answered purely by derivation.
    some_items = [item for item in closed.itemsets()[-1]][:3]
    queries = [
        (Itemset(some_items[:1]), Itemset(some_items[1:2])),
        (Itemset(some_items[:2]), Itemset(some_items[2:3])),
    ]
    print("\nrule queries answered from the bases only:")
    for antecedent, consequent in queries:
        if not consequent or not antecedent.isdisjoint(consequent) or not antecedent:
            continue
        rule = derivation.derive_rule(antecedent, consequent)
        kind = "exact" if rule.is_exact else "approximate"
        print(f"  {rule}   [{kind}]")


if __name__ == "__main__":
    main()
