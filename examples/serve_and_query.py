"""Mine once, serve many times: build a store, boot the daemon, query it.

The production shape of the ICDE 2000 pipeline: mining and basis
construction run once and persist into a single artifact-store file;
a long-lived read-only daemon then answers rule queries over HTTP.
This example walks the full loop in-process:

1. mine the paper's Fig. 1 context and build the classic bases;
2. save everything into one ``.npz`` store container;
3. boot the `repro serve` daemon on an ephemeral port;
4. page through the top rules with filtered HTTP queries;
5. derive a held-out rule — one served from the bases alone, through
   ``POST /derive`` — and read the daemon's own metrics.

Run with:  python examples/serve_and_query.py
"""

from __future__ import annotations

import http.client
import json
import tempfile
from pathlib import Path

from repro.data.context import TransactionDatabase
from repro.experiments.harness import (
    build_rule_artifacts,
    mine_itemsets,
    save_artifacts,
)
from repro.serve import ServeApp, serve_in_thread


def get(connection: http.client.HTTPConnection, path: str) -> dict:
    connection.request("GET", path)
    return json.loads(connection.getresponse().read())


def post(connection: http.client.HTTPConnection, path: str, body: dict) -> dict:
    connection.request(
        "POST", path, body=json.dumps(body),
        headers={"Content-Type": "application/json"},
    )
    return json.loads(connection.getresponse().read())


def main() -> None:
    # -- 1. mine the Fig. 1 context and build the classic bases ---------
    db = TransactionDatabase(
        [["a", "c", "d"], ["b", "c", "e"], ["a", "b", "c", "e"],
         ["b", "e"], ["a", "b", "c", "e"]],
        name="fig1",
    )
    mining = mine_itemsets(db, minsup=0.4)
    artifacts = build_rule_artifacts(mining, minconf=0.7)

    with tempfile.TemporaryDirectory() as tmp:
        # -- 2. persist the whole run into one store file ---------------
        store_path = Path(tmp) / "fig1.npz"
        save_artifacts(store_path, mining, artifacts)
        print(f"store written: {store_path.name} "
              f"({store_path.stat().st_size} bytes)")

        # -- 3. boot the daemon (equivalent to `repro serve --store`) ---
        server, _thread = serve_in_thread(ServeApp(store_path, watch=False))
        print(f"daemon up at {server.url}\n")
        connection = http.client.HTTPConnection(*server.server_address[:2])

        # -- 4. list the served bases, then page through top rules ------
        listing = get(connection, "/bases")
        print("served bases:")
        for basis in listing["bases"]:
            print(f"  {basis['name']:<22} {basis['rules']:>3} rules "
                  f"({basis['exact_rules']} exact, "
                  f"{basis['approximate_rules']} approximate)")

        page = get(connection, "/bases/all/rules?min_confidence=0.75&limit=5")
        print(f"\ntop of {page['total']} rules with confidence >= 0.75:")
        for rule in page["rules"]:
            print(f"  {', '.join(rule['antecedent']) or '{}':>8} "
                  f"=> {', '.join(rule['consequent']):<8} "
                  f"sup={rule['support']:.2f} conf={rule['confidence']:.2f}")

        # -- 5. derive a held-out rule from the bases alone -------------
        # c => be is valid (sup 0.6, conf 0.75) but the dg basis holds
        # only 3 exact rules and luxenburger-reduced only the lattice
        # edges — the daemon still derives it, as the paper promises.
        answer = post(connection, "/derive",
                      {"antecedent": ["c"], "consequent": ["b", "e"]})
        rule = answer["rule"]
        print(f"\nderive c => be: derivable={answer['derivable']}, "
              f"sup={rule['support']:.2f}, conf={rule['confidence']:.2f}")

        refused = post(connection, "/derive",
                       {"antecedent": ["a"], "consequent": ["d"]})
        print(f"derive a => d:  derivable={refused['derivable']} "
              f"({refused['error']['message']})")

        # -- and the daemon's own view of all this -----------------------
        metrics = get(connection, "/metrics")
        cache = metrics["cache"]
        print(f"\nmetrics: {metrics['requests_total']} requests, "
              f"cache {cache['hits']} hits / {cache['misses']} misses")

        connection.close()
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
