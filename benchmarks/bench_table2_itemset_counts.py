"""T2 — number of frequent itemsets vs frequent closed itemsets per minsup.

Paper shape being reproduced: on dense correlated data (MUSHROOM*, census
stand-ins) the closed itemsets are several times — up to orders of
magnitude — fewer than the frequent itemsets, and the gap widens as the
support threshold decreases; on sparse basket data the two counts are
nearly identical.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.config import dense_specs, sparse_specs
from repro.experiments.tables import table2_itemset_counts


def test_table2_itemset_counts(benchmark):
    rows = run_once(benchmark, table2_itemset_counts)
    save_table("T2_itemset_counts", rows, "T2 — frequent vs frequent closed itemsets")

    dense_names = {spec.name for spec in dense_specs()}
    sparse_names = {spec.name for spec in sparse_specs()}

    for row in rows:
        assert row["closed"] <= row["frequent"]

    # Dense datasets: the ratio grows well above 1 at the tightest threshold.
    for name in dense_names:
        dataset_rows = [row for row in rows if row["dataset"] == name]
        assert dataset_rows
        tightest = min(dataset_rows, key=lambda row: row["minsup"])
        assert tightest["ratio"] > 3.0

    # Sparse datasets: closed ≈ frequent (ratio stays close to 1).
    for name in sparse_names:
        dataset_rows = [row for row in rows if row["dataset"] == name]
        assert dataset_rows
        assert all(row["ratio"] < 1.5 for row in dataset_rows)
