"""Shared helpers for the benchmark suite.

Every benchmark module regenerates one table or figure of the evaluation
(see DESIGN.md §2).  Because a single cell of those tables can take several
seconds of pure-Python mining, the experiments are executed exactly once
per benchmark (``rounds=1``) — pytest-benchmark still reports the wall
clock, which is the quantity the runtime figures need, and the rendered
tables are written to ``benchmarks/results/`` so they can be inspected and
copied into EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.experiments.report import render_text_table

RESULTS_DIR = Path(__file__).parent / "results"


def run_once(benchmark, function, *args, **kwargs):
    """Run *function* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def save_table(name: str, rows: list[dict], title: str) -> Path:
    """Render *rows* as a text table and store it under ``benchmarks/results``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    text = render_text_table(rows, title=title)
    path.write_text(text + "\n", encoding="utf-8")
    # Also echo to stderr so the table shows up in piped benchmark logs.
    print(f"\n{text}\n", file=sys.stderr)
    return path


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
