"""A3 — incremental update vs full re-mine as the batch shrinks.

The clone-chain workload at a minsup putting six levels (12 items, 2^12
frequent itemsets) above threshold: a full re-mine pays the level-wise
Apriori sweep over all of them on every refresh, while the incremental
path re-evaluates only the itemsets contained in an appended row.  The
appended rows are shallow (depth-3) chain prefixes, so the damaged part
stays small and the update cost tracks the batch, not the context —
the smaller the batch, the wider the gap.
"""

from __future__ import annotations

import time

from conftest import run_once, save_table

from repro.data.context import TransactionDatabase
from repro.data.synthetic import make_rule_dense_context
from repro.experiments.harness import mine_itemsets
from repro.incremental import update_mining

CHAIN_LENGTH = 40
REPLICATION = 25  # 1025 objects: appends barely move the threshold
# level-j support is 25*(41-j); 0.83 puts the support count in the gap
# (850, 875] between levels 7 and 6 for every batch size below, so the
# frequent family keeps its six levels (2^12 itemsets) on every refresh
MINSUP = 0.83
BATCH_SIZES = (16, 8, 4, 2, 1)
# a depth-3 chain prefix: damages only the 2^6 shallow subsets
SHALLOW_ROW = [
    f"c{level:04d}_{clone}" for level in (1, 2, 3) for clone in (0, 1)
]


def _sweep() -> list[dict]:
    seed = make_rule_dense_context(chain_length=CHAIN_LENGTH)
    db = TransactionDatabase(
        [
            list(row.as_frozenset())
            for row in seed.transactions()
            for _ in range(REPLICATION)
        ],
        name=f"{seed.name}-x{REPLICATION}",
    )
    mining = mine_itemsets(db, MINSUP)
    base_rows = [list(row.as_frozenset()) for row in db.transactions()]
    rows = []
    for batch_size in BATCH_SIZES:
        batch = [SHALLOW_ROW] * batch_size

        started = time.perf_counter()
        result = update_mining(mining, batch, damage_threshold=0.5)
        update_seconds = time.perf_counter() - started

        started = time.perf_counter()
        fresh = mine_itemsets(
            TransactionDatabase(base_rows + batch, name=db.name), MINSUP
        )
        remine_seconds = time.perf_counter() - started

        assert result.statistics.mode == "incremental"
        assert result.mining.frequent.same_contents(fresh.frequent)
        assert result.mining.closed.same_contents(fresh.closed)
        rows.append(
            {
                "batch_size": batch_size,
                "damaged_closed": result.statistics.damaged_closed,
                "reclosed": result.statistics.reclosed,
                "update_seconds": round(update_seconds, 4),
                "remine_seconds": round(remine_seconds, 4),
                "speedup": round(remine_seconds / update_seconds, 1),
            }
        )
    return rows


def test_incremental_update_beats_remine_on_small_batches(benchmark):
    rows = run_once(benchmark, _sweep)
    save_table(
        "A3_incremental_update",
        rows,
        "A3 — incremental update vs full re-mine (rule-dense chain)",
    )
    assert len(rows) == len(BATCH_SIZES)
    by_size = {row["batch_size"]: row for row in rows}
    # small batches must win clearly; the generous margin keeps the
    # assertion meaningful without being noise-sensitive
    assert by_size[1]["speedup"] > 2.0
    assert by_size[2]["speedup"] > 2.0
