"""Micro-benchmarks of the individual miners (multi-round timings).

Unlike the table/figure benchmarks (run once because a full grid is
expensive), these micro-benchmarks time a single mining task per
algorithm with pytest-benchmark's normal statistics, which makes them the
right place to watch for performance regressions of the library itself.
"""

from __future__ import annotations

import pytest

from repro import AClose, Apriori, Charm, Close
from repro.core.luxenburger import LuxenburgerBasis
from repro.data.benchmarks_data import make_mushroom
from repro.experiments.harness import mine_itemsets

MINSUP = 0.5


@pytest.fixture(scope="module")
def mushroom():
    return make_mushroom()


@pytest.fixture(scope="module")
def mined(mushroom):
    return mine_itemsets(mushroom, MINSUP)


@pytest.mark.parametrize("algorithm_class", [Apriori, Close, AClose, Charm])
def test_miner_runtime(benchmark, mushroom, algorithm_class):
    family = benchmark(lambda: algorithm_class(MINSUP).mine(mushroom))
    assert len(family) > 0


def test_luxenburger_reduced_basis_construction(benchmark, mined):
    basis = benchmark(
        lambda: LuxenburgerBasis(mined.closed, minconf=0.7, transitive_reduction=True)
    )
    assert len(basis) > 0


def test_closure_computation(benchmark, mushroom):
    items = mushroom.items[:3]
    result = benchmark(lambda: mushroom.closure_and_support(items))
    assert result[1] >= 0
