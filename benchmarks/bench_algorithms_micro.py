"""Micro-benchmarks of the individual miners and the closure engines.

Unlike the table/figure benchmarks (run once because a full grid is
expensive), these micro-benchmarks time a single mining task per
algorithm with pytest-benchmark's normal statistics, which makes them the
right place to watch for performance regressions of the library itself.

The ``engine``-named benchmarks time the batch closure path of
:mod:`repro.engine` on the dense Fig. 1 workload (MUSHROOM*): closing a
whole 1k/10k-candidate level in one engine call versus the equivalent
per-itemset closure loop.  CI's benchmark job records these with
``--benchmark-json`` and ``scripts/check_bench_regression.py`` flags any
engine benchmark that slows down more than 2x against the base branch.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro import AClose, Apriori, Charm, Close
from repro.core.informative import InformativeBasis
from repro.core.itemset import Itemset
from repro.core.lattice import IcebergLattice, hasse_edges_reference
from repro.core.luxenburger import LuxenburgerBasis
from repro.core.rules import RuleSet
from repro.data.benchmarks_data import make_mushroom
from repro.data.synthetic import (
    make_rule_dense_family,
    make_star_closed_family,
    rule_dense_expected_counts,
)
from repro.engine import make_engine
from repro.experiments.harness import mine_itemsets
from repro.recommend import Recommender

MINSUP = 0.5


@pytest.fixture(scope="module")
def mushroom():
    return make_mushroom()


def make_candidates(database, n_candidates: int, seed: int = 42) -> list[Itemset]:
    """Deterministic random candidate itemsets (sizes 2–4) over the context."""
    rng = random.Random(seed)
    return [
        Itemset(rng.sample(database.items, rng.randint(2, 4)))
        for _ in range(n_candidates)
    ]


@pytest.fixture(scope="module")
def mined(mushroom):
    return mine_itemsets(mushroom, MINSUP)


@pytest.mark.parametrize("algorithm_class", [Apriori, Close, AClose, Charm])
def test_miner_runtime(benchmark, mushroom, algorithm_class):
    family = benchmark(lambda: algorithm_class(MINSUP).mine(mushroom))
    assert len(family) > 0


def test_luxenburger_reduced_basis_construction(benchmark, mined):
    basis = benchmark(
        lambda: LuxenburgerBasis(mined.closed, minconf=0.7, transitive_reduction=True)
    )
    assert len(basis) > 0


def test_engine_lattice_construction(benchmark, mined):
    """Vectorised iceberg-lattice build on the MUSHROOM* closed family.

    This is the packed-mask containment + boolean transitive reduction
    path of ``repro.core.order``; the regression gate watches it (the
    name matches the ``engine`` filter).  The ratio against
    ``test_lattice_reference_builder`` is the vectorisation speedup
    (>= 3x on this workload).
    """
    lattice = benchmark(lambda: IcebergLattice(mined.closed))
    assert lattice.edge_count() > 0


def test_lattice_reference_builder(benchmark, mined):
    """The pre-vectorisation per-pair Hasse builder (baseline, not gated)."""
    edges = benchmark(lambda: hasse_edges_reference(mined.closed))
    assert len(edges) > 0


def test_engine_lattice_packed_large(benchmark):
    """Bit-packed lattice build on a 16k-node synthetic closed family.

    16k nodes is past the auto dense->packed threshold, so this times the
    :mod:`repro.core.bitmatrix` order core (blocked packed containment +
    gather/OR-reduce transitive reduction) on a family the dense matrices
    would spend ~0.5 GB on.  The star family's Hasse structure is known
    analytically, so the result is asserted edge-for-edge.  Gated by the
    CI regression check (the name matches the ``engine`` filter).
    """
    family = make_star_closed_family(16_386)
    lattice = benchmark(lambda: IcebergLattice(family, strategy="packed"))
    assert lattice.strategy == "packed"
    assert lattice.edge_count() == 2 * 16_384


RULE_DENSE_CHAIN = 250
RULE_DENSE_MULTIPLICITY = 2


@pytest.fixture(scope="module")
def rule_dense():
    """The clone-chain rule-dense workload (~93k informative+Luxenburger rules).

    Families are built analytically (``make_rule_dense_family`` equals the
    mined output, asserted in the data-generator tests) and the lattice is
    prebuilt, so both rule benchmarks time exactly the rule layer.
    """
    closed, generators = make_rule_dense_family(
        RULE_DENSE_CHAIN, RULE_DENSE_MULTIPLICITY
    )
    return closed, generators, IcebergLattice(closed)


def test_engine_rule_materialization(benchmark, rule_dense):
    """Array-native basis build on the rule-dense workload (gated).

    Full informative + full Luxenburger at ``minconf = 0``: the rules are
    assembled as columnar ``RuleArrays`` gathers from the lattice masks
    and counted without materialising one rule object.  The regression
    gate watches this (the name matches the ``engine`` filter); the
    ratio against ``test_rule_materialization_object_baseline`` is the
    columnar speedup (>= 10x required, ~100x typical).
    """
    closed, generators, lattice = rule_dense
    expected = rule_dense_expected_counts(RULE_DENSE_CHAIN, RULE_DENSE_MULTIPLICITY)

    def build() -> int:
        luxenburger = LuxenburgerBasis(
            closed, minconf=0.0, transitive_reduction=False, lattice=lattice
        )
        informative = InformativeBasis(
            generators, minconf=0.0, reduced=False, lattice=lattice
        )
        return len(luxenburger.rules) + len(informative.rules)

    total = benchmark(build)
    assert total == expected["luxenburger_full"] + expected["informative_full"]


def test_rule_materialization_object_baseline(benchmark, rule_dense):
    """The pre-columnar object pipeline on the same workload (baseline).

    Materialises every rule through the kept ``iter_rules_reference``
    oracles into a plain ``RuleSet`` — one ``AssociationRule`` plus two
    Itemset set operations per rule.  Single round (it is two orders of
    magnitude slower than the columnar path); not gated.
    """
    closed, generators, lattice = rule_dense
    luxenburger = LuxenburgerBasis(
        closed, minconf=0.0, transitive_reduction=False, lattice=lattice
    )
    informative = InformativeBasis(
        generators, minconf=0.0, reduced=False, lattice=lattice
    )

    def build() -> int:
        return len(RuleSet(luxenburger.iter_rules_reference())) + len(
            RuleSet(informative.iter_rules_reference())
        )

    total = benchmark.pedantic(build, rounds=1, iterations=1)
    assert total == len(luxenburger.rules) + len(informative.rules)


def test_engine_rule_streaming_blocks(benchmark, rule_dense):
    """Streamed informative expansion with deliberately small blocks (gated).

    Forces ``block_rows=4096`` (vs the auto size of ~32k rows on this
    universe) so the per-block Python overhead of the streamed CSR
    expansion is visible to the regression gate; the output is asserted
    equal to the analytic rule count.  The ratio against
    ``test_engine_rule_materialization`` (auto blocks) is the streaming
    overhead, which should stay within noise.
    """
    closed, generators, lattice = rule_dense
    expected = rule_dense_expected_counts(RULE_DENSE_CHAIN, RULE_DENSE_MULTIPLICITY)

    def build() -> int:
        return len(
            InformativeBasis(
                generators,
                minconf=0.0,
                reduced=False,
                lattice=lattice,
                block_rows=4096,
            ).rules
        )

    total = benchmark(build)
    assert total == expected["informative_full"]


PARALLEL_STAR_MEMBERS = 50_002
PARALLEL_RULE_CHAIN = 1_000


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "4workers"])
def test_engine_parallel_lattice(benchmark, workers):
    """Packed lattice build, serial vs 4 worker threads (gated pair).

    A 50k-node star family — large enough that the blocked containment
    and Hasse kernels dominate and the per-shard dispatch overhead is
    noise.  The two parametrised variants land as distinct fullnames in
    the regression gate; their ratio is the thread-pool speedup on the
    runner (the packed kernels release the GIL inside numpy, so on a
    multi-core runner the 4-worker build should be >= 2x the serial
    one).  The star's Hasse structure is known analytically, so each
    build is asserted edge-for-edge regardless of worker count.
    """
    family = make_star_closed_family(PARALLEL_STAR_MEMBERS)

    def build():
        return IcebergLattice(family, strategy="packed", workers=workers)

    lattice = benchmark.pedantic(build, rounds=1, iterations=1)
    assert lattice.edge_count() == 2 * (PARALLEL_STAR_MEMBERS - 2)


@pytest.mark.parametrize("workers", [1, 4], ids=["serial", "4workers"])
def test_engine_parallel_rule_emit(benchmark, workers):
    """Streamed informative emission of ~10^6 rules, serial vs 4 threads.

    A 1000-link clone chain at multiplicity 2 expands to 999,000 full
    informative rules; the lattice is prebuilt and shared, so the pair
    times exactly the ordered-imap CSR block emitter.  Gated like the
    lattice pair; the serial/4-worker ratio is the emitter's thread
    speedup (>= 1.5x expected on a multi-core runner — the gathers
    release the GIL, the per-block bookkeeping does not).
    """
    closed, generators = make_rule_dense_family(PARALLEL_RULE_CHAIN, 2)
    lattice = IcebergLattice(closed, strategy="packed")
    expected = rule_dense_expected_counts(PARALLEL_RULE_CHAIN, 2)["informative_full"]

    def build() -> int:
        return len(
            InformativeBasis(
                generators,
                minconf=0.0,
                reduced=False,
                lattice=lattice,
                workers=workers,
            ).rules
        )

    total = benchmark.pedantic(build, rounds=1, iterations=1)
    assert total == expected


RECOMMEND_BASKET_DEPTHS = (1, 2, 3, 5, 8)
RECOMMEND_QUERIES = 200
RECOMMEND_K = 5


def test_engine_recommend_throughput(benchmark):
    """Top-k recommendation over the 10^6-rule clone-chain store.

    Builds the 999,000-rule informative-full basis of the 1000-link
    clone chain once, wraps it in a :class:`Recommender`, and times one
    ``recommend_many`` batch of 200 prefix baskets (depths cycling over
    1/2/3/5/8).  Gated like the other engine benchmarks; dividing
    ``RECOMMEND_QUERIES`` by the recorded time gives queries/second in
    the trajectory artifact.

    The chain's analytic structure pins every answer exactly, without
    the (quadratic) object oracle: for a basket holding all clones of
    levels ``1..d``, the rank-``i`` recommendation is the clones of
    levels ``d+1..d+1+i``, won by a level-``d`` generator rule with
    confidence ``(L-d-i)/(L-d+1)`` — strictly decreasing in rank — and
    the basket matches ``2dL - d(d+1)`` rules.
    """
    chain = PARALLEL_RULE_CHAIN
    closed, generators = make_rule_dense_family(chain, 2)
    lattice = IcebergLattice(closed, strategy="packed")
    arrays = InformativeBasis(
        generators, minconf=0.0, reduced=False, lattice=lattice, workers=0
    ).rules.to_arrays()
    assert len(arrays) == rule_dense_expected_counts(chain, 2)["informative_full"]
    engine = Recommender(arrays, workers=1, assume_canonical=True)
    depths = [
        RECOMMEND_BASKET_DEPTHS[i % len(RECOMMEND_BASKET_DEPTHS)]
        for i in range(RECOMMEND_QUERIES)
    ]
    baskets = [
        [f"c{level:04d}_{clone}" for level in range(1, depth + 1) for clone in range(2)]
        for depth in depths
    ]

    answers = benchmark.pedantic(
        lambda: engine.recommend_many(baskets, k=RECOMMEND_K),
        rounds=1,
        iterations=1,
    )

    assert len(answers) == RECOMMEND_QUERIES
    for depth, result in zip(depths, answers):
        assert result.matched_rules == 2 * depth * chain - depth * (depth + 1)
        assert len(result.recommendations) == RECOMMEND_K
        for rank, rec in enumerate(result.recommendations):
            top = depth + 1 + rank
            assert rec.items == tuple(
                f"c{level:04d}_{clone}"
                for level in range(depth + 1, top + 1)
                for clone in range(2)
            )
            assert rec.antecedent in ((f"c{depth:04d}_0",), (f"c{depth:04d}_1",))
            assert rec.confidence == pytest.approx(
                (chain - depth - rank) / (chain - depth + 1), rel=1e-12
            )


def test_store_roundtrip_rule_dense(benchmark, rule_dense, tmp_path):
    """NPZ save + load of families, order core and a ~50k-rule basis.

    Times one full persist/rehydrate cycle of the artifact store on the
    rule-dense workload — the mine-once/serve-many path.  Not gated (disk
    I/O dominates and varies by runner); tracked in the trajectory
    artifact.
    """
    from repro.store import load_run, save_run

    closed, generators, lattice = rule_dense
    luxenburger = LuxenburgerBasis(
        closed, minconf=0.0, transitive_reduction=False, lattice=lattice
    )
    arrays = luxenburger.rules.to_arrays()
    path = tmp_path / "bench.npz"

    def roundtrip() -> int:
        save_run(
            path,
            closed=closed,
            generators=generators,
            lattice=lattice,
            rule_arrays={"luxenburger": arrays},
        )
        return len(load_run(path).rule_arrays["luxenburger"])

    total = benchmark(roundtrip)
    assert total == len(arrays)


def test_closure_computation(benchmark, mushroom):
    items = mushroom.items[:3]
    result = benchmark(lambda: mushroom.closure_and_support(items))
    assert result[1] >= 0


# ----------------------------------------------------------------------
# Engine microbenchmarks (gated by scripts/check_bench_regression.py)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name", ["numpy", "bitset"])
@pytest.mark.parametrize("n_candidates", [1_000, 10_000])
def test_engine_batch_closures(benchmark, mushroom, engine_name, n_candidates):
    """One batched closures_and_supports() call over a full candidate level."""
    candidates = make_candidates(mushroom, n_candidates)
    engine = make_engine(mushroom, engine_name, cache_size=0)
    result = benchmark(lambda: engine.closures_and_supports(candidates))
    assert len(result) == n_candidates


def test_engine_per_itemset_closure_loop(benchmark, mushroom):
    """The pre-batch baseline: one engine call per candidate, 1k candidates.

    The ratio between this and ``test_engine_batch_closures[1000-numpy]``
    is the batch speedup the engine subsystem exists for (>= 3x on this
    dense workload).
    """
    candidates = make_candidates(mushroom, 1_000)
    engine = make_engine(mushroom, "numpy", cache_size=0)
    result = benchmark(
        lambda: [engine.closure_and_support(candidate) for candidate in candidates]
    )
    assert len(result) == 1_000


@pytest.mark.parametrize("engine_name", ["numpy", "bitset"])
def test_engine_batch_supports(benchmark, mushroom, engine_name):
    """Support-only batch counting of a 10k-candidate level."""
    candidates = make_candidates(mushroom, 10_000)
    engine = make_engine(mushroom, engine_name, cache_size=0)
    result = benchmark(lambda: engine.supports(candidates))
    assert len(result) == 10_000


def test_engine_closure_cache_hit_rate(benchmark, mushroom):
    """Repeated closure of a warm level: the LRU cache should answer."""
    candidates = make_candidates(mushroom, 1_000)
    engine = make_engine(mushroom, "numpy")
    engine.closures(candidates)  # warm the cache
    result = benchmark(lambda: engine.closures(candidates))
    assert len(result) == 1_000


@pytest.fixture(scope="module")
def serve_daemon(mined, tmp_path_factory):
    """A live `repro serve` daemon over a saved MUSHROOM* store."""
    import http.client

    from repro.experiments.harness import build_rule_artifacts, save_artifacts
    from repro.serve import ServeApp, serve_in_thread

    artifacts = build_rule_artifacts(mined, minconf=0.7)
    path = tmp_path_factory.mktemp("serve-bench") / "run.npz"
    save_artifacts(path, mined, artifacts)
    app = ServeApp(path, watch=False)
    server, _ = serve_in_thread(app)
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    yield connection
    connection.close()
    server.shutdown()
    server.server_close()


def test_serve_query_throughput(benchmark, serve_daemon):
    """A keep-alive client's mixed query round against the live daemon.

    Times the serve-many half of the pipeline end to end — HTTP parse,
    columnar filtering, pagination, JSON render — over one persistent
    connection, with the answer cache on (the steady-state daemon
    workload).  Gated in CI alongside the engine benchmarks via
    ``check_bench_regression.py --filter serve``.
    """
    connection = serve_daemon
    paths = [
        "/bases",
        "/bases/dg/rules?limit=50",
        "/bases/luxenburger/rules?min_confidence=0.8&limit=50",
        "/bases/all/rules?limit=25&offset=25",
        "/healthz",
    ]

    def query_round() -> int:
        answered = 0
        for path in paths * 4:
            connection.request("GET", path)
            response = connection.getresponse()
            response.read()
            assert response.status == 200
            answered += 1
        return answered

    assert benchmark(query_round) == 20


@pytest.fixture(scope="module")
def serve_store(mined, tmp_path_factory):
    """A saved MUSHROOM* store file for daemon-subprocess benchmarks."""
    from repro.experiments.harness import build_rule_artifacts, save_artifacts

    artifacts = build_rule_artifacts(mined, minconf=0.7)
    path = tmp_path_factory.mktemp("serve-bench-mp") / "run.npz"
    save_artifacts(path, mined, artifacts)
    return path


MULTIPROCESS_CLIENTS = 8
MULTIPROCESS_REQUESTS_PER_CLIENT = 40


@pytest.mark.parametrize("processes", [1, 4], ids=["1p", "4p"])
def test_serve_multiprocess_throughput(benchmark, serve_store, processes):
    """A client swarm against the supervised daemon, 1 vs 4 workers.

    Boots a real ``repro serve --processes N`` supervisor subprocess
    (fork-after-load workers, kernel ``SO_REUSEPORT`` load balancing)
    and times 8 keep-alive client threads draining a fixed request
    budget.  The two variants land as distinct fullnames in the
    regression gate; their ratio is the multi-process scale-out on the
    runner.  Only meaningful on a multi-core runner — on one CPU the
    variants time the same work plus fork overhead.
    """
    import http.client
    import os
    import re
    import signal
    import subprocess
    import sys
    import threading

    from repro.testing import wait_until_healthy

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--store", str(serve_store), "--port", "0",
            "--processes", str(processes),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
    )
    try:
        banner = proc.stdout.readline()
        port = int(re.search(r"http://[^:]+:(\d+)", banner).group(1))
        wait_until_healthy("127.0.0.1", port, timeout=120)
        paths = [
            "/bases/dg/rules?limit=50",
            "/bases/luxenburger/rules?min_confidence=0.8&limit=50",
            "/bases/all/rules?limit=25&offset=25",
        ]

        def client(counts: list, index: int) -> None:
            connection = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=60
            )
            answered = 0
            try:
                for i in range(MULTIPROCESS_REQUESTS_PER_CLIENT):
                    connection.request("GET", paths[i % len(paths)])
                    response = connection.getresponse()
                    response.read()
                    assert response.status == 200
                    answered += 1
            finally:
                connection.close()
            counts[index] = answered

        def swarm() -> int:
            counts = [0] * MULTIPROCESS_CLIENTS
            threads = [
                threading.Thread(target=client, args=(counts, index))
                for index in range(MULTIPROCESS_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return sum(counts)

        total = benchmark.pedantic(swarm, rounds=1, iterations=1)
        assert total == MULTIPROCESS_CLIENTS * MULTIPROCESS_REQUESTS_PER_CLIENT
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
