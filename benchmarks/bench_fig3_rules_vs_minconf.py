"""F3 — number of rules as the confidence threshold decreases.

Paper shape being reproduced: lowering minconfidence makes the number of
valid association rules grow quickly, while the bases grow slowly (the
Duquenne-Guigues basis does not depend on minconfidence at all), so the
reduction factor improves as the threshold is relaxed.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import figure3_rules_vs_minconf

MINCONFS = (0.95, 0.9, 0.8, 0.7, 0.6, 0.5)


def test_figure3_rules_vs_minconf(benchmark):
    rows = run_once(benchmark, figure3_rules_vs_minconf, None, MINCONFS)
    save_table("F3_rules_vs_minconf", rows, "F3 — rule counts vs minconfidence")

    assert len(rows) == len(MINCONFS)
    # The DG basis size is constant across the sweep.
    assert len({row["dg_basis"] for row in rows}) == 1
    # All-rule counts are non-increasing in minconf (rows are ordered from
    # the highest threshold to the lowest, so counts must be non-decreasing).
    all_rule_counts = [row["all_rules"] for row in rows]
    assert all_rule_counts == sorted(all_rule_counts)
    # The bases stay far smaller than the full rule set at the loosest
    # threshold.
    loosest = rows[-1]
    assert loosest["all_rules"] >= 10 * loosest["bases_total"]
