"""F2 — execution times of the same algorithms on sparse basket data.

Paper shape being reproduced: on weakly correlated (sparse) data the
closed-itemset machinery brings no benefit — there are as many closed
itemsets as frequent itemsets, each closure computation is wasted work,
and Apriori is at least as fast as Close / A-Close.  This is the honest
counterpart of F1 and the paper reports it explicitly.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import figure2_sparse_runtimes


def test_figure2_sparse_runtimes(benchmark):
    rows = run_once(benchmark, figure2_sparse_runtimes)
    save_table("F2_sparse_runtimes", rows, "F2 — runtimes on sparse datasets")

    datasets = {row["dataset"] for row in rows}
    for dataset in datasets:
        per_dataset = [row for row in rows if row["dataset"] == dataset]
        tightest = min(row["minsup"] for row in per_dataset)
        at_tightest = {
            row["algorithm"]: row for row in per_dataset if row["minsup"] == tightest
        }
        # Closed ≈ frequent on sparse data...
        assert (
            at_tightest["Close"]["itemsets"] >= 0.7 * at_tightest["Apriori"]["itemsets"]
        )
        # ... so the level-wise closure computation cannot win: Apriori is
        # at least as fast as Close here (the reverse of F1).
        assert (
            at_tightest["Apriori"]["seconds"] <= at_tightest["Close"]["seconds"]
        ), f"Apriori slower than Close on sparse dataset {dataset}"
