"""A1 — ablation: Luxenburger basis with vs without transitive reduction.

DESIGN.md calls out the transitive reduction of Theorem 2 as a design
choice worth quantifying: the reduced basis keeps only the Hasse edges of
the iceberg lattice, and this ablation measures how many rules that saves
while (as the unit tests verify) keeping the basis a generating set.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import ablation_transitive_reduction


def test_ablation_transitive_reduction(benchmark):
    rows = run_once(benchmark, ablation_transitive_reduction)
    save_table(
        "A1_transitive_reduction", rows, "A1 — Luxenburger basis: full vs reduced"
    )

    assert rows
    for row in rows:
        assert row["lux_reduced"] <= row["lux_full"]
        assert row["saving"] >= 1.0
    # The reduction saves rules on at least one dense configuration.
    assert any(row["saving"] > 1.2 for row in rows)
