"""T5 — total reduction: all valid rules vs the union of the two bases.

Paper shape being reproduced: the union of the Duquenne-Guigues basis and
the reduced Luxenburger basis is one to two orders of magnitude smaller
than the complete set of valid association rules on dense correlated data.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.config import dense_specs
from repro.experiments.tables import table5_total_reduction


def test_table5_total_reduction(benchmark):
    rows = run_once(benchmark, table5_total_reduction)
    save_table("T5_total_reduction", rows, "T5 — all rules vs union of the bases")

    for row in rows:
        assert row["bases_total"] <= max(row["all_rules"], 1)

    dense_names = {spec.name for spec in dense_specs()}
    dense_rows = [row for row in rows if row["dataset"] in dense_names]
    assert dense_rows
    # Every dense dataset shows at least a 10x total reduction at its
    # tightest rule-experiment threshold.
    for name in dense_names:
        per_dataset = [row for row in dense_rows if row["dataset"] == name]
        assert any(row["reduction"] >= 10 for row in per_dataset)
