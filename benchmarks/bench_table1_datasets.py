"""T1 — dataset characteristics (objects, items, width, density).

Reproduces the dataset-description table that opens the evaluation section
of the Close / A-Close / bases papers, on the stand-in datasets described
in DESIGN.md §3.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import table1_dataset_characteristics


def test_table1_dataset_characteristics(benchmark):
    rows = run_once(benchmark, table1_dataset_characteristics)
    save_table("T1_dataset_characteristics", rows, "T1 — dataset characteristics")
    assert len(rows) == 5
    dense = [row for row in rows if row["kind"] == "dense"]
    sparse = [row for row in rows if row["kind"] == "sparse"]
    # Dense categorical stand-ins have fixed-width objects; sparse basket
    # data is much wider in items and much lower in density.
    assert all(row["avg_size"] == row["max_size"] for row in dense)
    assert all(row["density"] < 0.2 for row in sparse)
