"""F1 — execution times of Apriori / Close / A-Close / CHARM on dense data.

Paper shape being reproduced: as the minimum support decreases on dense
correlated datasets, Apriori's cost grows much faster than Close's
(A-Close sits close to Close), because the number of frequent itemsets
explodes while the number of generators/closed itemsets stays moderate.
Absolute times are obviously not comparable to the 1999 C implementations;
the assertion below only checks the relative ordering at the tightest
threshold on each dense dataset.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import figure1_dense_runtimes


def test_figure1_dense_runtimes(benchmark):
    rows = run_once(benchmark, figure1_dense_runtimes)
    save_table("F1_dense_runtimes", rows, "F1 — runtimes on dense datasets")

    datasets = {row["dataset"] for row in rows}
    for dataset in datasets:
        per_dataset = [row for row in rows if row["dataset"] == dataset]
        tightest = min(row["minsup"] for row in per_dataset)
        at_tightest = {
            row["algorithm"]: row for row in per_dataset if row["minsup"] == tightest
        }
        # All four algorithms ran and agree on the problem size ordering:
        # Apriori explores at least as many candidates as Close explores
        # generators, and finds at least as many itemsets.
        assert set(at_tightest) == {"Apriori", "Close", "A-Close", "CHARM"}
        assert (
            at_tightest["Apriori"]["candidates"] >= at_tightest["Close"]["candidates"]
        )
        assert at_tightest["Apriori"]["itemsets"] >= at_tightest["Close"]["itemsets"]
        # The headline claim: Close beats Apriori at the tightest threshold
        # on dense correlated data.
        assert (
            at_tightest["Close"]["seconds"] <= at_tightest["Apriori"]["seconds"]
        ), f"Close slower than Apriori on {dataset} at minsup={tightest}"
