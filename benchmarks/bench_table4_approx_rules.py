"""T4 — approximate rules vs the Luxenburger basis (full and reduced).

Paper shape being reproduced: the Luxenburger basis — and even more so its
transitive reduction — is far smaller than the set of all approximate
rules on dense data, while carrying enough information to re-derive all of
them (that derivability is covered by the unit test-suite; here we measure
the sizes the paper tabulates).
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.config import dense_specs
from repro.experiments.tables import table4_approximate_rules


def test_table4_approximate_rules(benchmark):
    rows = run_once(benchmark, table4_approximate_rules)
    save_table(
        "T4_approximate_rules", rows, "T4 — approximate rules vs Luxenburger bases"
    )

    for row in rows:
        assert row["lux_reduced"] <= row["lux_full"]
        assert row["lux_full"] <= max(row["approx_rules"], row["lux_full"])

    dense_names = {spec.name for spec in dense_specs()}
    dense_rows = [row for row in rows if row["dataset"] in dense_names]
    # At least three quarters of the dense cells show a >= 5x reduction from
    # all approximate rules down to the reduced basis.
    strong = [
        row
        for row in dense_rows
        if row["approx_rules"] >= 5 * max(row["lux_reduced"], 1)
    ]
    assert len(strong) >= 0.75 * len(dense_rows)
