"""A2 — ablation: cross-check of the three closed-itemset miners.

Close (level-wise closures), A-Close (generators then one closure pass)
and CHARM (vertical depth-first) must return exactly the same family of
(closed itemset, support) pairs on every benchmark dataset; their relative
timings illustrate how much the strategy matters even when the output is
fixed.
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.tables import ablation_closed_miners


def test_ablation_closed_miners(benchmark):
    rows = run_once(benchmark, ablation_closed_miners)
    save_table("A2_closed_miners", rows, "A2 — Close vs A-Close vs CHARM")

    assert len(rows) == 5
    for row in rows:
        assert row["aclose_matches"] is True, f"A-Close diverges on {row['dataset']}"
        assert row["charm_matches"] is True, f"CHARM diverges on {row['dataset']}"
        assert row["closed_itemsets"] > 0
