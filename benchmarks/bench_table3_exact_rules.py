"""T3 — exact (100 %-confidence) rules vs the Duquenne-Guigues basis.

Paper shape being reproduced: on dense correlated data the Duquenne-Guigues
basis is orders of magnitude smaller than the set of all exact rules; on
sparse data both counts are small (few or no exact rules exist).
"""

from __future__ import annotations

from conftest import run_once, save_table

from repro.experiments.config import dense_specs
from repro.experiments.tables import table3_exact_rules


def test_table3_exact_rules(benchmark):
    rows = run_once(benchmark, table3_exact_rules)
    save_table("T3_exact_rules", rows, "T3 — exact rules vs Duquenne-Guigues basis")

    for row in rows:
        # The basis is never larger than the rule set it generates.
        assert row["dg_basis"] <= row["exact_rules"] or row["exact_rules"] == 0

    dense_names = {spec.name for spec in dense_specs()}
    for name in dense_names:
        dataset_rows = [row for row in rows if row["dataset"] == name]
        tightest = min(dataset_rows, key=lambda row: row["minsup"])
        # Strong reduction on correlated data at the tightest threshold.
        assert tightest["exact_rules"] >= 10 * tightest["dg_basis"]
