"""Dense vectorised closure engine backed by numpy word-packed reductions.

The engine stores each item's cover as a row of ``uint64`` words (one bit
per object) and evaluates a whole batch of candidates in four vectorised
steps:

1. **covers** — the candidates' item rows are gathered into one padded
   index array and AND-reduced in bulk (``np.bitwise_and.reduce``), giving
   the packed cover matrix (candidates × words) for the entire batch;
2. **supports** — one ``np.bitwise_count`` popcount over the cover words;
3. **cover deduplication** — distinct cover rows are identified with a
   byte-key dict; on the correlated contexts of the paper a
   10 000-candidate level collapses onto a few thousand distinct covers,
   so the expensive closure step only runs on the unique rows;
4. **closures** — item ``i`` belongs to ``h(X)`` iff no covering object
   misses it, which for the unique unpacked cover matrix ``U`` is a single
   matrix product: ``H = (U · ¬M) == 0`` (unique covers × items).  Each
   distinct closure row is decoded into an :class:`Itemset` exactly once
   and fanned back out through the inverse index.

A candidate with an empty cover has an all-zero cover row, so its ``H``
row is all ones — the full item universe, exactly the FCA convention of
:meth:`TransactionDatabase.closure`.  float32 accumulators are exact for
the integer counts involved (bounded by ``|O|``, far below the 2²⁴
float32 integer range).  Batches of a handful of candidates skip the
dedup machinery and decode directly, keeping the single-itemset wrappers
as cheap as the pre-engine code path.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..core.itemset import Itemset
from ..core.parallel import get_executor, shard_spans
from .base import DEFAULT_CACHE_SIZE, ClosureEngine

if TYPE_CHECKING:  # pragma: no cover
    from ..data.context import TransactionDatabase

__all__ = ["NumpyClosureEngine"]

#: Cap on the number of uint64 words materialised by one gather chunk.
_CHUNK_WORDS = 1 << 24

#: Batches up to this size bypass cover dedup and decode row by row.
_SMALL_BATCH = 4


class NumpyClosureEngine(ClosureEngine):
    """Vectorised dense engine (the default for the level-wise miners).

    ``workers`` shards the batched cover gather and the closure matmul
    over candidate rows through the kernel executor of
    :mod:`repro.core.parallel` (``None`` = the ``REPRO_NUM_WORKERS``
    environment variable, else serial).  Row shards write disjoint
    output slices and each row's reduction is independent, so results
    are byte-identical for any worker count.
    """

    name = "numpy"

    def __init__(
        self,
        database: "TransactionDatabase",
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | None = None,
    ) -> None:
        super().__init__(database, cache_size=cache_size)
        self._workers = workers
        matrix = database.matrix
        self._matrix = matrix
        # The float32 ¬M operand of the closure matmul is built lazily: a
        # support-only workload (Apriori counting) never pays for it.
        self._not_m_cache: np.ndarray | None = None
        n_objects, n_items = matrix.shape
        self._n_objects = n_objects
        # Per-item covers packed into uint64 words, one row per item.
        n_words = max(1, -(-n_objects // 64))
        packed8 = np.zeros((n_items, n_words * 8), dtype=np.uint8)
        if n_objects:
            packed8[:, : -(-n_objects // 8)] = np.packbits(
                matrix.T, axis=1, bitorder="little"
            )
        self._item_words = packed8.view(np.uint64)
        # The cover of the empty itemset: every object bit set, tail zeroed.
        full = np.zeros(n_words * 64, dtype=np.uint8)
        full[:n_objects] = 1
        self._full_words = np.packbits(full, bitorder="little").view(np.uint64)
        self._n_words = n_words

    @property
    def _not_m(self) -> np.ndarray:
        if self._not_m_cache is None:
            self._not_m_cache = (~self._matrix).astype(np.float32)
        return self._not_m_cache

    def extended(self, database: "TransactionDatabase") -> "NumpyClosureEngine":
        """Warm-start an engine for *database*, an appended extension.

        The packed per-item cover words of the shared object prefix are
        copied over verbatim; only the appended rows are packed (shifted
        to the old context's bit offset and OR-ed into the tail words).
        ``database`` must hold this engine's objects as its row prefix —
        exactly what :meth:`TransactionDatabase.extended` constructs.
        """
        clone = object.__new__(NumpyClosureEngine)
        ClosureEngine.__init__(clone, database, cache_size=self._cache_size)
        clone._workers = self._workers
        matrix = database.matrix
        clone._matrix = matrix
        clone._not_m_cache = None
        n_objects, n_items = matrix.shape
        n_old = self._n_objects
        if n_objects < n_old:
            raise ValueError(
                f"extended database has {n_objects} objects, fewer than the "
                f"{n_old} of the base context"
            )
        clone._n_objects = n_objects
        n_words = max(1, -(-n_objects // 64))
        item_words = np.zeros((n_items, n_words), dtype=np.uint64)
        item_words[: self._item_words.shape[0], : self._n_words] = self._item_words
        appended = n_objects - n_old
        if appended:
            # Pack the appended rows alone, pre-shifted by the bit offset
            # of the first appended object inside its word.
            offset = n_old % 64
            padded = np.zeros((n_items, offset + appended), dtype=bool)
            padded[:, offset:] = matrix[n_old:].T
            packed8 = np.packbits(padded, axis=1, bitorder="little")
            pad = (-packed8.shape[1]) % 8
            if pad:
                packed8 = np.pad(packed8, ((0, 0), (0, pad)))
            tail = np.ascontiguousarray(packed8).view(np.uint64)
            start = n_old // 64
            # The old words' bits past n_old are zero, so OR is exact.
            item_words[:, start : start + tail.shape[1]] |= tail
        clone._item_words = item_words
        full = np.zeros(n_words * 64, dtype=np.uint8)
        full[:n_objects] = 1
        clone._full_words = np.packbits(full, bitorder="little").view(np.uint64)
        clone._n_words = n_words
        return clone

    # ------------------------------------------------------------------
    # Batched cover computation (packed)
    # ------------------------------------------------------------------
    def _cover_words(self, col_lists: Sequence[list[int]]) -> np.ndarray:
        """Return the packed cover matrix (candidates × uint64 words).

        The candidates' item rows are padded (by cycling, AND-idempotent)
        to a rectangular index array so one fancy-indexing gather plus one
        ``bitwise_and`` reduction covers the entire batch.
        """
        m = len(col_lists)
        out = np.empty((m, self._n_words), dtype=np.uint64)
        width = max((len(cols) for cols in col_lists), default=0)
        if width == 0:
            out[:] = self._full_words
            return out
        index = np.empty((m, width), dtype=np.intp)
        empty_rows: list[int] = []
        for row, cols in enumerate(col_lists):
            if cols:
                index[row] = (cols * width)[:width]
            else:
                empty_rows.append(row)
                index[row] = 0
        chunk = max(1, _CHUNK_WORDS // max(1, self._n_words * width))
        executor = get_executor(self._workers)
        if not executor.is_serial and m > chunk:
            # Spread the gather chunks over the workers without growing
            # any single chunk past the working-set cap.
            chunk = max(1, min(chunk, executor.shard_size(m)))

        def gather(span: tuple[int, int]) -> None:
            start, stop = span
            gathered = self._item_words[index[start:stop]]
            out[start:stop] = np.bitwise_and.reduce(gathered, axis=1)

        executor.map(gather, shard_spans(m, chunk))
        if empty_rows:
            out[empty_rows] = self._full_words
        return out

    def _unpack_covers(self, cover_words: np.ndarray) -> np.ndarray:
        """Unpack packed cover rows into a boolean (rows × objects) matrix."""
        as_bytes = cover_words.reshape(cover_words.shape[0], -1).view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        return bits[:, : self._n_objects].astype(bool)

    def cover_masks(self, itemsets: Sequence[Itemset]) -> np.ndarray:
        """Return the boolean cover matrix (candidates × objects)."""
        candidates = self._coerce_all(itemsets)
        words = self._cover_words([self._columns(c) for c in candidates])
        if not candidates:
            return np.zeros((0, self._n_objects), dtype=bool)
        return self._unpack_covers(words)

    # ------------------------------------------------------------------
    # Decoding helpers
    # ------------------------------------------------------------------
    def _decode_items(self, mask: np.ndarray) -> Itemset:
        items = self._items
        return Itemset(items[i] for i in np.flatnonzero(mask))

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    def _closures_and_supports_batch(
        self, itemsets: Sequence[Itemset]
    ) -> list[tuple[Itemset, int]]:
        if not itemsets:
            return []
        cover_words = self._cover_words([self._columns(c) for c in itemsets])
        supports = np.bitwise_count(cover_words).sum(axis=1)
        if len(itemsets) <= _SMALL_BATCH:
            covers = self._unpack_covers(cover_words)
            results: list[tuple[Itemset, int]] = []
            for r in range(len(itemsets)):
                if supports[r] == 0:
                    closure = self._db.item_universe
                else:
                    closure = self._decode_items(self._matrix[covers[r]].all(axis=0))
                results.append((closure, int(supports[r])))
            return results
        # Dedup the covers: each distinct cover is closed and decoded once.
        seen: dict[bytes, int] = {}
        inverse = np.empty(len(itemsets), dtype=np.intp)
        unique_rows: list[int] = []
        for r in range(len(itemsets)):
            key = cover_words[r].tobytes()
            position = seen.get(key)
            if position is None:
                position = len(unique_rows)
                seen[key] = position
                unique_rows.append(r)
            inverse[r] = position
        unique_f = self._unpack_covers(cover_words[unique_rows]).astype(np.float32)
        # One matrix product closes every distinct cover of the batch; an
        # all-zero cover row yields an all-ones closure row = the universe.
        # Each output row is an independent dot-product reduction, so
        # sharding over candidate rows is byte-identical to one product.
        executor = get_executor(self._workers)
        not_m = self._not_m
        closed = np.empty((unique_f.shape[0], not_m.shape[1]), dtype=bool)

        def close_rows(span: tuple[int, int]) -> None:
            start, stop = span
            closed[start:stop] = (unique_f[start:stop] @ not_m) == 0.0

        executor.map(
            close_rows,
            shard_spans(unique_f.shape[0], executor.shard_size(unique_f.shape[0])),
        )
        distinct = [self._decode_items(row) for row in closed]
        return [
            (distinct[inverse[r]], int(supports[r])) for r in range(len(itemsets))
        ]

    def _supports_batch(self, itemsets: Sequence[Itemset]) -> list[int]:
        if not itemsets:
            return []
        cover_words = self._cover_words([self._columns(c) for c in itemsets])
        return [int(s) for s in np.bitwise_count(cover_words).sum(axis=1)]

    def _extents_batch(self, itemsets: Sequence[Itemset]) -> list[frozenset[int]]:
        if not itemsets:
            return []
        cover_words = self._cover_words([self._columns(c) for c in itemsets])
        covers = self._unpack_covers(cover_words)
        return [
            frozenset(int(i) for i in np.flatnonzero(covers[r]))
            for r in range(len(itemsets))
        ]
