"""Batch closure engines — the vectorised hot path of the library.

Architecture
------------
Every algorithm of the reproduction — Apriori's support counting, the
generator/closure passes of Close and A-Close, CHARM's tidset tree, the
DG/Luxenburger basis constructions — reduces to repeated evaluation of
the Galois operators ``g`` (cover), ``f`` (common items) and the closure
``h = f ∘ g`` over one mining context.  This package concentrates those
evaluations behind one abstraction:

* :class:`~repro.engine.base.ClosureEngine` — the abstract contract: batch
  ``closures() / supports() / extents() / closures_and_supports()`` over a
  sequence of candidate itemsets, plus the single-itemset convenience
  wrappers and a shared LRU closure cache keyed on canonical itemsets.
* :class:`~repro.engine.numpy_engine.NumpyClosureEngine` (``"numpy"``) —
  dense backend; evaluates a whole candidate level with two float32 matrix
  products (candidates × objects cover matrix, then candidates × items
  closure matrix), chunked to bound memory.  The default, and by far the
  fastest on the dense correlated contexts of the paper's figures.
* :class:`~repro.engine.bitset_engine.BitsetClosureEngine` (``"bitset"``)
  — vertical backend; owns the per-item tidset bitsets (arbitrary
  precision integers, one bit per object) and the dual per-object item
  bitsets.  Covers are early-exit AND-reductions, supports are popcounts.
  This is the representation CHARM's search tree consumes directly,
  promoted from a special case inside ``TransactionDatabase`` to a
  first-class engine.
* :mod:`~repro.engine.bitops` — the shared integer-bitset primitives
  (popcount, bit iteration, packbits conversions) used by both the bitset
  engine and the vertical algorithms.

Choosing an engine
------------------
``TransactionDatabase.engine(name)`` returns the lazily built, cached
engine of that context (``name in {"numpy", "bitset"}``; ``None`` means
the database default, normally ``"numpy"``).  Every miner accepts an
``engine=`` keyword and the experiment harness forwards an ``engine``
choice from its configuration, so a whole experiment grid can be flipped
between backends::

    db = TransactionDatabase(transactions)
    eng = db.engine("numpy")                    # explicit engine handle
    closures = eng.closures(candidate_level)    # one vectorised pass
    Close(minsup=0.3, engine="bitset").mine(db) # per-miner override

Rules of thumb: keep the default ``"numpy"`` for dense/correlated data
and closure-heavy algorithms (Close, A-Close); prefer ``"bitset"`` for
sparse contexts, support-only workloads, and the vertical miners (CHARM
uses it unconditionally — its search state *is* the bitset view).

The engine microbenchmarks in ``benchmarks/bench_algorithms_micro.py``
time batch closures of 1k/10k-candidate levels against the equivalent
per-itemset loop on the dense Fig. 1 workload; CI's benchmark job tracks
them via ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .base import CacheInfo, ClosureEngine
from .bitset_engine import BitsetClosureEngine
from .numpy_engine import NumpyClosureEngine

if TYPE_CHECKING:  # pragma: no cover
    from ..data.context import TransactionDatabase

__all__ = [
    "CacheInfo",
    "ClosureEngine",
    "NumpyClosureEngine",
    "BitsetClosureEngine",
    "ENGINES",
    "DEFAULT_ENGINE",
    "make_engine",
    "resolve_engine_name",
]

#: Registry of the available engine backends, keyed by their public name.
ENGINES: dict[str, type[ClosureEngine]] = {
    NumpyClosureEngine.name: NumpyClosureEngine,
    BitsetClosureEngine.name: BitsetClosureEngine,
}

#: Engine used when no explicit choice is made.
DEFAULT_ENGINE = NumpyClosureEngine.name


def resolve_engine_name(name: str | None) -> str:
    """Validate an engine name, mapping ``None`` to the default backend."""
    if name is None:
        return DEFAULT_ENGINE
    if name not in ENGINES:
        from ..errors import InvalidParameterError

        known = ", ".join(sorted(ENGINES))
        raise InvalidParameterError(f"unknown engine {name!r}; expected one of {known}")
    return name


def make_engine(
    database: "TransactionDatabase", name: str | None = None, **kwargs
) -> ClosureEngine:
    """Construct a fresh engine of the given backend for *database*.

    Most callers should prefer ``database.engine(name)``, which caches one
    engine (and therefore one closure cache) per backend per context; this
    factory is for tests and callers that want an isolated cache.
    """
    return ENGINES[resolve_engine_name(name)](database, **kwargs)
