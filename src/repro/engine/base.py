"""Abstract closure engine: the batch evaluation contract and its cache.

A :class:`ClosureEngine` owns the derived views of one mining context
(dense matrix, per-item bitsets, …) and evaluates the Galois operators of
the paper over *batches* of candidate itemsets:

* ``supports(itemsets)`` — ``|g(X)|`` for every candidate;
* ``extents(itemsets)`` — ``g(X)`` (object row indices) for every candidate;
* ``closures(itemsets)`` — ``h(X) = f(g(X))`` for every candidate;
* ``closures_and_supports(itemsets)`` — both in one pass.

Batching matters because every level-wise miner evaluates a whole
candidate level at once: handing the engine the full level lets the
backend amortise the work into a handful of vectorised reductions instead
of one Python-loop cover computation per itemset.

The base class also owns the **closure cache**: an LRU mapping from a
canonical :class:`~repro.core.itemset.Itemset` to its ``(closure,
support)`` pair.  Closures recur heavily across algorithm phases (Close
re-derives closures that rule generation asks for again later), so the
cache is shared by the single-itemset wrappers and the batch entry points
alike; batch calls only compute the cache misses.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.itemset import Item, Itemset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (context builds engines)
    from ..data.context import TransactionDatabase

__all__ = ["CacheInfo", "ClosureEngine"]

#: Default number of (closure, support) pairs retained by the LRU cache.
DEFAULT_CACHE_SIZE = 8192


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of the closure-cache counters (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class ClosureEngine(ABC):
    """Batch evaluator of the Galois operators of one mining context.

    Parameters
    ----------
    database:
        The :class:`~repro.data.context.TransactionDatabase` the engine is
        a view of.  The engine never mutates it.
    cache_size:
        Maximum number of ``(closure, support)`` pairs kept in the LRU
        closure cache; ``0`` disables caching.
    """

    #: Registry name, overridden by concrete engines ("numpy", "bitset").
    name: str = "abstract"

    def __init__(
        self, database: "TransactionDatabase", cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        self._db = database
        self._items: tuple = database.items
        self._cache: OrderedDict[Itemset, tuple[Itemset, int]] = OrderedDict()
        # One engine is shared by the threaded serve daemon and the
        # parallel closure path; the OrderedDict reorder-on-hit and the
        # eviction loop are not atomic, so every cache touch is locked.
        self._cache_lock = threading.Lock()
        self._cache_size = int(cache_size)
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def database(self) -> "TransactionDatabase":
        """The mining context this engine evaluates."""
        return self._db

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(database={self._db.name!r}, "
            f"cache={self.cache_info()})"
        )

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Return hit/miss/size counters of the closure cache."""
        with self._cache_lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self._cache_size,
                currsize=len(self._cache),
            )

    def cache_clear(self) -> None:
        """Drop every cached closure and reset the counters."""
        with self._cache_lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0

    def _cache_get(self, key: Itemset) -> tuple[Itemset, int] | None:
        with self._cache_lock:
            entry = self._cache.get(key)
            if entry is not None:
                self._cache.move_to_end(key)
                self._hits += 1
            else:
                self._misses += 1
            return entry

    def _cache_put(self, key: Itemset, value: tuple[Itemset, int]) -> None:
        if self._cache_size <= 0:
            return
        with self._cache_lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Incremental extension
    # ------------------------------------------------------------------
    def extended(self, database: "TransactionDatabase") -> "ClosureEngine":
        """Return an engine of this backend for an *extended* database.

        ``TransactionDatabase.extended`` calls this on every instantiated
        engine so warm derived views carry over to the appended context.
        The base implementation simply builds a fresh engine (always
        correct); backends override it to splice the appended rows into
        their packed views instead of re-deriving the shared prefix.
        The closure cache never carries over — appended objects change
        closures and supports, so cached pairs would be stale.
        """
        return type(self)(database, cache_size=self._cache_size)

    # ------------------------------------------------------------------
    # Candidate canonicalisation
    # ------------------------------------------------------------------
    def _coerce_all(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[Itemset]:
        return [Itemset.coerce(itemset) for itemset in itemsets]

    def _columns(self, itemset: Itemset) -> list[int]:
        """Map an itemset to matrix column indices, validating membership.

        Delegates to the database's canonical item index so the
        membership check (and its error message) has a single home.
        """
        return self._db.item_columns(itemset)

    # ------------------------------------------------------------------
    # Batch API (cache-aware entry points)
    # ------------------------------------------------------------------
    def closures_and_supports(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[tuple[Itemset, int]]:
        """Return ``(h(X), |g(X)|)`` for every candidate, in input order.

        Cache hits are answered directly; the misses of the whole batch are
        evaluated together in one vectorised backend pass.
        """
        candidates = self._coerce_all(itemsets)
        results: list[tuple[Itemset, int] | None] = [None] * len(candidates)
        miss_candidates: list[Itemset] = []
        pending: dict[Itemset, list[int]] = {}
        for position, candidate in enumerate(candidates):
            cached = self._cache_get(candidate)
            if cached is not None:
                results[position] = cached
            elif candidate in pending:
                # Duplicate inside one batch: evaluate once, fan out after.
                pending[candidate].append(position)
            else:
                pending[candidate] = [position]
                miss_candidates.append(candidate)
        if miss_candidates:
            computed = self._closures_and_supports_batch(miss_candidates)
            for candidate, pair in zip(miss_candidates, computed):
                self._cache_put(candidate, pair)
                for position in pending[candidate]:
                    results[position] = pair
        return results  # type: ignore[return-value]

    def closures(self, itemsets: Iterable[Itemset | Iterable[Item]]) -> list[Itemset]:
        """Return the Galois closure ``h(X)`` of every candidate, in order."""
        return [closure for closure, _ in self.closures_and_supports(itemsets)]

    def supports(self, itemsets: Iterable[Itemset | Iterable[Item]]) -> list[int]:
        """Return the absolute support ``|g(X)|`` of every candidate.

        Unlike :meth:`closures`, support-only batches skip the closure
        computation entirely (support is a popcount / column reduction, an
        order of magnitude cheaper); cached closures are still consulted so
        a support query never re-derives a cover the cache already paid for.
        """
        candidates = self._coerce_all(itemsets)
        results: list[int | None] = [None] * len(candidates)
        miss_positions: list[int] = []
        miss_candidates: list[Itemset] = []
        for position, candidate in enumerate(candidates):
            cached = self._cache_get(candidate)
            if cached is not None:
                results[position] = cached[1]
            else:
                miss_positions.append(position)
                miss_candidates.append(candidate)
        if miss_candidates:
            computed = self._supports_batch(miss_candidates)
            for position, support in zip(miss_positions, computed):
                results[position] = support
        return results  # type: ignore[return-value]

    def extents(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[frozenset[int]]:
        """Return the extent ``g(X)`` (object row indices) of every candidate."""
        return self._extents_batch(self._coerce_all(itemsets))

    # ------------------------------------------------------------------
    # Single-itemset convenience wrappers (the pre-engine API shape)
    # ------------------------------------------------------------------
    def closure(self, items: Itemset | Iterable[Item]) -> Itemset:
        """Return ``h(items)`` (cached)."""
        return self.closures_and_supports([items])[0][0]

    def closure_and_support(
        self, items: Itemset | Iterable[Item]
    ) -> tuple[Itemset, int]:
        """Return ``(h(items), |g(items)|)`` (cached)."""
        return self.closures_and_supports([items])[0]

    def support_count(self, items: Itemset | Iterable[Item]) -> int:
        """Return ``|g(items)|``."""
        return self.supports([items])[0]

    def extent(self, items: Itemset | Iterable[Item]) -> frozenset[int]:
        """Return ``g(items)`` as object row indices."""
        return self.extents([items])[0]

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    @abstractmethod
    def _closures_and_supports_batch(
        self, itemsets: Sequence[Itemset]
    ) -> list[tuple[Itemset, int]]:
        """Evaluate ``(h(X), |g(X)|)`` for canonical, cache-missed candidates."""

    @abstractmethod
    def _supports_batch(self, itemsets: Sequence[Itemset]) -> list[int]:
        """Evaluate ``|g(X)|`` for canonical candidates."""

    @abstractmethod
    def _extents_batch(self, itemsets: Sequence[Itemset]) -> list[frozenset[int]]:
        """Evaluate ``g(X)`` for canonical candidates."""
