"""Shared integer-bitset primitives.

Every vertical data structure of the library — the per-item tidsets of the
bitset engine, CHARM's search-tree nodes, the incremental support counting
of Apriori — represents a set of objects as one arbitrary-precision Python
integer with one bit per object.  This module is the single home of the
bit-level helpers those call sites used to duplicate (``_popcount`` in
``data/context.py``, ad-hoc intersections in ``algorithms/charm.py``).

All helpers are pure functions of plain integers, so they are trivially
shared between engines and algorithms without coupling them to a database
instance.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = [
    "popcount",
    "iter_bits",
    "bits_from_indices",
    "bits_from_bool_array",
    "bool_array_from_bits",
    "intersect_bits",
]


def popcount(bits: int) -> int:
    """Number of set bits of an arbitrary-precision integer bitset."""
    return bits.bit_count()


def iter_bits(bits: int) -> Iterator[int]:
    """Yield the indices of set bits of an integer bitset, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


def bits_from_indices(indices: Iterable[int]) -> int:
    """Build a bitset with the given bit indices set."""
    bits = 0
    for index in indices:
        bits |= 1 << int(index)
    return bits


def bits_from_bool_array(mask: np.ndarray) -> int:
    """Convert a 1-D boolean numpy array into an integer bitset.

    Bit ``i`` of the result is set iff ``mask[i]`` is true.  Uses
    ``np.packbits`` so the conversion is vectorised rather than a Python
    loop over set positions.
    """
    mask = np.ascontiguousarray(mask, dtype=bool)
    if mask.size == 0:
        return 0
    packed = np.packbits(mask, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def bool_array_from_bits(bits: int, length: int) -> np.ndarray:
    """Convert an integer bitset back into a boolean array of *length*."""
    if length == 0:
        return np.zeros(0, dtype=bool)
    n_bytes = (length + 7) // 8
    raw = np.frombuffer(bits.to_bytes(n_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:length].astype(bool)


def intersect_bits(bitsets: Iterable[int], universe: int) -> int:
    """Intersect the given bitsets, starting from *universe*.

    Short-circuits to ``0`` as soon as the running intersection empties,
    which is the common case for long candidate itemsets on sparse data.
    The intersection of no bitsets is *universe* (the identity of ``&``),
    matching the convention ``g(∅) = O``.
    """
    result = universe
    for bits in bitsets:
        result &= bits
        if not result:
            break
    return result
