"""Vertical closure engine backed by arbitrary-precision integer bitsets.

This engine owns the per-item tidset bitsets (one Python integer per item,
one bit per object) and the dual per-object item bitsets.  It is the
first-class home of the vertical representation that used to live inside
:class:`~repro.data.context.TransactionDatabase`:

* a cover is an AND-reduction of item bitsets with early exit;
* a support is a single popcount;
* a closure is an AND-reduction of the row bitsets of the covering
  objects.

CHARM consumes :meth:`item_bits` / :attr:`all_objects_bits` directly (its
search tree lives entirely in tidset space), so the vertical algorithm is
an ordinary client of this engine rather than a special case inside the
database.  For *batch* work on dense contexts the numpy engine — the
default the level-wise miners run on — is usually faster (word-packed
bulk reductions beat per-candidate Python loops); the bitset engine wins
on sparse data where early-exit intersections skip most of the work, and
for support-only queries of small itemsets.

Both bitset views are built lazily with ``np.packbits`` on first use, so
constructing a database never pays for a view its workload does not touch.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..core.itemset import Itemset
from .base import DEFAULT_CACHE_SIZE, ClosureEngine
from .bitops import bits_from_bool_array, intersect_bits, iter_bits, popcount

if TYPE_CHECKING:  # pragma: no cover
    from ..data.context import TransactionDatabase

__all__ = ["BitsetClosureEngine"]


class BitsetClosureEngine(ClosureEngine):
    """Vertical (tidset) engine; owns the per-item and per-object bitsets."""

    name = "bitset"

    def __init__(
        self, database: "TransactionDatabase", cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        super().__init__(database, cache_size=cache_size)
        self._item_bits: tuple[int, ...] | None = None
        self._row_bits: tuple[int, ...] | None = None
        n_objects = database.n_objects
        self._all_objects_bits = (1 << n_objects) - 1 if n_objects else 0
        self._universe_bits = (1 << len(self._items)) - 1 if self._items else 0

    def extended(self, database: "TransactionDatabase") -> "BitsetClosureEngine":
        """Warm-start an engine for *database*, an appended extension.

        Vertical views that were already materialised carry over: each
        old item's tidset gains the appended objects' bits (shifted past
        the old object count), old row bitsets are value-identical (new
        items occupy higher bit positions), and only the appended rows
        are packed fresh.  Views still lazy stay lazy.
        """
        clone = object.__new__(BitsetClosureEngine)
        ClosureEngine.__init__(clone, database, cache_size=self._cache_size)
        n_objects = database.n_objects
        n_old = self._db.n_objects
        if n_objects < n_old:
            raise ValueError(
                f"extended database has {n_objects} objects, fewer than the "
                f"{n_old} of the base context"
            )
        clone._all_objects_bits = (1 << n_objects) - 1 if n_objects else 0
        clone._universe_bits = (1 << len(clone._items)) - 1 if clone._items else 0
        matrix = database.matrix
        if self._item_bits is None:
            clone._item_bits = None
        else:
            old_bits = self._item_bits
            clone._item_bits = tuple(
                (old_bits[c] if c < len(old_bits) else 0)
                | (bits_from_bool_array(matrix[n_old:, c]) << n_old)
                for c in range(matrix.shape[1])
            )
        if self._row_bits is None:
            clone._row_bits = None
        else:
            clone._row_bits = self._row_bits + tuple(
                bits_from_bool_array(matrix[r]) for r in range(n_old, n_objects)
            )
        return clone

    # ------------------------------------------------------------------
    # The vertical views (lazy)
    # ------------------------------------------------------------------
    @property
    def all_objects_bits(self) -> int:
        """Bitset with one set bit per object (the cover of ``∅``)."""
        return self._all_objects_bits

    def item_bits_tuple(self) -> tuple[int, ...]:
        """Per-item tidset bitsets, aligned with the item column order."""
        if self._item_bits is None:
            matrix = self._db.matrix
            self._item_bits = tuple(
                bits_from_bool_array(matrix[:, c]) for c in range(matrix.shape[1])
            )
        return self._item_bits

    def row_bits_tuple(self) -> tuple[int, ...]:
        """Per-object item bitsets (bit ``i`` set iff the object has item ``i``)."""
        if self._row_bits is None:
            matrix = self._db.matrix
            self._row_bits = tuple(
                bits_from_bool_array(matrix[r]) for r in range(matrix.shape[0])
            )
        return self._row_bits

    def item_bits(self) -> dict:
        """The vertical representation as ``item -> tidset bitset``."""
        bits = self.item_bits_tuple()
        return {item: bits[i] for i, item in enumerate(self._items)}

    def cover_bits(self, items: Itemset | Sequence) -> int:
        """Return the cover of *items* as a tidset bitset (early-exit AND)."""
        cols = self._columns(Itemset.coerce(items))
        item_bits = self.item_bits_tuple()
        return intersect_bits(
            (item_bits[c] for c in cols), self._all_objects_bits
        )

    # ------------------------------------------------------------------
    # Backend contract
    # ------------------------------------------------------------------
    def _closure_from_cover(self, cover: int) -> Itemset:
        if not cover:
            return self._db.item_universe
        row_bits = self.row_bits_tuple()
        common = intersect_bits(
            (row_bits[t] for t in iter_bits(cover)), self._universe_bits
        )
        items = self._items
        return Itemset(items[i] for i in iter_bits(common))

    def _closures_and_supports_batch(
        self, itemsets: Sequence[Itemset]
    ) -> list[tuple[Itemset, int]]:
        results: list[tuple[Itemset, int]] = []
        for itemset in itemsets:
            cover = self.cover_bits(itemset)
            results.append((self._closure_from_cover(cover), popcount(cover)))
        return results

    def _supports_batch(self, itemsets: Sequence[Itemset]) -> list[int]:
        return [popcount(self.cover_bits(itemset)) for itemset in itemsets]

    def _extents_batch(self, itemsets: Sequence[Itemset]) -> list[frozenset[int]]:
        return [
            frozenset(iter_bits(self.cover_bits(itemset))) for itemset in itemsets
        ]
