"""Plain-text and Markdown rendering of experiment tables.

Every experiment function in :mod:`repro.experiments.tables` returns a
list of dictionaries (one per row).  The renderers here turn such a list
into an aligned text table (for the terminal and the benchmark output
files) or a Markdown table (for EXPERIMENTS.md).  Column order follows the
first row's key order, so the table functions control presentation simply
by constructing their dictionaries in the intended order.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

__all__ = ["render_text_table", "render_markdown_table", "format_value"]


def format_value(value: object) -> str:
    """Format one cell: floats get a compact fixed precision, others ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


def _columns_of(rows: Sequence[Mapping[str, object]],
                columns: Sequence[str] | None) -> list[str]:
    if columns is not None:
        return list(columns)
    if not rows:
        return []
    return list(rows[0].keys())


def render_text_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-free text table."""
    rows = list(rows)
    headers = _columns_of(rows, columns)
    if not headers:
        return (title + "\n" if title else "") + "(no rows)"
    cells = [[format_value(row.get(column, "")) for column in headers] for row in rows]
    widths = [
        max(len(headers[i]), *(len(line[i]) for line in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for line in cells:
        lines.append("  ".join(line[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_markdown_table(
    rows: Iterable[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    rows = list(rows)
    headers = _columns_of(rows, columns)
    if not headers:
        return "(no rows)"
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_value(row.get(column, "")) for column in headers) + " |"
        )
    return "\n".join(lines)
