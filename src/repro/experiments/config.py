"""Experiment grid configuration.

The reproduction runs the same experiment ids (T1–T5, F1–F3, A1–A2) at two
scales:

* the **benchmark scale** (default) — dataset sizes and support sweeps
  chosen so that the full grid completes in minutes in pure Python while
  still showing the paper's shapes;
* the **smoke scale** — tiny datasets used by the integration tests so the
  whole pipeline is exercised in seconds.

Each dataset is described by a :class:`DatasetSpec`: a name, a factory
(deterministic, seeded), the support sweep used for it and the confidence
grid for the rule experiments.  Dense and sparse specs are kept in
separate registries because the paper treats them separately (different
tables and different expected outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from ..bases import DEFAULT_BASES
from ..data.benchmarks_data import make_c20d10k, make_c73d10k, make_mushroom
from ..data.context import TransactionDatabase
from ..data.synthetic import make_quest_dataset

__all__ = [
    "DatasetSpec",
    "dense_specs",
    "sparse_specs",
    "all_specs",
    "smoke_specs",
    "DEFAULT_MINCONFS",
    "DEFAULT_BASES",
]

#: Confidence thresholds used by the rule-count experiments (T4, T5, F3).
DEFAULT_MINCONFS: tuple[float, ...] = (0.5, 0.7, 0.9)


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset factory with its experiment parameters."""

    name: str
    factory: Callable[[], TransactionDatabase]
    #: Relative minimum supports swept by the itemset-count and runtime
    #: experiments (T2, F1, F2), ordered from the loosest (largest) to the
    #: tightest (smallest), as in the paper's execution-time figures.
    minsup_sweep: tuple[float, ...]
    #: Supports used by the rule experiments (T3–T5, F3).  The rule
    #: experiments additionally materialise *all* valid rules — the very
    #: explosion the paper criticises — so their sweep stops one or two
    #: steps earlier than the itemset sweep to keep the grid laptop-fast.
    #: ``None`` means "same as minsup_sweep".
    rule_minsup_sweep: tuple[float, ...] | None = None
    #: Confidence thresholds for the rule experiments.
    minconfs: tuple[float, ...] = DEFAULT_MINCONFS
    #: Whether the dataset is dense/correlated (census-like) or sparse
    #: (market-basket-like); reports group by this flag.
    dense: bool = True
    #: Registered rule bases the rule experiments build for this dataset
    #: (names from :mod:`repro.bases`).  The classic reduction tables need
    #: the default four; extend the tuple to also time/count the
    #: generator-backed bases.
    bases: tuple[str, ...] = DEFAULT_BASES

    @property
    def rule_sweep(self) -> tuple[float, ...]:
        """The support sweep used by the rule-count experiments."""
        return self.rule_minsup_sweep or self.minsup_sweep

    def build(self) -> TransactionDatabase:
        """Instantiate the dataset (deterministic: factories are seeded)."""
        return self.factory()


def dense_specs() -> list[DatasetSpec]:
    """The dense, correlated datasets (MUSHROOM*, C20D10K*, C73D10K*)."""
    return [
        DatasetSpec(
            name="MUSHROOM*",
            factory=make_mushroom,
            minsup_sweep=(0.6, 0.5, 0.4, 0.3),
            rule_minsup_sweep=(0.6, 0.5, 0.4),
            dense=True,
        ),
        DatasetSpec(
            name="C20D10K*",
            factory=make_c20d10k,
            minsup_sweep=(0.5, 0.4, 0.3, 0.2),
            rule_minsup_sweep=(0.5, 0.4, 0.3),
            dense=True,
        ),
        DatasetSpec(
            name="C73D10K*",
            factory=make_c73d10k,
            minsup_sweep=(0.6, 0.5, 0.45),
            rule_minsup_sweep=(0.6, 0.5),
            dense=True,
        ),
    ]


def sparse_specs() -> list[DatasetSpec]:
    """The sparse, weakly correlated Quest-style datasets."""
    return [
        DatasetSpec(
            name="T10I4D10K*",
            factory=lambda: make_quest_dataset(
                avg_transaction_size=10,
                avg_pattern_size=4,
                n_transactions=5_000,
                n_items=300,
                n_patterns=100,
                seed=7,
                name="T10I4D10K*",
            ),
            minsup_sweep=(0.02, 0.015, 0.01),
            rule_minsup_sweep=(0.02, 0.015),
            minconfs=(0.5, 0.7),
            dense=False,
        ),
        DatasetSpec(
            name="T20I6D10K*",
            factory=lambda: make_quest_dataset(
                avg_transaction_size=20,
                avg_pattern_size=6,
                n_transactions=4_000,
                n_items=300,
                n_patterns=100,
                seed=13,
                name="T20I6D10K*",
            ),
            minsup_sweep=(0.03, 0.02),
            rule_minsup_sweep=(0.03,),
            minconfs=(0.5, 0.7),
            dense=False,
        ),
    ]


def all_specs() -> list[DatasetSpec]:
    """Every benchmark dataset, dense first (the paper's presentation order)."""
    return dense_specs() + sparse_specs()


def smoke_specs() -> list[DatasetSpec]:
    """Tiny variants of the same generators, for fast integration tests."""
    return [
        DatasetSpec(
            name="MUSHROOM-smoke",
            factory=lambda: make_mushroom(n_objects=150, n_attributes=6,
                                          values_per_attribute=4),
            minsup_sweep=(0.5, 0.3),
            minconfs=(0.5,),
            dense=True,
        ),
        DatasetSpec(
            name="QUEST-smoke",
            factory=lambda: make_quest_dataset(
                avg_transaction_size=6,
                avg_pattern_size=3,
                n_transactions=200,
                n_items=40,
                n_patterns=20,
                seed=3,
                name="QUEST-smoke",
            ),
            minsup_sweep=(0.05,),
            minconfs=(0.5,),
            dense=False,
        ),
    ]
