"""Command-line interface: ``repro`` (also installed as ``repro-mine``).

The CLI gives quick terminal access to the things users do most:

* ``repro stats`` — dataset characteristics of the benchmark suite;
* ``repro mine --dataset <file> --minsup 0.3`` — mine a basket file
  and print the frequent closed itemsets;
* ``repro bases --dataset <file> --minsup 0.3 --minconf 0.7`` — mine
  a basket file and print the Duquenne-Guigues and Luxenburger bases with
  the reduction report; ``--bases dg,generic,...`` selects any subset of
  the registered rule bases by name and ``repro list-bases`` lists them;
* ``repro experiment T3`` — regenerate one of the paper tables
  (T1–T6, F1–F3, A1–A2) on the benchmark-scale datasets; T6 is the
  columnar per-basis statistics table added with the array-native rule
  layer;
* ``repro save --dataset <file> --out run.npz`` — mine once and persist
  the context, families, packed lattice order core and rule columns to
  a versioned NPZ artifact store;
* ``repro bases --from-store run.npz`` — warm-start the bases from a
  store instead of re-mining (byte-identical output);
* ``repro load run.npz`` — summarize a store's manifest and sections;
* ``repro export run.npz --basis dg --out dg.parquet`` — export a
  stored basis's rule columns as Parquet/Arrow (needs ``pyarrow``);
* ``repro serve --store run.npz --port 8000`` — boot the read-only
  rule-serving daemon over a store (see ``docs/serving.md``);
* ``repro recommend --store run.npz --basket b,c`` — top-k consequent
  recommendations for a partial basket, one-shot or ``--interactive``
  (see ``docs/recommend.md``).

Every subcommand carries a one-line description and an epilog example;
the full help output is golden-pinned by ``tests/test_cli_golden.py``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from collections.abc import Sequence

from ..algorithms.close import Close
from ..bases import DEFAULT_BASES, available_bases, get_basis, resolve_basis_names
from ..core.order import STRATEGIES
from ..data.io import load_basket_file
from ..engine import ENGINES
from ..errors import InvalidParameterError, ReproError
from . import tables
from .config import all_specs, smoke_specs
from .harness import (
    build_rule_artifacts,
    build_rule_artifacts_from_store,
    mine_itemsets,
    save_artifacts,
)
from .report import render_text_table

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "T1": tables.table1_dataset_characteristics,
    "T2": tables.table2_itemset_counts,
    "T3": tables.table3_exact_rules,
    "T4": tables.table4_approximate_rules,
    "T5": tables.table5_total_reduction,
    "T6": tables.table6_basis_statistics,
    "F1": tables.figure1_dense_runtimes,
    "F2": tables.figure2_sparse_runtimes,
    "F3": tables.figure3_rules_vs_minconf,
    "A1": tables.ablation_transitive_reduction,
    "A2": tables.ablation_closed_miners,
}


class _CommandHelpFormatter(argparse.HelpFormatter):
    """Wrap descriptions normally but keep epilog examples verbatim."""

    def _fill_text(self, text: str, width: int, indent: str) -> str:
        if text.startswith("example:"):
            return "".join(indent + line for line in text.splitlines(keepends=True))
        return super()._fill_text(text, width, indent)


def _add_command(
    subparsers,
    name: str,
    help_text: str,
    description: str,
    example: str,
) -> argparse.ArgumentParser:
    """Register one subcommand with a description and an epilog example.

    Keeps the ``repro <verb> --help`` surface uniform: every verb shows
    the same one-line summary in the top-level listing (*help_text*), a
    fuller *description* on its own help page and a copy-pasteable
    *example* invocation as the epilog.
    """
    return subparsers.add_parser(
        name,
        help=help_text,
        description=description,
        epilog=f"example:\n  {example}",
        formatter_class=_CommandHelpFormatter,
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mining bases for association rules using closed sets "
        "(ICDE 2000 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    stats = _add_command(
        subparsers,
        "stats",
        help_text="print the characteristics of the benchmark datasets",
        description="Print objects/items/density characteristics of the "
        "benchmark-scale datasets (paper table T1).",
        example="repro stats --smoke",
    )
    stats.add_argument(
        "--smoke", action="store_true", help="use the tiny smoke-test datasets"
    )

    mine = _add_command(
        subparsers,
        "mine",
        help_text="mine the frequent closed itemsets of a basket file",
        description="Run the Close miner on a basket file and print the "
        "frequent closed itemsets with their supports.",
        example="repro mine --dataset my.basket --minsup 0.3",
    )
    mine.add_argument("--dataset", required=True, help="path to a basket-format file")
    mine.add_argument("--minsup", type=float, default=0.1, help="relative minsup")
    mine.add_argument(
        "--limit", type=int, default=50, help="print at most this many itemsets"
    )
    mine.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="closure engine backend (default: per-miner default)",
    )

    bases = _add_command(
        subparsers,
        "bases",
        help_text="mine a basket file (or load a store) and print the rule bases",
        description="Build any selection of the registered rule bases — from "
        "a fresh mining run (--dataset) or warm-started from an artifact "
        "store (--from-store) — and print the rules plus the reduction "
        "report.",
        example="repro bases --dataset my.basket --minsup 0.3 --minconf 0.7",
    )
    bases.add_argument(
        "--dataset",
        default=None,
        help="path to a basket-format file (or use --from-store)",
    )
    bases.add_argument(
        "--from-store",
        default=None,
        metavar="PATH",
        help="warm-start from a `repro save` artifact store instead of mining "
        "(the stored minsup applies; --minconf still selects the threshold)",
    )
    bases.add_argument("--minsup", type=float, default=0.1, help="relative minsup")
    bases.add_argument(
        "--minconf",
        type=float,
        default=None,
        help="relative minconf (default: 0.7 when mining; the stored "
        "threshold with --from-store)",
    )
    bases.add_argument(
        "--limit", type=int, default=30, help="print at most this many rules per basis"
    )
    bases.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="closure engine backend (default: per-miner default)",
    )
    bases.add_argument(
        "--bases",
        default=None,
        metavar="NAME,NAME",
        help="comma-separated registered bases to build "
        f"(default: {','.join(DEFAULT_BASES)}; see `list-bases`)",
    )
    bases.add_argument(
        "--lattice-strategy",
        choices=list(STRATEGIES),
        default="auto",
        help="iceberg-lattice order core: auto picks dense below "
        "~10k closed itemsets and bit-packed above; reference is the "
        "per-pair oracle builder (default: auto)",
    )
    bases.add_argument(
        "--block-rows",
        type=int,
        default=None,
        metavar="N",
        help="row-block size of the streamed rule-column assembly "
        "(default: auto-sized from the working-set budget; purely a "
        "peak-memory knob, output is identical)",
    )
    bases.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for the sharded lattice/rule kernels "
        "(0 = all cores; default: the REPRO_NUM_WORKERS environment "
        "variable, else serial; output is identical at any count)",
    )

    _add_command(
        subparsers,
        "list-bases",
        help_text="list the registered rule bases and their descriptions",
        description="List every registered rule basis with its kind and a "
        "one-line description of the construction.",
        example="repro list-bases",
    )

    save = _add_command(
        subparsers,
        "save",
        help_text="mine a basket file and persist context, families, lattice "
        "order core and rule columns to an NPZ artifact store",
        description="Mine a basket file once and persist everything the run "
        "produced — context, frequent/closed families, generators, packed "
        "lattice order core and per-basis rule columns — to a versioned NPZ "
        "artifact store (see docs/store-format.md).",
        example="repro save --dataset my.basket --minsup 0.05 --out run.npz",
    )
    save.add_argument("--dataset", required=True, help="path to a basket-format file")
    save.add_argument("--out", required=True, help="path of the .npz store to write")
    save.add_argument("--minsup", type=float, default=0.1, help="relative minsup")
    save.add_argument("--minconf", type=float, default=0.7, help="relative minconf")
    save.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="closure engine backend (default: per-miner default)",
    )
    save.add_argument(
        "--bases",
        default=None,
        metavar="NAME,NAME",
        help="comma-separated registered bases whose rule columns to store "
        f"(default: {','.join(DEFAULT_BASES)})",
    )
    save.add_argument(
        "--lattice-strategy",
        choices=list(STRATEGIES),
        default="auto",
        help="order core of the stored lattice (default: auto)",
    )
    save.add_argument(
        "--no-context",
        action="store_true",
        help="omit the raw transaction context from the store",
    )

    load = _add_command(
        subparsers,
        "load",
        help_text="summarize an artifact store's manifest and sections",
        description="Read an artifact store's manifest and print the dataset "
        "identity, stored sections and per-basis rule counts.",
        example="repro load run.npz",
    )
    load.add_argument("store", help="path of a `repro save` .npz container")

    update = _add_command(
        subparsers,
        "update",
        help_text="append a transaction batch to a store and repair the "
        "mined artifacts incrementally",
        description="Extend a stored context with a basket-file batch and "
        "delta-maintain the mined artifacts: only itemsets contained in a "
        "changed row are re-evaluated, the lattice order core is repaired "
        "edge-locally, the stored bases are rebuilt and the store is "
        "rewritten atomically (a serving daemon watching the file "
        "hot-reloads the repaired generation). Past --damage-threshold the "
        "update falls back to a full re-mine.",
        example="repro update --store run.npz --append batch.basket",
    )
    update.add_argument(
        "--store", required=True, help="path of a `repro save` .npz container"
    )
    update.add_argument(
        "--append",
        required=True,
        metavar="PATH",
        help="basket-format file with the transactions to append",
    )
    update.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="sliding-window capacity: evict the oldest objects so at most "
        "N remain after the append (default: keep every object)",
    )
    update.add_argument(
        "--damage-threshold",
        type=float,
        default=0.5,
        metavar="R",
        help="fall back to a full re-mine when more than this fraction of "
        "the stored closed itemsets is damaged (default: 0.5)",
    )
    update.add_argument(
        "--verify",
        choices=["off", "oracle"],
        default="off",
        help="oracle re-mines the extended context and asserts the repaired "
        "artifacts match it exactly (slow; default: off)",
    )
    update.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        help="closure engine backend (default: per-miner default)",
    )
    update.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for the packed kernels (0 = all cores; "
        "default: the REPRO_NUM_WORKERS environment variable, else serial)",
    )

    export = _add_command(
        subparsers,
        "export",
        help_text="export a stored basis's rule columns as Parquet/Arrow "
        "(requires the optional pyarrow package)",
        description="Stream one stored basis's rule columns out as a "
        "Parquet or Feather table (list<string> sides + numeric statistics); "
        "needs the optional pyarrow package.",
        example="repro export run.npz --basis dg --out dg.parquet",
    )
    export.add_argument("store", help="path of a `repro save` .npz container")
    export.add_argument("--out", required=True, help="output file path")
    export.add_argument(
        "--basis",
        default=None,
        help="stored basis to export (default: the only stored basis; "
        "required when several are stored)",
    )
    export.add_argument(
        "--format",
        choices=["parquet", "feather"],
        default=None,
        help="output format (default: inferred from the --out suffix)",
    )

    serve = _add_command(
        subparsers,
        "serve",
        help_text="serve a store read-only over HTTP/JSON (mine once, "
        "serve many)",
        description="Boot the long-lived read-only rule-serving daemon over "
        "an artifact store: GET /healthz, /bases, /bases/<name>/rules and "
        "/metrics plus POST /derive and POST /recommend, with an LRU answer "
        "cache and SIGHUP/mtime-triggered store reloads (see "
        "docs/serving.md).",
        example="repro serve --store run.npz --port 8000",
    )
    serve.add_argument(
        "--store", required=True, help="path of a `repro save` .npz container"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="interface to bind (default: loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port to bind (0 = ephemeral)"
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="LRU answer-cache capacity in entries (0 disables caching)",
    )
    serve.add_argument(
        "--no-watch",
        action="store_true",
        help="do not reload automatically when the store file is replaced "
        "(SIGHUP still reloads)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for the warm-start basis kernels "
        "(0 = all cores; default: the REPRO_NUM_WORKERS environment "
        "variable, else serial)",
    )
    serve.add_argument(
        "--log-requests",
        action="store_true",
        help="log one line per request to stderr (default: metrics only)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (>1 = supervised fork-after-load serving: "
        "crashed workers restart with backoff, SIGTERM drains gracefully; "
        "see docs/operations.md)",
    )
    serve.add_argument(
        "--verify",
        choices=["off", "manifest", "full"],
        default="full",
        help="store integrity checking at (re)load: 'manifest' checks the "
        "array inventory, 'full' also recomputes per-array sha256 digests "
        "(default: full)",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; over-budget requests abort with a 503 "
        "deadline_exceeded error (default: no deadline)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="bound on concurrently handled requests; excess requests get "
        "an immediate 503 overloaded + Retry-After instead of queueing "
        "(default: unbounded)",
    )

    recommend = _add_command(
        subparsers,
        "recommend",
        help_text="top-k consequent recommendations for a partial basket",
        description="Answer top-k consequent queries over one stored rule "
        "basis: rules whose antecedent is contained in the basket, ranked "
        "by confidence (support breaks ties), with consequents the basket "
        "already holds filtered out (see docs/recommend.md).",
        example="repro recommend --store run.npz --basket b,c -k 3",
    )
    recommend.add_argument(
        "--store", required=True, help="path of a `repro save` .npz container"
    )
    recommend.add_argument(
        "--basket",
        default=None,
        metavar="ITEMS",
        help="comma-separated basket items (required unless --interactive)",
    )
    recommend.add_argument(
        "-k",
        "--top",
        type=int,
        default=5,
        metavar="N",
        dest="top",
        help="number of consequents to return (default: 5)",
    )
    recommend.add_argument(
        "--basis",
        default=None,
        help="stored basis to recommend from (default: the first stored "
        "basis in the documented preference order, informative first)",
    )
    recommend.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker threads for the scoring kernel (0 = all cores; "
        "default: the REPRO_NUM_WORKERS environment variable, else serial)",
    )
    recommend.add_argument(
        "--interactive",
        action="store_true",
        help="read baskets from stdin, one per line, answering each "
        "(blank line or EOF quits)",
    )

    experiment = _add_command(
        subparsers,
        "experiment",
        help_text="regenerate one of the paper tables / figures",
        description="Regenerate one of the paper's tables (T1-T6), runtime "
        "figures (F1-F3) or ablations (A1-A2) on the benchmark-scale "
        "datasets.",
        example="repro experiment T5 --smoke",
    )
    experiment.add_argument(
        "id", choices=sorted(_EXPERIMENTS), help="experiment identifier (see DESIGN.md)"
    )
    experiment.add_argument(
        "--smoke", action="store_true", help="use the tiny smoke-test datasets"
    )
    return parser


def _command_stats(args: argparse.Namespace) -> int:
    specs = smoke_specs() if args.smoke else all_specs()
    rows = tables.table1_dataset_characteristics(specs)
    print(render_text_table(rows, title="T1 — dataset characteristics"))
    return 0


def _command_mine(args: argparse.Namespace) -> int:
    database = load_basket_file(args.dataset)
    run = Close(args.minsup, engine=args.engine).run(database)
    print(
        f"{database.name}: {database.n_objects} objects, {database.n_items} items; "
        f"{len(run.family)} frequent closed itemsets at minsup={args.minsup}"
    )
    for itemset, count in list(run.family.items_with_supports())[: args.limit]:
        print(f"  {itemset}  (support={count / database.n_objects:.3f})")
    remaining = len(run.family) - args.limit
    if remaining > 0:
        print(f"  ... and {remaining} more")
    return 0


def _command_bases(args: argparse.Namespace) -> int:
    if (args.dataset is None) == (args.from_store is None):
        raise InvalidParameterError(
            "pass exactly one of --dataset (mine) or --from-store (warm start)"
        )
    selection = resolve_basis_names(args.bases)
    if args.from_store is not None:
        if args.engine is not None:
            raise InvalidParameterError(
                "--engine has no effect with --from-store (nothing is mined); "
                "drop it or mine with --dataset"
            )
        from .. import store

        stored = store.load_run(
            args.from_store, sections=("frequent", "closed", "generators", "order")
        )
        artifacts = build_rule_artifacts_from_store(
            stored,
            minconf=args.minconf,
            bases=selection,
            lattice_strategy=args.lattice_strategy,
            block_rows=args.block_rows,
            workers=args.workers,
        )
        dataset_name = stored.name
        minsup = artifacts.minsup
        n_frequent = len(stored.frequent) if stored.frequent is not None else "?"
        n_closed = len(stored.require("closed"))
    else:
        database = load_basket_file(args.dataset)
        mining = mine_itemsets(database, args.minsup, engine=args.engine)
        artifacts = build_rule_artifacts(
            mining,
            minconf=args.minconf if args.minconf is not None else 0.7,
            bases=selection,
            lattice_strategy=args.lattice_strategy,
            block_rows=args.block_rows,
            workers=args.workers,
        )
        dataset_name = database.name
        minsup = args.minsup
        n_frequent = len(mining.frequent)
        n_closed = len(mining.closed)

    print(f"Dataset {dataset_name}: minsup={minsup}, minconf={artifacts.minconf}")
    print(
        f"  frequent itemsets: {n_frequent}, "
        f"frequent closed itemsets: {n_closed}"
    )
    if set(DEFAULT_BASES) <= set(selection):
        report = artifacts.report
        print(
            f"  all rules: {report.all_rules} "
            f"(exact {report.all_exact_rules}, "
            f"approximate {report.all_approximate_rules})"
        )
        print(
            f"  bases: Duquenne-Guigues {report.dg_basis_size}, "
            f"Luxenburger reduced {report.luxenburger_reduced_size} "
            f"(total reduction x{report.total_reduction_factor:.1f})"
        )
    else:
        for name in selection:
            built = artifacts[name]
            print(f"  {name} [{built.kind}]: {len(built)} rules")

    if args.bases is None:
        # The classic output: the paper's two minimal bases, in full.
        sections = [
            ("Duquenne-Guigues basis (exact rules)", artifacts["dg"]),
            (
                "Luxenburger reduced basis (approximate rules)",
                artifacts["luxenburger-reduced"],
            ),
        ]
    else:
        sections = [
            (f"{name} [{artifacts[name].kind}] — {get_basis(name).description}",
             artifacts[name])
            for name in selection
        ]
    for title, built in sections:
        print(f"\n{title}:")
        for rule in built.rules.sorted_rules()[: args.limit]:
            print(f"  {rule}")
        remaining = len(built) - args.limit
        if args.bases is not None and remaining > 0:
            print(f"  ... and {remaining} more")
    return 0


def _command_save(args: argparse.Namespace) -> int:
    database = load_basket_file(args.dataset)
    mining = mine_itemsets(database, args.minsup, engine=args.engine)
    selection = resolve_basis_names(args.bases)
    artifacts = build_rule_artifacts(
        mining,
        minconf=args.minconf,
        bases=selection,
        lattice_strategy=args.lattice_strategy,
    )
    path = save_artifacts(
        args.out, mining, artifacts, include_context=not args.no_context
    )
    lattice = artifacts.context.lattice
    print(
        f"saved {database.name} (minsup={args.minsup}, minconf={args.minconf}) "
        f"to {path}"
    )
    print(
        f"  closed itemsets: {len(mining.closed)}, lattice edges: "
        f"{lattice.edge_count()}, bases: {', '.join(artifacts.names)}"
    )
    return 0


def _command_load(args: argparse.Namespace) -> int:
    from .. import store

    run = store.load_run(args.store)
    manifest = run.manifest
    print(f"{args.store}: {manifest['format']} v{manifest['version']}")
    print(
        f"  dataset {run.name}: minsup={run.minsup}, minconf={run.minconf}, "
        f"sections: {', '.join(run.sections)}"
    )
    if run.database is not None:
        print(
            f"  context: {run.database.n_objects} objects x "
            f"{run.database.n_items} items"
        )
    if run.frequent is not None:
        print(f"  frequent itemsets: {len(run.frequent)}")
    if run.closed is not None:
        print(f"  frequent closed itemsets: {len(run.closed)}")
    if run.generators is not None:
        print(f"  generator closures: {len(run.generators)}")
    if run.lattice is not None:
        print(
            f"  lattice: {len(run.lattice)} nodes, "
            f"{run.lattice.edge_count()} edges "
            f"(stored strategy: {manifest['order']['strategy']})"
        )
    for name, arrays in run.rule_arrays.items():
        kind = run.basis_kinds.get(name, "?")
        print(f"  basis {name} [{kind}]: {len(arrays)} rules")
    return 0


def _command_update(args: argparse.Namespace) -> int:
    from ..incremental.store import update_store

    batch_db = load_basket_file(args.append)
    batch = [row.as_frozenset() for row in batch_db.transactions()]
    path, result = update_store(
        args.store,
        batch,
        window=args.window,
        damage_threshold=args.damage_threshold,
        verify=args.verify,
        engine=args.engine,
        workers=args.workers,
    )
    stats = result.statistics
    print(
        f"updated {path}: +{stats.n_appended} objects"
        + (f", -{stats.n_removed} evicted" if stats.n_removed else "")
        + f" ({stats.mode})"
    )
    if stats.mode == "incremental":
        print(
            f"  damaged {stats.damaged_closed}/{stats.old_closed} closed "
            f"itemsets (ratio {stats.damage_ratio:.2f}), "
            f"{stats.reclosed} closures recomputed"
        )
    elif stats.fallback_reason:
        print(f"  full re-mine: {stats.fallback_reason}")
    print(
        f"  frequent itemsets: +{stats.new_frequent} new, "
        f"-{stats.dropped_frequent} dropped; "
        f"now {len(result.mining.frequent)} frequent, "
        f"{len(result.mining.closed)} closed"
    )
    return 0


def _command_export(args: argparse.Namespace) -> int:
    from .. import store

    run = store.load_run(args.store, sections=("rules",))
    if not run.rule_arrays:
        raise InvalidParameterError(
            f"store {args.store} holds no rule columns to export"
        )
    basis = args.basis
    if basis is None:
        if len(run.rule_arrays) > 1:
            raise InvalidParameterError(
                "several bases are stored; pick one with --basis "
                f"({', '.join(run.rule_arrays)})"
            )
        basis = next(iter(run.rule_arrays))
    if basis not in run.rule_arrays:
        raise InvalidParameterError(
            f"basis {basis!r} is not in the store; stored: "
            f"{', '.join(run.rule_arrays)}"
        )
    arrays = run.rule_arrays[basis]
    path = store.export_rule_arrays(arrays, args.out, format=args.format)
    print(f"exported {len(arrays)} {basis} rules to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from ..serve import RuleServer, ServeApp

    app_kwargs = dict(
        cache_size=args.cache_size,
        watch=not args.no_watch,
        workers=args.workers,
        verify=args.verify,
        request_timeout=args.request_timeout,
        max_inflight=args.max_inflight,
    )
    if args.processes > 1:
        from ..serve import Supervisor

        return Supervisor(
            args.store,
            host=args.host,
            port=args.port,
            processes=args.processes,
            app_kwargs=app_kwargs,
            log_requests=args.log_requests,
        ).run()
    app = ServeApp(args.store, **app_kwargs)
    server = RuleServer(
        (args.host, args.port),
        app,
        log_requests=args.log_requests,
        socket_timeout=30.0,
    )
    # Track handler threads so server_close() drains in-flight requests
    # on SIGTERM (socketserver only joins non-daemon threads).
    server.daemon_threads = False
    if hasattr(signal, "SIGTERM"):
        try:
            signal.signal(
                signal.SIGTERM,
                lambda *_: threading.Thread(
                    target=server.shutdown, daemon=True
                ).start(),
            )
        except ValueError:  # pragma: no cover - not in the main thread
            pass
    if hasattr(signal, "SIGHUP"):
        try:
            signal.signal(signal.SIGHUP, lambda *_: app.request_reload())
        except ValueError:  # pragma: no cover - not in the main thread
            pass
    loaded = app.loaded
    host, port = server.server_address[:2]
    print(f"serving {loaded.name} ({args.store}) on http://{host}:{port}")
    print(
        f"  bases: {', '.join(sorted(loaded.bases)) or '(none)'}; "
        f"derivation: "
        f"{'ready' if loaded.derivation is not None else 'unavailable'}"
    )
    print(
        "  endpoints: /healthz /bases /bases/<name>/rules /derive "
        "/recommend /metrics"
    )
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _parse_basket_line(raw: str) -> list[str]:
    """Split one basket spec on commas and whitespace, dropping blanks."""
    return [token for token in raw.replace(",", " ").split() if token]


def _print_recommendations(engine, basket, k: int) -> None:
    """Run one basket query and print the ranked consequents."""
    result = engine.query(basket, k)
    label = ", ".join(str(item) for item in result.known_items) or "(empty)"
    ignored = len(set(basket)) - len(result.known_items)
    note = f"; {ignored} unknown item(s) ignored" if ignored else ""
    print(f"basket {{{label}}}: {result.matched_rules} rule(s) matched{note}")
    if not result.recommendations:
        print("  (nothing to recommend)")
        return
    for rank, rec in enumerate(result.recommendations, start=1):
        items = ", ".join(str(item) for item in rec.items)
        antecedent = ", ".join(str(item) for item in rec.antecedent)
        consequent = ", ".join(str(item) for item in rec.consequent)
        count = "" if rec.support_count is None else f"  count={rec.support_count}"
        print(
            f"  {rank}. {{{items}}}  confidence={rec.confidence:.3f}  "
            f"support={rec.support:.3f}{count}  "
            f"[{{{antecedent}}} -> {{{consequent}}}]"
        )


def _command_recommend(args: argparse.Namespace) -> int:
    from .. import store
    from ..recommend import Recommender, preferred_basis

    if args.basket is None and not args.interactive:
        raise InvalidParameterError(
            "pass --basket ITEMS for a one-shot query or --interactive "
            "to read baskets from stdin"
        )
    if args.top < 1:
        raise InvalidParameterError(f"-k must be positive, got {args.top}")
    run = store.load_run(args.store, sections=("rules",))
    stored = run.rule_arrays or {}
    basis = args.basis if args.basis is not None else preferred_basis(stored)
    if basis is None:
        raise InvalidParameterError(
            f"store {args.store} holds no rule basis to recommend from"
        )
    if basis not in stored:
        raise InvalidParameterError(
            f"basis {basis!r} is not in the store; stored: "
            f"{', '.join(sorted(stored)) or '(none)'}"
        )
    engine = Recommender(stored[basis], workers=args.workers)
    print(
        f"recommending from basis {basis!r} "
        f"({len(engine)} rules, {len(engine.universe)} items)"
    )
    if args.basket is not None:
        _print_recommendations(engine, _parse_basket_line(args.basket), args.top)
    if args.interactive:
        prompt = sys.stdin.isatty()
        while True:
            if prompt:
                print("basket> ", end="", file=sys.stderr, flush=True)
            line = sys.stdin.readline()
            if not line or not line.strip():
                break
            _print_recommendations(engine, _parse_basket_line(line), args.top)
    return 0


def _command_list_bases(args: argparse.Namespace) -> int:
    for name, description in available_bases().items():
        kind = get_basis(name).kind
        print(f"{name:<22} [{kind:<11}] {description}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    function = _EXPERIMENTS[args.id]
    specs = smoke_specs() if args.smoke else None
    rows = function(specs) if specs is not None else function()
    print(render_text_table(rows, title=f"{args.id} — {function.__doc__.splitlines()[0]}"))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of the ``repro`` / ``repro-mine`` console scripts."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "stats": _command_stats,
        "mine": _command_mine,
        "bases": _command_bases,
        "list-bases": _command_list_bases,
        "experiment": _command_experiment,
        "save": _command_save,
        "load": _command_load,
        "update": _command_update,
        "export": _command_export,
        "serve": _command_serve,
        "recommend": _command_recommend,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Downstream consumer closed the pipe (e.g. `repro bases | head`):
        # not an error.  Point stdout at devnull so the interpreter's
        # shutdown flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        # Library errors (bad parameters, unreadable datasets/stores,
        # missing optional deps) are user errors at the CLI surface:
        # report them like argparse does, not as a traceback.
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via the console script
    sys.exit(main())
