"""Experiment harness regenerating every table and figure of the evaluation."""

from .config import DatasetSpec, all_specs, dense_specs, smoke_specs, sparse_specs
from .harness import (
    DEFAULT_BASES,
    ItemsetMiningResult,
    RuleArtifacts,
    build_rule_artifacts,
    default_algorithms,
    mine_itemsets,
    time_algorithms,
)
from .report import render_markdown_table, render_text_table
from .tables import (
    ablation_closed_miners,
    ablation_transitive_reduction,
    figure1_dense_runtimes,
    figure2_sparse_runtimes,
    figure3_rules_vs_minconf,
    table1_dataset_characteristics,
    table2_itemset_counts,
    table3_exact_rules,
    table4_approximate_rules,
    table5_total_reduction,
)

__all__ = [
    "DatasetSpec",
    "all_specs",
    "dense_specs",
    "sparse_specs",
    "smoke_specs",
    "DEFAULT_BASES",
    "ItemsetMiningResult",
    "RuleArtifacts",
    "mine_itemsets",
    "build_rule_artifacts",
    "time_algorithms",
    "default_algorithms",
    "render_text_table",
    "render_markdown_table",
    "table1_dataset_characteristics",
    "table2_itemset_counts",
    "table3_exact_rules",
    "table4_approximate_rules",
    "table5_total_reduction",
    "figure1_dense_runtimes",
    "figure2_sparse_runtimes",
    "figure3_rules_vs_minconf",
    "ablation_transitive_reduction",
    "ablation_closed_miners",
]
