"""Experiment harness: one place that wires miners, bases and reports together.

The benchmark modules under ``benchmarks/`` and the command-line interface
both go through this harness so that "what exactly was run" has a single
definition.  Three building blocks cover every table and figure:

* :func:`mine_itemsets` — run Apriori and Close on one dataset at one
  threshold, returning both families (plus the minimal generators Close
  discovered on the way) and the timing/counting statistics;
* :func:`build_rule_artifacts` — from the mined families, build any
  selection of the registered rule bases by name (default: the four
  artefacts of the paper's reduction tables) plus the reduction report
  comparing their sizes;
* :func:`time_algorithms` — run a list of miners over a support sweep and
  record wall-clock times (the execution-time figures).

Rule bases are selected through the string-keyed registry of
:mod:`repro.bases` (``"all"``, ``"dg"``, ``"luxenburger-reduced"``, …)
instead of one hard-coded attribute per basis; the classic attribute
accessors (``artifacts.dg_basis`` and friends) remain as thin views over
the selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..algorithms.aclose import AClose
from ..algorithms.apriori import Apriori
from ..algorithms.base import MiningAlgorithm, MiningRun
from ..algorithms.charm import Charm
from ..algorithms.close import Close
from ..bases import DEFAULT_BASES, BasisContext, BuiltBasis, build_bases
from ..core.dg_basis import DuquenneGuiguesBasis
from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.generators import GeneratorFamily
from ..core.luxenburger import LuxenburgerBasis
from ..core.redundancy import ReductionReport
from ..core.rules import RuleSet
from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError

__all__ = [
    "ItemsetMiningResult",
    "RuleArtifacts",
    "mine_itemsets",
    "build_rule_artifacts",
    "build_rule_artifacts_from_store",
    "save_artifacts",
    "time_algorithms",
    "default_algorithms",
    "DEFAULT_BASES",
]


@dataclass
class ItemsetMiningResult:
    """Frequent and frequent-closed itemsets mined from one dataset/threshold."""

    database: TransactionDatabase
    minsup: float
    apriori_run: MiningRun
    close_run: MiningRun
    #: Minimal generators per closed itemset, recorded by the Close run
    #: (consumed by the generator-backed bases).
    generators_by_closure: dict = field(default_factory=dict)

    @property
    def frequent(self) -> ItemsetFamily:
        """All frequent itemsets (Apriori output)."""
        return self.apriori_run.family

    @property
    def closed(self) -> ClosedItemsetFamily:
        """The frequent closed itemsets (Close output)."""
        return self.close_run.family  # type: ignore[return-value]

    @cached_property
    def generator_family(self) -> GeneratorFamily:
        """The minimal generators as a validated :class:`GeneratorFamily`."""
        return GeneratorFamily(self.closed, self.generators_by_closure)

    def basis_context(
        self,
        minconf: float,
        lattice_strategy: str = "auto",
        block_rows: int | None = None,
        workers: int | None = None,
    ) -> BasisContext:
        """A :class:`BasisContext` over the mined families.

        The generator family is attached lazily so selections without a
        generator-backed basis never build or validate it.
        ``lattice_strategy`` forces the order core of the shared iceberg
        lattice (``auto`` picks dense below ~10k closed itemsets, packed
        above); ``block_rows`` forces the row-block size of the streamed
        rule-column assembly (``None`` = auto-sized blocks); ``workers``
        shards the lattice and rule-emission kernels (``None`` = the
        ``REPRO_NUM_WORKERS`` environment variable, else serial).
        """
        return BasisContext(
            closed=self.closed,
            minconf=minconf,
            frequent=self.frequent,
            generators_factory=lambda: self.generator_family,
            lattice_strategy=lattice_strategy,
            block_rows=block_rows,
            workers=workers,
        )


@dataclass
class RuleArtifacts:
    """The rule bases built for one (dataset, minsup, minconf) cell.

    ``bases`` maps registry names to built bases, in selection order.  The
    classic attribute accessors (:attr:`all_rules`, :attr:`dg_basis`,
    :attr:`luxenburger_reduced`, …) are views over that mapping and raise
    a clear error when the corresponding basis was not selected.
    """

    database_name: str
    minsup: float
    minconf: float
    bases: dict[str, BuiltBasis]
    #: The shared build context (kept so consumers like the artifact
    #: store can reach the single iceberg lattice the bases were built
    #: on); ``None`` for artifacts assembled outside the harness.
    context: BasisContext | None = field(default=None, repr=False, compare=False)

    @property
    def names(self) -> tuple[str, ...]:
        """The selected basis names, in selection order."""
        return tuple(self.bases)

    def basis_summaries(self) -> list[dict[str, object]]:
        """One vectorised statistics row per built basis (selection order).

        Counts and averages come from numpy reductions over the columnar
        rule store (:func:`repro.analysis.metrics.summarize_rules`), so
        summarising even a million-rule basis never materialises a rule
        object.
        """
        from ..analysis.metrics import summarize_rules

        rows: list[dict[str, object]] = []
        for name, built in self.bases.items():
            row: dict[str, object] = {
                "dataset": self.database_name,
                "minsup": self.minsup,
                "minconf": self.minconf,
                "basis": name,
                "kind": built.kind,
            }
            row.update(summarize_rules(built.rules))
            rows.append(row)
        return rows

    def __getitem__(self, name: str) -> BuiltBasis:
        return self._get(name)

    def _get(self, name: str) -> BuiltBasis:
        try:
            return self.bases[name]
        except KeyError:
            raise InvalidParameterError(
                f"basis {name!r} was not built; selected bases: "
                f"{', '.join(self.bases) or '(none)'}"
            ) from None

    # ------------------------------------------------------------------
    # Classic accessors (the pre-registry harness surface)
    # ------------------------------------------------------------------
    @property
    def all_rules(self) -> RuleSet:
        """Every valid rule above minconf (the naive baseline)."""
        return self._get("all").rules

    @cached_property
    def all_exact(self) -> RuleSet:
        """The exact subset of :attr:`all_rules`."""
        return self.all_rules.exact_rules()

    @cached_property
    def all_approximate(self) -> RuleSet:
        """The approximate subset of :attr:`all_rules`."""
        return self.all_rules.approximate_rules()

    @property
    def dg_basis(self) -> DuquenneGuiguesBasis:
        """The Duquenne-Guigues basis construction."""
        return self._get("dg").source  # type: ignore[return-value]

    @property
    def luxenburger_full(self) -> LuxenburgerBasis:
        """The full (non-reduced) Luxenburger basis construction."""
        return self._get("luxenburger").source  # type: ignore[return-value]

    @property
    def luxenburger_reduced(self) -> LuxenburgerBasis:
        """The transitively reduced Luxenburger basis construction."""
        return self._get("luxenburger-reduced").source  # type: ignore[return-value]

    @property
    def report(self) -> ReductionReport:
        """Size-comparison report (one row of the reduction tables).

        Needs the four classic bases (``all``, ``dg``, ``luxenburger``,
        ``luxenburger-reduced``) in the selection; the exact/approximate
        splits reuse the cached :attr:`all_exact` / :attr:`all_approximate`
        views rather than re-filtering the full rule set per access.
        """
        return ReductionReport(
            dataset=self.database_name,
            minsup=self.minsup,
            minconf=self.minconf,
            all_exact_rules=len(self.all_exact),
            dg_basis_size=len(self._get("dg").rules),
            all_approximate_rules=len(self.all_approximate),
            luxenburger_full_size=len(self._get("luxenburger").rules),
            luxenburger_reduced_size=len(self._get("luxenburger-reduced").rules),
        )


def mine_itemsets(
    database: TransactionDatabase,
    minsup: float,
    apriori_max_size: int | None = None,
    engine: str | None = None,
) -> ItemsetMiningResult:
    """Mine all frequent itemsets (Apriori) and the closed ones (Close).

    ``apriori_max_size`` optionally caps the itemset length explored by
    Apriori; the rule experiments never set it (the full frequent family is
    needed), but the runtime figures may when a dense dataset at a very low
    threshold would otherwise dominate the whole benchmark session.
    ``engine`` selects the closure engine both miners run on (``"numpy"``
    or ``"bitset"``; ``None`` keeps each miner's default).
    """
    apriori_run = Apriori(minsup, max_size=apriori_max_size, engine=engine).run(
        database
    )
    close = Close(minsup, engine=engine)
    close_run = close.run(database)
    return ItemsetMiningResult(
        database=database,
        minsup=minsup,
        apriori_run=apriori_run,
        close_run=close_run,
        generators_by_closure=close.generators_by_closure,
    )


def build_rule_artifacts(
    mining: ItemsetMiningResult,
    minconf: float,
    bases: str | tuple[str, ...] | list[str] | None = None,
    lattice_strategy: str = "auto",
    block_rows: int | None = None,
    workers: int | None = None,
) -> RuleArtifacts:
    """Build a selection of rule bases for one (dataset, minsup, minconf) cell.

    ``bases`` names the registered bases to build (a comma-separated
    string or a sequence; ``None`` selects the paper's four classic
    artefacts).  All selected bases share one :class:`BasisContext`, and
    therefore one vectorised iceberg-lattice construction;
    ``lattice_strategy`` forces its order core (``dense``, ``packed`` or
    ``reference`` — ``auto`` switches dense → packed at ~10k closed
    itemsets) and ``block_rows`` the row-block size of the streamed rule
    expansion (``None`` = auto-sized blocks; purely a peak-memory knob,
    the built rules are byte-identical either way).  ``workers`` shards
    the lattice construction and the streamed rule emitters across
    threads; the built bases are byte-identical for any worker count.
    """
    context = mining.basis_context(
        minconf,
        lattice_strategy=lattice_strategy,
        block_rows=block_rows,
        workers=workers,
    )
    return RuleArtifacts(
        database_name=mining.database.name,
        minsup=mining.minsup,
        minconf=minconf,
        bases=build_bases(context, bases),
        context=context,
    )


def save_artifacts(
    path,
    mining: ItemsetMiningResult | None,
    artifacts: RuleArtifacts | None = None,
    include_context: bool = True,
):
    """Persist one harness run into a :mod:`repro.store` container.

    Saves whatever the run produced: the transaction context (unless
    ``include_context=False``), the frequent and closed families, the
    minimal generators, the shared iceberg-lattice order core of
    *artifacts* (built lazily if no selected basis needed one yet) and
    every built basis's rule columns.  Returns the written path.
    """
    from .. import store

    database = mining.database if mining is not None else None
    generators = None
    if mining is not None and mining.generators_by_closure:
        generators = mining.generator_family
    lattice = None
    rule_arrays = {}
    basis_kinds = {}
    basis_metadata = {}
    if artifacts is not None:
        if artifacts.context is not None:
            lattice = artifacts.context.lattice
        rule_arrays = {
            name: built.rule_arrays for name, built in artifacts.bases.items()
        }
        basis_kinds = {name: built.kind for name, built in artifacts.bases.items()}
        basis_metadata = {
            name: built.metadata for name, built in artifacts.bases.items()
        }
    return store.save_run(
        path,
        database=database if include_context else None,
        frequent=mining.frequent if mining is not None else None,
        closed=mining.closed if mining is not None else None,
        generators=generators,
        lattice=lattice,
        rule_arrays=rule_arrays,
        basis_kinds=basis_kinds,
        basis_metadata=basis_metadata,
        name=database.name if database is not None else None,
        minsup=mining.minsup if mining is not None else None,
        minconf=artifacts.minconf if artifacts is not None else None,
    )


def build_rule_artifacts_from_store(
    stored,
    minconf: float | None = None,
    bases: str | tuple[str, ...] | list[str] | None = None,
    lattice_strategy: str = "auto",
    block_rows: int | None = None,
    workers: int | None = None,
) -> RuleArtifacts:
    """Warm-start the basis construction from a loaded artifact store.

    The stored closed/frequent/generator families and — crucially — the
    stored lattice order core replace the mining and lattice-construction
    steps entirely; only the (cheap, array-native) per-basis assembly
    runs.  Built output is byte-identical to a cold run of
    :func:`build_rule_artifacts` on the same dataset and thresholds.
    ``minconf=None`` reuses the threshold recorded at save time.

    A *forced* lattice strategy — an explicit argument other than
    ``"auto"``, or the ``REPRO_LATTICE_STRATEGY`` environment override —
    takes precedence over the stored order core: the lattice is rebuilt
    with the requested strategy instead of silently serving the stored
    one, so forcing ``reference`` for a cross-check actually runs the
    reference builder.
    """
    import os

    from ..core.order import STRATEGY_ENV_VAR

    closed = stored.require("closed")
    if minconf is None:
        minconf = stored.minconf
    if minconf is None:
        raise InvalidParameterError(
            "the store records no minconf; pass minconf= explicitly"
        )
    env_forced = os.environ.get(STRATEGY_ENV_VAR, "").strip().lower()
    strategy_forced = lattice_strategy != "auto" or env_forced not in ("", "auto")
    context = BasisContext(
        closed=closed,
        minconf=minconf,
        frequent=stored.frequent,
        generators=stored.generators,
        lattice_strategy=lattice_strategy,
        block_rows=block_rows,
        workers=workers,
        _lattice=None if strategy_forced else stored.lattice,
    )
    minsup = stored.minsup
    if minsup is None:
        minsup = closed.minsup
    return RuleArtifacts(
        database_name=stored.name,
        minsup=minsup,
        minconf=minconf,
        bases=build_bases(context, bases),
        context=context,
    )


def default_algorithms(
    minsup: float, engine: str | None = None
) -> list[MiningAlgorithm]:
    """The algorithm line-up of the execution-time figures."""
    return [
        Apriori(minsup, engine=engine),
        Close(minsup, engine=engine),
        AClose(minsup, engine=engine),
        # CHARM is inherently vertical; it always runs on the bitset engine.
        Charm(minsup),
    ]


def time_algorithms(
    database: TransactionDatabase,
    minsups: tuple[float, ...] | list[float],
    algorithm_factories: list[type[MiningAlgorithm]] | None = None,
    engine: str | None = None,
) -> list[dict[str, object]]:
    """Run each algorithm over a support sweep and collect timing rows.

    Returns one row per ``(algorithm, minsup)`` pair with the wall-clock
    time, the number of itemsets found and the candidate / database-pass
    counters — the quantities plotted by the original execution-time
    figures.  ``engine`` forces one closure engine for every miner except
    CHARM, which is vertical by construction.

    Every timed run starts from cold closure caches (the engines' derived
    views are kept — they are part of the data structure, not of a run),
    so no algorithm is measured against a cache warmed by a previous one.
    """
    factories = algorithm_factories or [Apriori, Close, AClose, Charm]
    rows: list[dict[str, object]] = []
    for minsup in minsups:
        for factory in factories:
            if engine is not None and factory is not Charm:
                algorithm = factory(minsup, engine=engine)
            else:
                algorithm = factory(minsup)
            database.clear_engine_caches()
            run = algorithm.run(database)
            rows.append(
                {
                    "dataset": database.name,
                    "algorithm": run.algorithm,
                    "minsup": minsup,
                    "itemsets": len(run.family),
                    "seconds": round(run.statistics.wall_clock_seconds, 4),
                    "db_passes": run.statistics.database_passes,
                    "candidates": run.statistics.candidates_generated,
                }
            )
    return rows
