"""Experiment harness: one place that wires miners, bases and reports together.

The benchmark modules under ``benchmarks/`` and the command-line interface
both go through this harness so that "what exactly was run" has a single
definition.  Three building blocks cover every table and figure:

* :func:`mine_itemsets` — run Apriori and Close on one dataset at one
  threshold, returning both families and the timing/counting statistics;
* :func:`build_rule_artifacts` — from the mined families, build every rule
  artefact of the paper (all exact rules, all approximate rules, the
  Duquenne-Guigues basis, the full and reduced Luxenburger bases) plus the
  reduction report comparing their sizes;
* :func:`time_algorithms` — run a list of miners over a support sweep and
  record wall-clock times (the execution-time figures).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.aclose import AClose
from ..algorithms.apriori import Apriori
from ..algorithms.base import MiningAlgorithm, MiningRun
from ..algorithms.charm import Charm
from ..algorithms.close import Close
from ..algorithms.rule_generation import generate_all_rules
from ..core.dg_basis import DuquenneGuiguesBasis, build_duquenne_guigues_basis
from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.luxenburger import LuxenburgerBasis
from ..core.redundancy import ReductionReport, reduction_report
from ..core.rules import RuleSet
from ..data.context import TransactionDatabase

__all__ = [
    "ItemsetMiningResult",
    "RuleArtifacts",
    "mine_itemsets",
    "build_rule_artifacts",
    "time_algorithms",
    "default_algorithms",
]


@dataclass
class ItemsetMiningResult:
    """Frequent and frequent-closed itemsets mined from one dataset/threshold."""

    database: TransactionDatabase
    minsup: float
    apriori_run: MiningRun
    close_run: MiningRun

    @property
    def frequent(self) -> ItemsetFamily:
        """All frequent itemsets (Apriori output)."""
        return self.apriori_run.family

    @property
    def closed(self) -> ClosedItemsetFamily:
        """The frequent closed itemsets (Close output)."""
        return self.close_run.family  # type: ignore[return-value]


@dataclass
class RuleArtifacts:
    """Every rule artefact the paper compares, for one (minsup, minconf) cell."""

    database_name: str
    minsup: float
    minconf: float
    all_rules: RuleSet
    all_exact: RuleSet
    all_approximate: RuleSet
    dg_basis: DuquenneGuiguesBasis
    luxenburger_full: LuxenburgerBasis
    luxenburger_reduced: LuxenburgerBasis

    @property
    def report(self) -> ReductionReport:
        """Size-comparison report (one row of the reduction tables)."""
        return reduction_report(
            dataset=self.database_name,
            minsup=self.minsup,
            minconf=self.minconf,
            all_exact=self.all_exact,
            dg_basis=self.dg_basis,
            all_approximate=self.all_approximate,
            luxenburger_full=self.luxenburger_full.rules,
            luxenburger_reduced=self.luxenburger_reduced.rules,
        )


def mine_itemsets(
    database: TransactionDatabase,
    minsup: float,
    apriori_max_size: int | None = None,
    engine: str | None = None,
) -> ItemsetMiningResult:
    """Mine all frequent itemsets (Apriori) and the closed ones (Close).

    ``apriori_max_size`` optionally caps the itemset length explored by
    Apriori; the rule experiments never set it (the full frequent family is
    needed), but the runtime figures may when a dense dataset at a very low
    threshold would otherwise dominate the whole benchmark session.
    ``engine`` selects the closure engine both miners run on (``"numpy"``
    or ``"bitset"``; ``None`` keeps each miner's default).
    """
    apriori_run = Apriori(minsup, max_size=apriori_max_size, engine=engine).run(
        database
    )
    close_run = Close(minsup, engine=engine).run(database)
    return ItemsetMiningResult(
        database=database,
        minsup=minsup,
        apriori_run=apriori_run,
        close_run=close_run,
    )


def build_rule_artifacts(
    mining: ItemsetMiningResult, minconf: float
) -> RuleArtifacts:
    """Build all rule sets and bases for one (dataset, minsup, minconf) cell."""
    frequent = mining.frequent
    closed = mining.closed
    all_rules = generate_all_rules(frequent, minconf=minconf)
    dg_basis = build_duquenne_guigues_basis(frequent, closed)
    luxenburger_full = LuxenburgerBasis(
        closed, minconf=minconf, transitive_reduction=False
    )
    luxenburger_reduced = LuxenburgerBasis(
        closed, minconf=minconf, transitive_reduction=True
    )
    return RuleArtifacts(
        database_name=mining.database.name,
        minsup=mining.minsup,
        minconf=minconf,
        all_rules=all_rules,
        all_exact=all_rules.exact_rules(),
        all_approximate=all_rules.approximate_rules(),
        dg_basis=dg_basis,
        luxenburger_full=luxenburger_full,
        luxenburger_reduced=luxenburger_reduced,
    )


def default_algorithms(
    minsup: float, engine: str | None = None
) -> list[MiningAlgorithm]:
    """The algorithm line-up of the execution-time figures."""
    return [
        Apriori(minsup, engine=engine),
        Close(minsup, engine=engine),
        AClose(minsup, engine=engine),
        # CHARM is inherently vertical; it always runs on the bitset engine.
        Charm(minsup),
    ]


def time_algorithms(
    database: TransactionDatabase,
    minsups: tuple[float, ...] | list[float],
    algorithm_factories: list[type[MiningAlgorithm]] | None = None,
    engine: str | None = None,
) -> list[dict[str, object]]:
    """Run each algorithm over a support sweep and collect timing rows.

    Returns one row per ``(algorithm, minsup)`` pair with the wall-clock
    time, the number of itemsets found and the candidate / database-pass
    counters — the quantities plotted by the original execution-time
    figures.  ``engine`` forces one closure engine for every miner except
    CHARM, which is vertical by construction.

    Every timed run starts from cold closure caches (the engines' derived
    views are kept — they are part of the data structure, not of a run),
    so no algorithm is measured against a cache warmed by a previous one.
    """
    factories = algorithm_factories or [Apriori, Close, AClose, Charm]
    rows: list[dict[str, object]] = []
    for minsup in minsups:
        for factory in factories:
            if engine is not None and factory is not Charm:
                algorithm = factory(minsup, engine=engine)
            else:
                algorithm = factory(minsup)
            database.clear_engine_caches()
            run = algorithm.run(database)
            rows.append(
                {
                    "dataset": database.name,
                    "algorithm": run.algorithm,
                    "minsup": minsup,
                    "itemsets": len(run.family),
                    "seconds": round(run.statistics.wall_clock_seconds, 4),
                    "db_passes": run.statistics.database_passes,
                    "candidates": run.statistics.candidates_generated,
                }
            )
    return rows
