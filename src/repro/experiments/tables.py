"""One function per reproduced table / figure.

Each function runs the corresponding experiment on the supplied dataset
specs (defaulting to the benchmark-scale specs of
:mod:`repro.experiments.config`) and returns a list of row dictionaries,
ready for :mod:`repro.experiments.report` to render.  The experiment ids
(T1–T5, F1–F3, A1–A2) match DESIGN.md §2 and EXPERIMENTS.md.

The functions accept pre-built databases where that avoids rebuilding the
same dataset repeatedly (the benchmark modules exploit this), but can also
be called with no arguments to regenerate everything from scratch, which
is what the CLI does.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..algorithms.aclose import AClose
from ..algorithms.charm import Charm
from ..algorithms.close import Close
from ..analysis.statistics import dataset_statistics, itemset_count_profile
from ..data.context import TransactionDatabase
from .config import DatasetSpec, all_specs, dense_specs, sparse_specs
from .harness import build_rule_artifacts, mine_itemsets, time_algorithms

__all__ = [
    "table1_dataset_characteristics",
    "table2_itemset_counts",
    "table3_exact_rules",
    "table4_approximate_rules",
    "table5_total_reduction",
    "table6_basis_statistics",
    "figure1_dense_runtimes",
    "figure2_sparse_runtimes",
    "figure3_rules_vs_minconf",
    "ablation_transitive_reduction",
    "ablation_closed_miners",
]


def _build_databases(specs: Sequence[DatasetSpec]) -> list[tuple[DatasetSpec, TransactionDatabase]]:
    return [(spec, spec.build()) for spec in specs]


# ----------------------------------------------------------------------
# T1 — dataset characteristics
# ----------------------------------------------------------------------
def table1_dataset_characteristics(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T1: objects, items, average size and density of every dataset."""
    specs = list(specs) if specs is not None else all_specs()
    rows = []
    for spec, database in _build_databases(specs):
        row = dataset_statistics(database).as_dict()
        # Report under the spec name, which is what the other tables use
        # (the underlying generator may carry a slightly different label).
        row["dataset"] = spec.name
        row["kind"] = "dense" if spec.dense else "sparse"
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# T2 — frequent vs frequent closed itemset counts
# ----------------------------------------------------------------------
def table2_itemset_counts(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T2: |frequent itemsets| vs |frequent closed itemsets| per minsup."""
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        for minsup in spec.minsup_sweep:
            mining = mine_itemsets(database, minsup)
            profile = itemset_count_profile(mining.frequent, mining.closed)
            rows.append(
                {
                    "dataset": spec.name,
                    "minsup": minsup,
                    "frequent": profile["frequent_itemsets"],
                    "closed": profile["closed_itemsets"],
                    "ratio": profile["ratio"],
                    "max_frequent_size": profile["max_frequent_size"],
                    "max_closed_size": profile["max_closed_size"],
                }
            )
    return rows


# ----------------------------------------------------------------------
# T3 — exact rules vs the Duquenne-Guigues basis
# ----------------------------------------------------------------------
def table3_exact_rules(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T3: number of exact rules vs the size of the Duquenne-Guigues basis."""
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        for minsup in spec.rule_sweep:
            mining = mine_itemsets(database, minsup)
            artifacts = build_rule_artifacts(mining, minconf=1.0, bases=spec.bases)
            report = artifacts.report
            rows.append(
                {
                    "dataset": spec.name,
                    "minsup": minsup,
                    "exact_rules": report.all_exact_rules,
                    "dg_basis": report.dg_basis_size,
                    "reduction": round(report.exact_reduction_factor, 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# T4 — approximate rules vs the Luxenburger bases
# ----------------------------------------------------------------------
def table4_approximate_rules(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T4: approximate rules vs full / reduced Luxenburger basis sizes."""
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        for minsup in spec.rule_sweep:
            mining = mine_itemsets(database, minsup)
            for minconf in spec.minconfs:
                artifacts = build_rule_artifacts(
                    mining, minconf=minconf, bases=spec.bases
                )
                report = artifacts.report
                rows.append(
                    {
                        "dataset": spec.name,
                        "minsup": minsup,
                        "minconf": minconf,
                        "approx_rules": report.all_approximate_rules,
                        "lux_full": report.luxenburger_full_size,
                        "lux_reduced": report.luxenburger_reduced_size,
                        "reduction": round(report.approximate_reduction_factor, 2),
                    }
                )
    return rows


# ----------------------------------------------------------------------
# T5 — total reduction factors
# ----------------------------------------------------------------------
def table5_total_reduction(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T5: all rules vs the union of the two bases (total reduction factor)."""
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        minsup = spec.rule_sweep[-1]
        mining = mine_itemsets(database, minsup)
        for minconf in spec.minconfs:
            report = build_rule_artifacts(
                mining, minconf=minconf, bases=spec.bases
            ).report
            rows.append(
                {
                    "dataset": spec.name,
                    "minsup": minsup,
                    "minconf": minconf,
                    "all_rules": report.all_rules,
                    "bases_total": report.bases_total,
                    "reduction": round(report.total_reduction_factor, 2),
                }
            )
    return rows


# ----------------------------------------------------------------------
# T6 — per-basis summary statistics (columnar reductions)
# ----------------------------------------------------------------------
def table6_basis_statistics(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """T6: size and average support/confidence of every selected basis.

    The statistics come straight from numpy reductions over the columnar
    rule store (no rule objects), one row per ``(dataset, basis)``.
    """
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        minsup = spec.rule_sweep[-1]
        mining = mine_itemsets(database, minsup)
        artifacts = build_rule_artifacts(
            mining, minconf=spec.minconfs[0], bases=spec.bases
        )
        for row in artifacts.basis_summaries():
            row["average_support"] = round(float(row["average_support"]), 4)
            row["average_confidence"] = round(float(row["average_confidence"]), 4)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# F1 / F2 — execution-time comparisons
# ----------------------------------------------------------------------
def figure1_dense_runtimes(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """F1: Apriori vs Close vs A-Close vs CHARM on the dense datasets."""
    specs = list(specs) if specs is not None else dense_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        rows.extend(time_algorithms(database, spec.minsup_sweep))
    return rows


def figure2_sparse_runtimes(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """F2: the same algorithm line-up on the sparse Quest-style datasets."""
    specs = list(specs) if specs is not None else sparse_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        rows.extend(time_algorithms(database, spec.minsup_sweep))
    return rows


# ----------------------------------------------------------------------
# F3 — number of rules as a function of minconf
# ----------------------------------------------------------------------
def figure3_rules_vs_minconf(
    specs: Sequence[DatasetSpec] | None = None,
    minconfs: Sequence[float] = (0.95, 0.9, 0.8, 0.7, 0.6, 0.5),
) -> list[dict[str, object]]:
    """F3: all rules vs bases as the confidence threshold decreases."""
    specs = list(specs) if specs is not None else dense_specs()[:1]
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        minsup = spec.rule_sweep[0]
        mining = mine_itemsets(database, minsup)
        for minconf in minconfs:
            report = build_rule_artifacts(
                mining, minconf=minconf, bases=spec.bases
            ).report
            rows.append(
                {
                    "dataset": spec.name,
                    "minsup": minsup,
                    "minconf": minconf,
                    "all_rules": report.all_rules,
                    "dg_basis": report.dg_basis_size,
                    "lux_reduced": report.luxenburger_reduced_size,
                    "bases_total": report.bases_total,
                }
            )
    return rows


# ----------------------------------------------------------------------
# A1 — ablation: Luxenburger basis with / without transitive reduction
# ----------------------------------------------------------------------
def ablation_transitive_reduction(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """A1: size of the Luxenburger basis with and without the reduction."""
    specs = list(specs) if specs is not None else dense_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        minsup = spec.rule_sweep[0]
        mining = mine_itemsets(database, minsup)
        for minconf in spec.minconfs:
            artifacts = build_rule_artifacts(
                mining, minconf=minconf, bases=spec.bases
            )
            full = len(artifacts.luxenburger_full)
            reduced = len(artifacts.luxenburger_reduced)
            rows.append(
                {
                    "dataset": spec.name,
                    "minsup": minsup,
                    "minconf": minconf,
                    "lux_full": full,
                    "lux_reduced": reduced,
                    "saving": round(full / reduced, 2) if reduced else 1.0,
                }
            )
    return rows


# ----------------------------------------------------------------------
# A2 — ablation: cross-check of the closed itemset miners
# ----------------------------------------------------------------------
def ablation_closed_miners(
    specs: Sequence[DatasetSpec] | None = None,
) -> list[dict[str, object]]:
    """A2: Close vs A-Close vs CHARM — result equality and timings."""
    specs = list(specs) if specs is not None else all_specs()
    rows: list[dict[str, object]] = []
    for spec, database in _build_databases(specs):
        minsup = spec.minsup_sweep[0]
        close_run = Close(minsup).run(database)
        aclose_run = AClose(minsup).run(database)
        charm_run = Charm(minsup).run(database)
        reference = close_run.family.to_dict()
        rows.append(
            {
                "dataset": spec.name,
                "minsup": minsup,
                "closed_itemsets": len(close_run.family),
                "close_seconds": round(close_run.statistics.wall_clock_seconds, 4),
                "aclose_seconds": round(aclose_run.statistics.wall_clock_seconds, 4),
                "charm_seconds": round(charm_run.statistics.wall_clock_seconds, 4),
                "aclose_matches": aclose_run.family.to_dict() == reference,
                "charm_matches": charm_run.family.to_dict() == reference,
            }
        )
    return rows
