"""Deterministic stand-ins for the paper's dense benchmark datasets.

The evaluation protocol of the Close / A-Close / bases papers uses three
dense, highly correlated categorical datasets:

* **MUSHROOM** — 8 124 objects, 23 categorical attributes (119 attribute
  values), from the UCI repository;
* **C20D10K** and **C73D10K** — 10 000-object extracts of the Kansas PUMS
  census file with 20 (resp. 73) attributes per object.

Those files cannot be downloaded in this offline environment, so this
module generates *structural equivalents*: categorical datasets in which
every object carries exactly one value per attribute, value distributions
are skewed, and values of different attributes are correlated through a
small number of latent classes.  These are the three properties that
produce the paper's headline behaviour (many frequent itemsets, far fewer
closed ones, bases orders of magnitude smaller than the full rule sets),
as discussed in DESIGN.md §3.  All generators are deterministic given
their seed, so tests and benchmarks are reproducible bit for bit.

The default sizes are scaled down (2 000–4 000 objects, 10–15 attributes)
so the complete experiment grid runs in minutes in pure Python; the
constructor parameters allow scaling back up.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .context import TransactionDatabase

__all__ = [
    "make_categorical_dataset",
    "make_mushroom",
    "make_census",
    "make_c20d10k",
    "make_c73d10k",
    "dense_benchmark_suite",
]


def make_categorical_dataset(
    n_objects: int,
    n_attributes: int,
    values_per_attribute: int,
    n_latent_classes: int = 4,
    class_fidelity: float = 0.75,
    n_deterministic_attributes: int = 0,
    n_constant_attributes: int = 0,
    skew: float = 1.5,
    seed: int = 11,
    name: str = "categorical",
) -> TransactionDatabase:
    """Generate a dense categorical dataset with latent-class correlations.

    Every object belongs to one of ``n_latent_classes`` hidden classes.
    Attributes come in three flavours, mirroring the structure of the real
    MUSHROOM / census files:

    * *constant* attributes take the same value for every object (MUSHROOM's
      ``veil-type`` is the textbook example);
    * *deterministic* attributes are pure functions of the hidden class —
      their values always co-occur, which creates itemsets with exactly
      equal supports (the source of the "many frequent itemsets, few closed
      itemsets" behaviour the paper exploits);
    * *noisy* attributes take their class's preferred value with probability
      ``class_fidelity`` and otherwise draw from a skewed (Zipf-like)
      distribution over the remaining values.

    Parameters
    ----------
    n_objects, n_attributes, values_per_attribute:
        Shape of the dataset; every object receives exactly one
        ``attribute=value`` item per attribute (fixed row width, as in
        MUSHROOM / census data).
    n_latent_classes:
        Number of hidden classes inducing the correlations.
    class_fidelity:
        Probability that a noisy attribute takes its class's preferred value.
    n_deterministic_attributes:
        Number of attributes that are deterministic functions of the class.
    n_constant_attributes:
        Number of attributes constant across the whole dataset.
    skew:
        Zipf exponent of the fallback value distribution.
    seed:
        Random seed (the datasets used by tests and benchmarks fix it).
    name:
        Dataset name.
    """
    if n_objects <= 0 or n_attributes <= 0 or values_per_attribute <= 0:
        raise InvalidParameterError("dataset dimensions must be positive")
    if not 0.0 <= class_fidelity <= 1.0:
        raise InvalidParameterError("class_fidelity must lie in [0, 1]")
    if n_latent_classes <= 0:
        raise InvalidParameterError("n_latent_classes must be positive")
    if n_deterministic_attributes < 0 or n_constant_attributes < 0:
        raise InvalidParameterError("attribute counts cannot be negative")
    if n_deterministic_attributes + n_constant_attributes > n_attributes:
        raise InvalidParameterError(
            "deterministic + constant attributes exceed the attribute count"
        )

    rng = np.random.default_rng(seed)

    # Preferred value of each (class, attribute) pair.
    preferred = rng.integers(
        0, values_per_attribute, size=(n_latent_classes, n_attributes)
    )

    # Skewed fallback distribution over values (shared by all attributes).
    ranks = np.arange(1, values_per_attribute + 1, dtype=float)
    fallback = 1.0 / np.power(ranks, skew)
    fallback /= fallback.sum()

    # Class sizes are themselves skewed so that some item combinations are
    # very frequent and others rare, as in the census extracts.
    class_weights = rng.exponential(scale=1.0, size=n_latent_classes)
    class_weights /= class_weights.sum()

    constant_limit = n_constant_attributes
    deterministic_limit = n_constant_attributes + n_deterministic_attributes

    transactions: list[list[str]] = []
    for _ in range(n_objects):
        klass = int(rng.choice(n_latent_classes, p=class_weights))
        row: list[str] = []
        for attribute in range(n_attributes):
            if attribute < constant_limit:
                value = 0
            elif attribute < deterministic_limit:
                value = int(preferred[klass, attribute])
            elif rng.random() < class_fidelity:
                value = int(preferred[klass, attribute])
            else:
                value = int(rng.choice(values_per_attribute, p=fallback))
            row.append(f"a{attribute}=v{value}")
        transactions.append(row)
    return TransactionDatabase(transactions, name=name)


def make_mushroom(
    n_objects: int = 2000,
    n_attributes: int = 15,
    values_per_attribute: int = 6,
    seed: int = 23,
) -> TransactionDatabase:
    """Structural stand-in for the UCI MUSHROOM dataset (scaled down).

    The real MUSHROOM has 8 124 objects and 23 attributes with 2–12 values
    each; the default stand-in keeps the same fixed-row-width, strongly
    correlated structure at roughly a quarter of the size so the full
    benchmark grid stays laptop-fast.  Pass larger values to approach the
    original scale.
    """
    return make_categorical_dataset(
        n_objects=n_objects,
        n_attributes=n_attributes,
        values_per_attribute=values_per_attribute,
        n_latent_classes=3,
        class_fidelity=0.8,
        n_deterministic_attributes=max(2, n_attributes // 4),
        n_constant_attributes=1,
        skew=1.3,
        seed=seed,
        name="MUSHROOM*",
    )


def make_census(
    n_objects: int,
    n_attributes: int,
    values_per_attribute: int = 8,
    seed: int = 31,
    name: str = "CENSUS*",
) -> TransactionDatabase:
    """Structural stand-in for the PUMS census extracts used by the paper."""
    return make_categorical_dataset(
        n_objects=n_objects,
        n_attributes=n_attributes,
        values_per_attribute=values_per_attribute,
        n_latent_classes=5,
        class_fidelity=0.7,
        n_deterministic_attributes=max(2, n_attributes // 5),
        n_constant_attributes=1,
        skew=1.6,
        seed=seed,
        name=name,
    )


def make_c20d10k(n_objects: int = 2500, n_attributes: int = 12, seed: int = 31) -> TransactionDatabase:
    """Scaled-down stand-in for C20D10K (10 000 census objects, 20 attributes).

    Census extracts are even denser than MUSHROOM (the paper mines them at
    minimum supports of 70–95 %), so the stand-in uses few latent classes,
    high fidelity and several deterministic attributes.
    """
    return make_categorical_dataset(
        n_objects=n_objects,
        n_attributes=n_attributes,
        values_per_attribute=6,
        n_latent_classes=3,
        class_fidelity=0.9,
        n_deterministic_attributes=max(2, n_attributes // 3),
        n_constant_attributes=1,
        skew=1.8,
        seed=seed,
        name="C20D10K*",
    )


def make_c73d10k(n_objects: int = 1500, n_attributes: int = 18, seed: int = 47) -> TransactionDatabase:
    """Scaled-down stand-in for C73D10K (10 000 census objects, 73 attributes)."""
    return make_categorical_dataset(
        n_objects=n_objects,
        n_attributes=n_attributes,
        values_per_attribute=5,
        n_latent_classes=3,
        class_fidelity=0.9,
        n_deterministic_attributes=max(2, n_attributes // 3),
        n_constant_attributes=2,
        skew=1.8,
        seed=seed,
        name="C73D10K*",
    )


def dense_benchmark_suite() -> list[TransactionDatabase]:
    """The three dense stand-in datasets used across the experiment tables."""
    return [make_mushroom(), make_c20d10k(), make_c73d10k()]
