"""The data mining context: a binary relation between objects and items.

The paper defines the mining context as a triplet ``D = (O, I, R)`` where
``O`` is a finite set of objects (transactions), ``I`` a finite set of
items, and ``R ⊆ O × I`` a binary relation.  :class:`TransactionDatabase`
is the concrete realisation of that triplet used throughout this library.

Two derived operators of the Galois connection live naturally here because
they need fast access to the relation:

* ``g(X)`` — the *cover* (extent) of an itemset ``X``: the set of objects
  related to every item of ``X``;
* ``f(T)`` — the *common items* (intent) of a set of objects ``T``: the
  items related to every object of ``T``.

The closure operator ``h = f ∘ g`` of the paper is exposed as
:meth:`TransactionDatabase.closure`.

Implementation
--------------
The relation is stored as a dense boolean numpy matrix (objects × items)
plus one integer-bitset column per item.  The matrix gives vectorised
cover/closure computations; the per-item bitsets (arbitrary-precision
Python integers, one bit per object) give extremely fast tidset
intersections for the vertical algorithms (CHARM) and for support
counting of small itemsets.  Both views are built once at construction
time and are immutable afterwards.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

import numpy as np

from ..core.itemset import Item, Itemset
from ..errors import EmptyDatabaseError, InvalidItemsetError, InvalidParameterError

__all__ = ["TransactionDatabase"]


def _popcount(bits: int) -> int:
    """Number of set bits of an arbitrary-precision integer bitset."""
    return bits.bit_count()


class TransactionDatabase:
    """A finite mining context ``D = (O, I, R)``.

    Parameters
    ----------
    transactions:
        Iterable of transactions; each transaction is an iterable of items.
        Duplicated items inside one transaction are collapsed.  Empty
        transactions are kept (they contribute to ``|O|`` but to no item
        support), matching the formal definition of the context.
    item_order:
        Optional explicit ordering of the item universe.  Items that appear
        in transactions but not in ``item_order`` are appended after it in
        canonical sorted order.  Items listed here but absent from every
        transaction are retained with support zero.
    object_ids:
        Optional identifiers for the objects.  Defaults to ``0..n-1``.
    name:
        Optional human-readable dataset name used by reports.

    Examples
    --------
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]], name="example")
    >>> db.n_objects, db.n_items
    (5, 5)
    >>> db.support_count(Itemset("bc"))
    3
    >>> str(db.closure(Itemset("a")))
    '{a, c}'
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[Item]],
        item_order: Sequence[Item] | None = None,
        object_ids: Sequence[Any] | None = None,
        name: str | None = None,
    ) -> None:
        rows: list[frozenset] = [frozenset(t) for t in transactions]
        self._name = name or "unnamed"

        seen: set = set()
        for row in rows:
            seen.update(row)

        items: list = []
        if item_order is not None:
            for item in item_order:
                if item not in items:
                    items.append(item)
        remaining = seen.difference(items)
        try:
            items.extend(sorted(remaining))
        except TypeError:
            items.extend(sorted(remaining, key=repr))

        self._items: tuple = tuple(items)
        self._item_index: dict = {item: i for i, item in enumerate(self._items)}

        if object_ids is not None:
            object_ids = list(object_ids)
            if len(object_ids) != len(rows):
                raise InvalidParameterError(
                    f"got {len(object_ids)} object ids for {len(rows)} transactions"
                )
            self._object_ids: tuple = tuple(object_ids)
        else:
            self._object_ids = tuple(range(len(rows)))

        n_rows, n_cols = len(rows), len(self._items)
        matrix = np.zeros((n_rows, n_cols), dtype=bool)
        for r, row in enumerate(rows):
            for item in row:
                matrix[r, self._item_index[item]] = True
        matrix.setflags(write=False)
        self._matrix = matrix

        # Per-item bitsets: bit t of _item_bits[i] is set iff object t has item i.
        item_bits: list[int] = []
        for c in range(n_cols):
            bits = 0
            for r in np.flatnonzero(matrix[:, c]):
                bits |= 1 << int(r)
            item_bits.append(bits)
        self._item_bits: tuple[int, ...] = tuple(item_bits)
        self._all_objects_bits: int = (1 << n_rows) - 1 if n_rows else 0

        self._row_itemsets: tuple[Itemset, ...] = tuple(Itemset(row) for row in rows)

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[Any, Item]],
        name: str | None = None,
    ) -> "TransactionDatabase":
        """Build a database from explicit ``(object, item)`` relation pairs.

        This mirrors the formal definition of ``R ⊆ O × I`` most closely
        and is convenient when loading relational exports.
        """
        grouped: dict[Any, set] = {}
        order: list[Any] = []
        for obj, item in pairs:
            if obj not in grouped:
                grouped[obj] = set()
                order.append(obj)
            grouped[obj].add(item)
        return cls(
            (grouped[obj] for obj in order),
            object_ids=order,
            name=name,
        )

    @classmethod
    def from_binary_matrix(
        cls,
        matrix: np.ndarray,
        items: Sequence[Item] | None = None,
        name: str | None = None,
    ) -> "TransactionDatabase":
        """Build a database from a dense 0/1 matrix (objects × items)."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise InvalidParameterError("binary matrix must be two-dimensional")
        if items is None:
            items = [f"i{c}" for c in range(matrix.shape[1])]
        if len(items) != matrix.shape[1]:
            raise InvalidParameterError(
                f"got {len(items)} item labels for {matrix.shape[1]} columns"
            )
        transactions = [
            [items[c] for c in np.flatnonzero(matrix[r])] for r in range(matrix.shape[0])
        ]
        return cls(transactions, item_order=items, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable dataset name (used in reports and benchmarks)."""
        return self._name

    @property
    def n_objects(self) -> int:
        """Number of objects (transactions) ``|O|``."""
        return len(self._row_itemsets)

    @property
    def n_items(self) -> int:
        """Number of items ``|I|`` in the universe."""
        return len(self._items)

    @property
    def items(self) -> tuple:
        """The item universe in canonical column order."""
        return self._items

    @property
    def object_ids(self) -> tuple:
        """Identifiers of the objects, aligned with row indices."""
        return self._object_ids

    @property
    def item_universe(self) -> Itemset:
        """The full item universe as an :class:`Itemset`."""
        return Itemset(self._items)

    def __len__(self) -> int:
        return self.n_objects

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._row_itemsets)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(name={self._name!r}, objects={self.n_objects}, "
            f"items={self.n_items})"
        )

    def transaction(self, index: int) -> Itemset:
        """Return the itemset of the object at row *index*."""
        return self._row_itemsets[index]

    def transactions(self) -> tuple[Itemset, ...]:
        """Return all transactions as a tuple of itemsets."""
        return self._row_itemsets

    def relation_pairs(self) -> Iterator[tuple[Any, Item]]:
        """Yield the relation ``R`` as explicit ``(object id, item)`` pairs."""
        for row, oid in zip(self._row_itemsets, self._object_ids):
            for item in row:
                yield (oid, item)

    # ------------------------------------------------------------------
    # Dataset statistics
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fraction of cells of the object × item matrix that are related."""
        if self.n_objects == 0 or self.n_items == 0:
            return 0.0
        return float(self._matrix.sum()) / (self.n_objects * self.n_items)

    @property
    def avg_transaction_size(self) -> float:
        """Mean number of items per object."""
        if self.n_objects == 0:
            return 0.0
        return float(self._matrix.sum()) / self.n_objects

    @property
    def max_transaction_size(self) -> int:
        """Largest number of items held by a single object."""
        if self.n_objects == 0:
            return 0
        return int(self._matrix.sum(axis=1).max())

    def item_support_counts(self) -> dict:
        """Return a mapping ``item -> absolute support`` for every item."""
        counts = self._matrix.sum(axis=0)
        return {item: int(counts[i]) for i, item in enumerate(self._items)}

    # ------------------------------------------------------------------
    # Galois connection primitives
    # ------------------------------------------------------------------
    def _columns(self, items: Itemset | Iterable[Item]) -> list[int]:
        itemset = Itemset.coerce(items)
        cols = []
        for item in itemset:
            index = self._item_index.get(item)
            if index is None:
                raise InvalidItemsetError(
                    f"item {item!r} does not belong to the context {self._name!r}"
                )
            cols.append(index)
        return cols

    def cover_bits(self, items: Itemset | Iterable[Item]) -> int:
        """Return the cover of *items* as an integer bitset over objects.

        Bit ``t`` is set iff object ``t`` contains every item of *items*.
        The cover of the empty itemset is the whole object set.
        """
        cols = self._columns(items)
        bits = self._all_objects_bits
        for c in cols:
            bits &= self._item_bits[c]
            if not bits:
                break
        return bits

    def cover_mask(self, items: Itemset | Iterable[Item]) -> np.ndarray:
        """Return the cover of *items* as a boolean mask over object rows.

        Vectorised twin of :meth:`cover_bits`; the dense miners (Close,
        A-Close) use it because computing a closure needs the whole mask
        anyway.
        """
        cols = self._columns(items)
        if not cols:
            return np.ones(self.n_objects, dtype=bool)
        if len(cols) == 1:
            return self._matrix[:, cols[0]].copy()
        return self._matrix[:, cols].all(axis=1)

    def cover(self, items: Itemset | Iterable[Item]) -> frozenset[int]:
        """Return ``g(items)``: the row indices of objects containing *items*."""
        mask = self.cover_mask(items)
        return frozenset(int(i) for i in np.flatnonzero(mask))

    def common_items(self, objects: Iterable[int]) -> Itemset:
        """Return ``f(objects)``: the items shared by every listed object.

        By convention ``f(∅)`` is the full item universe (the top of the
        Galois connection), as in formal concept analysis.
        """
        rows = list(objects)
        if not rows:
            return self.item_universe
        mask = self._matrix[rows].all(axis=0)
        return Itemset(self._items[i] for i in np.flatnonzero(mask))

    def closure(self, items: Itemset | Iterable[Item]) -> Itemset:
        """Return ``h(items) = f(g(items))`` — the Galois closure of *items*.

        For an itemset contained in at least one object this is the maximal
        itemset shared by all objects containing it (the intersection of
        those objects).  For an itemset contained in no object the closure
        is the full item universe, the standard FCA convention.
        """
        return self.closure_and_support(items)[0]

    def closure_and_support(
        self, items: Itemset | Iterable[Item]
    ) -> tuple[Itemset, int]:
        """Return ``(h(items), support_count(items))`` with a single cover pass."""
        cover = self.cover_mask(items)
        count = int(cover.sum())
        if count == 0:
            return self.item_universe, 0
        common = self._matrix[cover].all(axis=0)
        return Itemset(self._items[i] for i in np.flatnonzero(common)), count

    def is_closed(self, items: Itemset | Iterable[Item]) -> bool:
        """Return ``True`` iff *items* equals its own closure."""
        itemset = Itemset.coerce(items)
        return self.closure(itemset) == itemset

    # ------------------------------------------------------------------
    # Support
    # ------------------------------------------------------------------
    def support_count(self, items: Itemset | Iterable[Item]) -> int:
        """Return the absolute support (number of covering objects)."""
        return _popcount(self.cover_bits(items))

    def support(self, items: Itemset | Iterable[Item]) -> float:
        """Return the relative support ``support_count / |O|``."""
        if self.n_objects == 0:
            raise EmptyDatabaseError("support is undefined on an empty database")
        return self.support_count(items) / self.n_objects

    def minsup_count(self, minsup: float) -> int:
        """Translate a relative *minsup* threshold into an absolute count.

        The returned count is the smallest integer ``c`` such that
        ``c / |O| >= minsup``; an itemset is frequent iff its absolute
        support is ``>= c``.  A relative threshold of ``0`` maps to count
        ``1`` so that "frequent" always means "occurs at least once".
        """
        if not 0.0 <= minsup <= 1.0:
            raise InvalidParameterError(f"minsup must lie in [0, 1], got {minsup}")
        if self.n_objects == 0:
            raise EmptyDatabaseError("minsup is undefined on an empty database")
        count = int(np.ceil(minsup * self.n_objects))
        return max(count, 1)

    # ------------------------------------------------------------------
    # Vertical view & item pruning
    # ------------------------------------------------------------------
    def vertical(self) -> dict:
        """Return the vertical representation: ``item -> frozenset of tids``."""
        return {
            item: frozenset(_iter_bits(self._item_bits[i]))
            for i, item in enumerate(self._items)
        }

    def vertical_bits(self) -> dict:
        """Return the vertical representation as ``item -> integer bitset``."""
        return {item: self._item_bits[i] for i, item in enumerate(self._items)}

    def to_binary_matrix(self) -> np.ndarray:
        """Return a copy of the dense boolean object × item matrix."""
        return self._matrix.copy()

    def restrict_to_items(self, items: Itemset | Iterable[Item]) -> "TransactionDatabase":
        """Return a new database keeping only the given items.

        Objects are all kept (possibly becoming empty transactions) so that
        relative supports stay comparable with the original database.
        """
        keep = Itemset.coerce(items)
        unknown = keep.difference(self._items)
        if unknown:
            raise InvalidItemsetError(f"unknown items: {sorted(map(repr, unknown))}")
        keep_set = keep.as_frozenset()
        order = [item for item in self._items if item in keep_set]
        return TransactionDatabase(
            (row.intersection(keep_set).as_frozenset() for row in self._row_itemsets),
            item_order=order,
            object_ids=self._object_ids,
            name=self._name,
        )

    def restrict_to_frequent_items(self, minsup: float) -> "TransactionDatabase":
        """Return a new database keeping only items frequent at *minsup*.

        Pruning infrequent items never changes the frequent (closed)
        itemsets above the same threshold and is the standard first step of
        every level-wise miner.
        """
        threshold = self.minsup_count(minsup)
        counts = self.item_support_counts()
        frequent = [item for item in self._items if counts[item] >= threshold]
        return self.restrict_to_items(frequent)


def _iter_bits(bits: int) -> Iterator[int]:
    """Yield the indices of set bits of an integer bitset, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low
