"""The data mining context: a binary relation between objects and items.

The paper defines the mining context as a triplet ``D = (O, I, R)`` where
``O`` is a finite set of objects (transactions), ``I`` a finite set of
items, and ``R ⊆ O × I`` a binary relation.  :class:`TransactionDatabase`
is the concrete realisation of that triplet used throughout this library.

Two derived operators of the Galois connection live naturally here because
they need fast access to the relation:

* ``g(X)`` — the *cover* (extent) of an itemset ``X``: the set of objects
  related to every item of ``X``;
* ``f(T)`` — the *common items* (intent) of a set of objects ``T``: the
  items related to every object of ``T``.

The closure operator ``h = f ∘ g`` of the paper is exposed as
:meth:`TransactionDatabase.closure`.

Implementation
--------------
The relation is stored as a dense boolean numpy matrix (objects × items);
the derived views and all closure/support evaluation live in the engines
of :mod:`repro.engine`.  ``TransactionDatabase.engine(name)`` returns the
lazily built engine of this context (``"numpy"`` — vectorised dense
batches, the default — or ``"bitset"`` — per-item integer tidsets, the
representation CHARM and Apriori consume).  The single-itemset methods
below (:meth:`cover`, :meth:`closure`, :meth:`support_count`, …) are thin
wrappers over the default engine so existing callers keep working while
level-wise miners hand whole candidate batches to the engine directly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core.itemset import Item, Itemset
from ..engine.bitops import iter_bits
from ..errors import EmptyDatabaseError, InvalidItemsetError, InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover
    from ..engine import ClosureEngine

__all__ = ["TransactionDatabase"]


class TransactionDatabase:
    """A finite mining context ``D = (O, I, R)``.

    Parameters
    ----------
    transactions:
        Iterable of transactions; each transaction is an iterable of items.
        Duplicated items inside one transaction are collapsed.  Empty
        transactions are kept (they contribute to ``|O|`` but to no item
        support), matching the formal definition of the context.
    item_order:
        Optional explicit ordering of the item universe.  Items that appear
        in transactions but not in ``item_order`` are appended after it in
        canonical sorted order.  Items listed here but absent from every
        transaction are retained with support zero.
    object_ids:
        Optional identifiers for the objects.  Defaults to ``0..n-1``.
    name:
        Optional human-readable dataset name used by reports.
    engine:
        Name of the default closure engine (``"numpy"`` or ``"bitset"``)
        used by the single-itemset wrappers; see :mod:`repro.engine`.

    Examples
    --------
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]], name="example")
    >>> db.n_objects, db.n_items
    (5, 5)
    >>> db.support_count(Itemset("bc"))
    3
    >>> str(db.closure(Itemset("a")))
    '{a, c}'
    """

    def __init__(
        self,
        transactions: Iterable[Iterable[Item]],
        item_order: Sequence[Item] | None = None,
        object_ids: Sequence[Any] | None = None,
        name: str | None = None,
        engine: str | None = None,
    ) -> None:
        rows: list[frozenset] = [frozenset(t) for t in transactions]
        self._name = name or "unnamed"

        seen: set = set()
        for row in rows:
            seen.update(row)

        items: list = []
        if item_order is not None:
            ordered_seen: set = set()
            for item in item_order:
                if item not in ordered_seen:
                    ordered_seen.add(item)
                    items.append(item)
        remaining = seen.difference(items)
        try:
            items.extend(sorted(remaining))
        except TypeError:
            items.extend(sorted(remaining, key=repr))

        self._items: tuple = tuple(items)
        self._item_index: dict = {item: i for i, item in enumerate(self._items)}

        if object_ids is not None:
            object_ids = list(object_ids)
            if len(object_ids) != len(rows):
                raise InvalidParameterError(
                    f"got {len(object_ids)} object ids for {len(rows)} transactions"
                )
            self._object_ids: tuple = tuple(object_ids)
        else:
            self._object_ids = tuple(range(len(rows)))

        n_rows, n_cols = len(rows), len(self._items)
        matrix = np.zeros((n_rows, n_cols), dtype=bool)
        for r, row in enumerate(rows):
            for item in row:
                matrix[r, self._item_index[item]] = True
        matrix.setflags(write=False)
        self._matrix = matrix

        self._row_itemsets: tuple[Itemset, ...] = tuple(Itemset(row) for row in rows)

        # Engines (and their bitset/float views) are built lazily on first use.
        from ..engine import resolve_engine_name

        self._default_engine: str = resolve_engine_name(engine)
        self._engines: dict[str, "ClosureEngine"] = {}

    # ------------------------------------------------------------------
    # Incremental extension
    # ------------------------------------------------------------------
    def extended(
        self,
        batch: Iterable[Iterable[Item]],
        object_ids: Sequence[Any] | None = None,
        name: str | None = None,
    ) -> "TransactionDatabase":
        """Return a new context with the *batch* transactions appended.

        The result shares this context's relation as its row prefix: the
        old items keep their column positions (items new to the universe
        are appended after them in canonical sorted order) and the old
        objects keep their row positions, so every packed per-item cover
        of the old context is a bit-prefix of the extended one.  Engines
        already instantiated on this context are carried over through
        :meth:`~repro.engine.ClosureEngine.extended`, which splices the
        appended rows into the warm packed views instead of rebuilding
        them.  This context itself is never mutated.

        Note the column-order difference from re-parsing: a context built
        fresh from the concatenated transactions sorts its whole universe,
        while an extended context keeps old-items-first.  Mined artifacts
        (families, generators, order core, bases) are independent of the
        column order, so oracle comparisons against a fresh mine still
        hold; only raw matrix layouts differ.

        Parameters
        ----------
        batch:
            Iterable of transactions to append; each is an iterable of
            items.  May be empty (the result is then an identical copy
            sharing this context's arrays).
        object_ids:
            Optional identifiers for the appended objects; defaults to
            ``n_objects .. n_objects + len(batch) - 1``.
        name:
            Name of the extended context; defaults to this context's name.
        """
        rows = [frozenset(t) for t in batch]
        new_items: set = set()
        for row in rows:
            new_items.update(row)
        new_items.difference_update(self._items)
        try:
            appended_items = sorted(new_items)
        except TypeError:
            appended_items = sorted(new_items, key=repr)

        clone = TransactionDatabase.__new__(TransactionDatabase)
        clone._name = name or self._name
        clone._items = self._items + tuple(appended_items)
        clone._item_index = {item: i for i, item in enumerate(clone._items)}

        if object_ids is not None:
            object_ids = list(object_ids)
            if len(object_ids) != len(rows):
                raise InvalidParameterError(
                    f"got {len(object_ids)} object ids for {len(rows)} "
                    "appended transactions"
                )
            clone._object_ids = self._object_ids + tuple(object_ids)
        else:
            clone._object_ids = self._object_ids + tuple(
                range(self.n_objects, self.n_objects + len(rows))
            )

        n_old, m_old = self._matrix.shape
        matrix = np.zeros((n_old + len(rows), len(clone._items)), dtype=bool)
        matrix[:n_old, :m_old] = self._matrix
        for r, row in enumerate(rows):
            for item in row:
                matrix[n_old + r, clone._item_index[item]] = True
        matrix.setflags(write=False)
        clone._matrix = matrix

        clone._row_itemsets = self._row_itemsets + tuple(
            Itemset(row) for row in rows
        )
        clone._default_engine = self._default_engine
        clone._engines = {
            backend: engine.extended(clone)
            for backend, engine in self._engines.items()
        }
        return clone

    # ------------------------------------------------------------------
    # Alternative constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[tuple[Any, Item]],
        name: str | None = None,
    ) -> "TransactionDatabase":
        """Build a database from explicit ``(object, item)`` relation pairs.

        This mirrors the formal definition of ``R ⊆ O × I`` most closely
        and is convenient when loading relational exports.
        """
        grouped: dict[Any, set] = {}
        order: list[Any] = []
        for obj, item in pairs:
            if obj not in grouped:
                grouped[obj] = set()
                order.append(obj)
            grouped[obj].add(item)
        return cls(
            (grouped[obj] for obj in order),
            object_ids=order,
            name=name,
        )

    @classmethod
    def from_binary_matrix(
        cls,
        matrix: np.ndarray,
        items: Sequence[Item] | None = None,
        name: str | None = None,
    ) -> "TransactionDatabase":
        """Build a database from a dense 0/1 matrix (objects × items)."""
        matrix = np.asarray(matrix, dtype=bool)
        if matrix.ndim != 2:
            raise InvalidParameterError("binary matrix must be two-dimensional")
        if items is None:
            items = [f"i{c}" for c in range(matrix.shape[1])]
        if len(items) != matrix.shape[1]:
            raise InvalidParameterError(
                f"got {len(items)} item labels for {matrix.shape[1]} columns"
            )
        transactions = [
            [items[c] for c in np.flatnonzero(matrix[r])] for r in range(matrix.shape[0])
        ]
        return cls(transactions, item_order=items, name=name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable dataset name (used in reports and benchmarks)."""
        return self._name

    @property
    def n_objects(self) -> int:
        """Number of objects (transactions) ``|O|``."""
        return len(self._row_itemsets)

    @property
    def n_items(self) -> int:
        """Number of items ``|I|`` in the universe."""
        return len(self._items)

    @property
    def items(self) -> tuple:
        """The item universe in canonical column order."""
        return self._items

    @property
    def object_ids(self) -> tuple:
        """Identifiers of the objects, aligned with row indices."""
        return self._object_ids

    @property
    def item_universe(self) -> Itemset:
        """The full item universe as an :class:`Itemset`."""
        return Itemset(self._items)

    @property
    def matrix(self) -> np.ndarray:
        """The dense boolean object × item matrix (read-only view).

        The array is write-locked; engines build their derived views from
        it without copying.  Use :meth:`to_binary_matrix` for a mutable
        copy.
        """
        return self._matrix

    # ------------------------------------------------------------------
    # Closure engines
    # ------------------------------------------------------------------
    @property
    def default_engine_name(self) -> str:
        """Name of the engine the single-itemset wrappers route through."""
        return self._default_engine

    def engine(self, name: str | None = None) -> "ClosureEngine":
        """Return the (lazily built, cached) closure engine *name*.

        ``None`` selects this database's default engine.  One engine — and
        therefore one closure cache and one set of derived views — is kept
        per backend per database, so repeated calls are cheap.
        """
        from ..engine import make_engine, resolve_engine_name

        resolved = resolve_engine_name(name or self._default_engine)
        engine = self._engines.get(resolved)
        if engine is None:
            engine = make_engine(self, resolved)
            self._engines[resolved] = engine
        return engine

    def clear_engine_caches(self) -> None:
        """Drop the closure caches of every instantiated engine.

        The derived views (packed covers, bitsets) are kept — they are a
        function of the immutable relation — but cached closures are
        forgotten.  Timing harnesses call this between runs so that no
        algorithm is measured against a cache warmed by a previous one.
        """
        for engine in self._engines.values():
            engine.cache_clear()

    def __len__(self) -> int:
        return self.n_objects

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._row_itemsets)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(name={self._name!r}, objects={self.n_objects}, "
            f"items={self.n_items})"
        )

    def transaction(self, index: int) -> Itemset:
        """Return the itemset of the object at row *index*."""
        return self._row_itemsets[index]

    def transactions(self) -> tuple[Itemset, ...]:
        """Return all transactions as a tuple of itemsets."""
        return self._row_itemsets

    def relation_pairs(self) -> Iterator[tuple[Any, Item]]:
        """Yield the relation ``R`` as explicit ``(object id, item)`` pairs."""
        for row, oid in zip(self._row_itemsets, self._object_ids):
            for item in row:
                yield (oid, item)

    # ------------------------------------------------------------------
    # Dataset statistics
    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fraction of cells of the object × item matrix that are related."""
        if self.n_objects == 0 or self.n_items == 0:
            return 0.0
        return float(self._matrix.sum()) / (self.n_objects * self.n_items)

    @property
    def avg_transaction_size(self) -> float:
        """Mean number of items per object."""
        if self.n_objects == 0:
            return 0.0
        return float(self._matrix.sum()) / self.n_objects

    @property
    def max_transaction_size(self) -> int:
        """Largest number of items held by a single object."""
        if self.n_objects == 0:
            return 0
        return int(self._matrix.sum(axis=1).max())

    def item_support_counts(self) -> dict:
        """Return a mapping ``item -> absolute support`` for every item."""
        counts = self._matrix.sum(axis=0)
        return {item: int(counts[i]) for i, item in enumerate(self._items)}

    # ------------------------------------------------------------------
    # Galois connection primitives
    # ------------------------------------------------------------------
    def item_columns(self, items: Itemset | Iterable[Item]) -> list[int]:
        """Map *items* to matrix column indices, validating membership.

        The single home of the item-membership check; the engines route
        their candidate encoding through it.
        """
        itemset = Itemset.coerce(items)
        cols = []
        for item in itemset:
            index = self._item_index.get(item)
            if index is None:
                raise InvalidItemsetError(
                    f"item {item!r} does not belong to the context {self._name!r}"
                )
            cols.append(index)
        return cols

    def cover_bits(self, items: Itemset | Iterable[Item]) -> int:
        """Return the cover of *items* as an integer bitset over objects.

        Bit ``t`` is set iff object ``t`` contains every item of *items*.
        The cover of the empty itemset is the whole object set.  Delegates
        to the bitset engine, which owns the per-item tidsets.
        """
        return self.engine("bitset").cover_bits(items)

    def cover_mask(self, items: Itemset | Iterable[Item]) -> np.ndarray:
        """Return the cover of *items* as a boolean mask over object rows.

        Vectorised twin of :meth:`cover_bits`; the dense miners (Close,
        A-Close) use it because computing a closure needs the whole mask
        anyway.
        """
        cols = self.item_columns(items)
        if not cols:
            return np.ones(self.n_objects, dtype=bool)
        if len(cols) == 1:
            return self._matrix[:, cols[0]].copy()
        return self._matrix[:, cols].all(axis=1)

    def cover(self, items: Itemset | Iterable[Item]) -> frozenset[int]:
        """Return ``g(items)``: the row indices of objects containing *items*."""
        return self.engine().extent(items)

    def common_items(self, objects: Iterable[int]) -> Itemset:
        """Return ``f(objects)``: the items shared by every listed object.

        By convention ``f(∅)`` is the full item universe (the top of the
        Galois connection), as in formal concept analysis.
        """
        rows = list(objects)
        if not rows:
            return self.item_universe
        mask = self._matrix[rows].all(axis=0)
        return Itemset(self._items[i] for i in np.flatnonzero(mask))

    def closure(self, items: Itemset | Iterable[Item]) -> Itemset:
        """Return ``h(items) = f(g(items))`` — the Galois closure of *items*.

        For an itemset contained in at least one object this is the maximal
        itemset shared by all objects containing it (the intersection of
        those objects).  For an itemset contained in no object the closure
        is the full item universe, the standard FCA convention.
        """
        return self.engine().closure(items)

    def closure_and_support(
        self, items: Itemset | Iterable[Item]
    ) -> tuple[Itemset, int]:
        """Return ``(h(items), support_count(items))`` with a single cover pass."""
        return self.engine().closure_and_support(items)

    def is_closed(self, items: Itemset | Iterable[Item]) -> bool:
        """Return ``True`` iff *items* equals its own closure."""
        itemset = Itemset.coerce(items)
        return self.closure(itemset) == itemset

    # ------------------------------------------------------------------
    # Batch operations (thin forwards to the default engine)
    # ------------------------------------------------------------------
    def closures(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[Itemset]:
        """Return ``h(X)`` for every candidate in one vectorised pass."""
        return self.engine().closures(itemsets)

    def supports(self, itemsets: Iterable[Itemset | Iterable[Item]]) -> list[int]:
        """Return the absolute support of every candidate in one pass."""
        return self.engine().supports(itemsets)

    def extents(
        self, itemsets: Iterable[Itemset | Iterable[Item]]
    ) -> list[frozenset[int]]:
        """Return ``g(X)`` for every candidate in one pass."""
        return self.engine().extents(itemsets)

    # ------------------------------------------------------------------
    # Support
    # ------------------------------------------------------------------
    def support_count(self, items: Itemset | Iterable[Item]) -> int:
        """Return the absolute support (number of covering objects)."""
        return self.engine().support_count(items)

    def support(self, items: Itemset | Iterable[Item]) -> float:
        """Return the relative support ``support_count / |O|``."""
        if self.n_objects == 0:
            raise EmptyDatabaseError("support is undefined on an empty database")
        return self.support_count(items) / self.n_objects

    def minsup_count(self, minsup: float) -> int:
        """Translate a relative *minsup* threshold into an absolute count.

        The returned count is the smallest integer ``c`` such that
        ``c / |O| >= minsup``; an itemset is frequent iff its absolute
        support is ``>= c``.  A relative threshold of ``0`` maps to count
        ``1`` so that "frequent" always means "occurs at least once".
        """
        if not 0.0 <= minsup <= 1.0:
            raise InvalidParameterError(f"minsup must lie in [0, 1], got {minsup}")
        if self.n_objects == 0:
            raise EmptyDatabaseError("minsup is undefined on an empty database")
        count = int(np.ceil(minsup * self.n_objects))
        return max(count, 1)

    # ------------------------------------------------------------------
    # Vertical view & item pruning
    # ------------------------------------------------------------------
    def vertical(self) -> dict:
        """Return the vertical representation: ``item -> frozenset of tids``."""
        return {
            item: frozenset(iter_bits(bits))
            for item, bits in self.vertical_bits().items()
        }

    def vertical_bits(self) -> dict:
        """Return the vertical representation as ``item -> integer bitset``."""
        return self.engine("bitset").item_bits()

    def to_binary_matrix(self) -> np.ndarray:
        """Return a copy of the dense boolean object × item matrix."""
        return self._matrix.copy()

    def restrict_to_items(self, items: Itemset | Iterable[Item]) -> "TransactionDatabase":
        """Return a new database keeping only the given items.

        Objects are all kept (possibly becoming empty transactions) so that
        relative supports stay comparable with the original database.
        """
        keep = Itemset.coerce(items)
        unknown = keep.difference(self._items)
        if unknown:
            raise InvalidItemsetError(f"unknown items: {sorted(map(repr, unknown))}")
        keep_set = keep.as_frozenset()
        order = [item for item in self._items if item in keep_set]
        return TransactionDatabase(
            (row.intersection(keep_set).as_frozenset() for row in self._row_itemsets),
            item_order=order,
            object_ids=self._object_ids,
            name=self._name,
            engine=self._default_engine,
        )

    def restrict_to_frequent_items(self, minsup: float) -> "TransactionDatabase":
        """Return a new database keeping only items frequent at *minsup*.

        Pruning infrequent items never changes the frequent (closed)
        itemsets above the same threshold and is the standard first step of
        every level-wise miner.
        """
        threshold = self.minsup_count(minsup)
        counts = self.item_support_counts()
        frequent = [item for item in self._items if counts[item] >= threshold]
        return self.restrict_to_items(frequent)
