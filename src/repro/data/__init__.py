"""Data substrate: mining contexts, dataset I/O and synthetic generators."""

from .benchmarks_data import (
    dense_benchmark_suite,
    make_c20d10k,
    make_c73d10k,
    make_categorical_dataset,
    make_census,
    make_mushroom,
)
from .context import TransactionDatabase
from .io import (
    load_basket_file,
    load_tabular_file,
    parse_basket_lines,
    save_basket_file,
    save_tabular_file,
)
from .sampling import bootstrap_objects, sample_objects, split_objects
from .synthetic import QuestGenerator, make_quest_dataset

__all__ = [
    "TransactionDatabase",
    "load_basket_file",
    "save_basket_file",
    "load_tabular_file",
    "save_tabular_file",
    "parse_basket_lines",
    "QuestGenerator",
    "make_quest_dataset",
    "make_categorical_dataset",
    "make_mushroom",
    "make_census",
    "make_c20d10k",
    "make_c73d10k",
    "dense_benchmark_suite",
    "sample_objects",
    "split_objects",
    "bootstrap_objects",
]
