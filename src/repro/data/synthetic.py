"""IBM Quest-style synthetic transaction generator.

The sparse datasets of the evaluation (T10I4D100K, T20I6D100K, ...) were
produced with the IBM Almaden *Quest* generator, which is no longer
distributable.  :class:`QuestGenerator` re-implements its published
procedure (Agrawal & Srikant, VLDB 1994, §4.1):

1. draw a pool of *potentially frequent itemsets* ("patterns"); the size
   of each pattern is Poisson-distributed around ``avg_pattern_size``, and
   successive patterns share a fraction of their items (governed by
   ``correlation``) so that frequent itemsets overlap as in real data;
2. assign each pattern a weight (exponentially distributed, normalised to
   sum to one) and a *corruption level*: when a pattern is inserted into a
   transaction, each of its items is dropped with that probability, so
   that supersets are systematically rarer than their subsets;
3. build each transaction by drawing its size from a Poisson distribution
   around ``avg_transaction_size`` and packing weighted, corrupted
   patterns into it until the size is reached.

The naming convention follows the original: ``T`` is the average
transaction size, ``I`` the average size of the potential itemsets and
``D`` the number of transactions — e.g. ``T10I4D100K``.  The benchmark
configuration scales ``D`` down (10K–25K) so that the full experiment grid
runs on a laptop, as announced in DESIGN.md; the generative process, and
therefore the sparse/weakly-correlated *shape* of the data, is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .context import TransactionDatabase

__all__ = [
    "QuestGenerator",
    "make_quest_dataset",
    "make_star_closed_family",
    "make_rule_dense_context",
    "make_rule_dense_family",
    "rule_dense_expected_counts",
]


class QuestGenerator:
    """Re-implementation of the IBM Quest synthetic transaction generator.

    Parameters
    ----------
    n_items:
        Size of the item universe (``N`` in the original paper; 1 000 by
        default, against 10 000 originally, to keep scaled-down runs dense
        enough to contain frequent itemsets at the benchmark thresholds).
    n_patterns:
        Number of potentially frequent itemsets (``|L|``; 2 000 originally,
        200 by default at the reduced scale).
    avg_pattern_size:
        Average size ``I`` of the potential itemsets.
    avg_transaction_size:
        Average transaction size ``T``.
    correlation:
        Fraction of items a pattern inherits from the previous pattern
        (0.5 in the original generator).
    corruption_mean:
        Mean of the per-pattern corruption level (0.5 originally).
    seed:
        Seed of the underlying pseudo-random generator; every dataset used
        by tests and benchmarks fixes it for reproducibility.
    """

    def __init__(
        self,
        n_items: int = 1000,
        n_patterns: int = 200,
        avg_pattern_size: float = 4.0,
        avg_transaction_size: float = 10.0,
        correlation: float = 0.5,
        corruption_mean: float = 0.5,
        seed: int = 7,
    ) -> None:
        if n_items <= 0 or n_patterns <= 0:
            raise InvalidParameterError("n_items and n_patterns must be positive")
        if avg_pattern_size <= 0 or avg_transaction_size <= 0:
            raise InvalidParameterError("average sizes must be positive")
        if not 0.0 <= correlation <= 1.0:
            raise InvalidParameterError("correlation must lie in [0, 1]")
        if not 0.0 <= corruption_mean < 1.0:
            raise InvalidParameterError("corruption_mean must lie in [0, 1)")
        self._n_items = n_items
        self._n_patterns = n_patterns
        self._avg_pattern_size = avg_pattern_size
        self._avg_transaction_size = avg_transaction_size
        self._correlation = correlation
        self._corruption_mean = corruption_mean
        self._seed = seed

    # ------------------------------------------------------------------
    # Pattern pool
    # ------------------------------------------------------------------
    def _build_patterns(
        self, rng: np.random.Generator
    ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
        """Draw the pool of potentially frequent itemsets.

        Returns the patterns (arrays of item ids), their normalised
        weights and their corruption levels.
        """
        # Item popularity is skewed (exponential), as in the original tool,
        # so that some items are much more frequent than others.
        item_weights = rng.exponential(scale=1.0, size=self._n_items)
        item_weights /= item_weights.sum()

        patterns: list[np.ndarray] = []
        previous: np.ndarray | None = None
        for _ in range(self._n_patterns):
            size = max(1, int(rng.poisson(self._avg_pattern_size)))
            size = min(size, self._n_items)
            chosen: list[int] = []
            if previous is not None and len(previous) > 0:
                n_inherited = int(round(self._correlation * size))
                n_inherited = min(n_inherited, len(previous))
                if n_inherited > 0:
                    chosen.extend(
                        rng.choice(previous, size=n_inherited, replace=False).tolist()
                    )
            while len(chosen) < size:
                item = int(rng.choice(self._n_items, p=item_weights))
                if item not in chosen:
                    chosen.append(item)
            pattern = np.array(sorted(chosen), dtype=np.int64)
            patterns.append(pattern)
            previous = pattern

        weights = rng.exponential(scale=1.0, size=self._n_patterns)
        weights /= weights.sum()
        corruption = np.clip(
            rng.normal(self._corruption_mean, 0.1, size=self._n_patterns), 0.0, 0.95
        )
        return patterns, weights, corruption

    # ------------------------------------------------------------------
    # Transaction generation
    # ------------------------------------------------------------------
    def generate(self, n_transactions: int, name: str | None = None) -> TransactionDatabase:
        """Generate *n_transactions* transactions and return them as a database."""
        if n_transactions <= 0:
            raise InvalidParameterError("n_transactions must be positive")
        rng = np.random.default_rng(self._seed)
        patterns, weights, corruption = self._build_patterns(rng)

        transactions: list[list[str]] = []
        for _ in range(n_transactions):
            target_size = max(1, int(rng.poisson(self._avg_transaction_size)))
            contents: set[int] = set()
            attempts = 0
            while len(contents) < target_size and attempts < 4 * target_size:
                attempts += 1
                index = int(rng.choice(self._n_patterns, p=weights))
                pattern = patterns[index]
                keep = rng.random(len(pattern)) >= corruption[index]
                kept_items = pattern[keep]
                if len(kept_items) == 0:
                    continue
                # The original generator drops a pattern half of the time if
                # it would overflow the transaction; we mimic that behaviour.
                if len(contents) + len(kept_items) > target_size and rng.random() < 0.5:
                    continue
                contents.update(int(i) for i in kept_items)
            if not contents:
                contents.add(int(rng.choice(self._n_items, p=None)))
            transactions.append([f"i{item}" for item in sorted(contents)])

        label = name or self.default_name(n_transactions)
        return TransactionDatabase(transactions, name=label)

    def default_name(self, n_transactions: int) -> str:
        """Return the ``T..I..D..`` style name of a generated dataset."""
        thousands = n_transactions / 1000.0
        if thousands >= 1 and float(thousands).is_integer():
            count = f"{int(thousands)}K"
        else:
            count = str(n_transactions)
        return (
            f"T{int(round(self._avg_transaction_size))}"
            f"I{int(round(self._avg_pattern_size))}"
            f"D{count}"
        )


def make_quest_dataset(
    avg_transaction_size: float = 10.0,
    avg_pattern_size: float = 4.0,
    n_transactions: int = 10_000,
    n_items: int = 1000,
    n_patterns: int = 200,
    seed: int = 7,
    name: str | None = None,
) -> TransactionDatabase:
    """One-call helper building a Quest-style dataset with sensible defaults.

    ``make_quest_dataset(10, 4, 10_000)`` is the scaled-down analogue of
    the paper's T10I4D100K; ``make_quest_dataset(20, 6, 10_000)`` of
    T20I6D100K.
    """
    generator = QuestGenerator(
        n_items=n_items,
        n_patterns=n_patterns,
        avg_pattern_size=avg_pattern_size,
        avg_transaction_size=avg_transaction_size,
        seed=seed,
    )
    return generator.generate(n_transactions, name=name)


def make_star_closed_family(
    n_members: int = 50_002,
    n_objects: int = 1_000,
    mid_support: int = 5,
    top_support: int = 1,
) -> "ClosedItemsetFamily":
    """A synthetic closed family whose lattice shape is known analytically.

    The family is a three-level "star": one bottom closure ``{0}``
    (present in every object), ``n_members - 2`` pairwise-incomparable
    middle sets ``{0, a, b}`` (size-3 sets are never subsets of each
    other), and one top set containing the whole universe.  Its Hasse
    diagram is therefore exactly bottom → each middle → top, i.e.
    ``2 * (n_members - 2)`` edges — which makes the generator the right
    probe for the large-``n`` lattice order cores: arbitrarily many
    closed itemsets with a structure a test can assert edge-for-edge,
    without mining a context of that size first.

    Used by the packed-strategy acceptance test (50k+ nodes must load
    without a dense ``n x n`` matrix) and by the
    ``test_engine_lattice_packed_large`` microbenchmark.
    """
    from ..core.families import ClosedItemsetFamily
    from ..core.itemset import Itemset

    if n_members < 3:
        raise InvalidParameterError(
            f"a star family needs at least 3 members, got {n_members}"
        )
    n_mids = n_members - 2
    # Smallest universe 1..m with enough unordered pairs for the middles;
    # at least 3 so the top set {0..m} is a strict superset of every
    # middle (m = 2 would make the only middle {0, 1, 2} collide with it).
    m = 3
    while m * (m - 1) // 2 < n_mids:
        m += 1
    supports: dict["Itemset", int] = {Itemset((0,)): n_objects}
    count = 0
    for first in range(1, m + 1):
        for second in range(first + 1, m + 1):
            supports[Itemset((0, first, second))] = mid_support
            count += 1
            if count == n_mids:
                break
        if count == n_mids:
            break
    supports[Itemset(range(m + 1))] = top_support
    return ClosedItemsetFamily(
        supports, n_objects=n_objects, minsup_count=top_support
    )


def _rule_dense_level_items(level: int, multiplicity: int) -> list[str]:
    """The clone items of one chain level (zero-padded for stable order)."""
    return [f"c{level:04d}_{clone}" for clone in range(multiplicity)]


def make_rule_dense_context(
    chain_length: int = 250,
    generator_multiplicity: int = 2,
) -> TransactionDatabase:
    """A context whose rule bases are huge but analytically known.

    The transactions realise a *clone chain*: level ``j`` (``1..L``)
    contributes ``generator_multiplicity`` perfectly correlated clone
    items, and transaction ``t_j`` contains every item of levels
    ``1..j``; one extra transaction holds a single unrelated item so
    that no item is universal (``h(∅) = ∅``).  The frequent closed
    itemsets at ``minsup_count = 1`` are then exactly the ``L`` chain
    prefixes plus the singleton ``{solo}``, each prefix having one
    minimal generator per clone — which makes the rule bases explode
    combinatorially while mining stays trivial:

    * full Luxenburger basis (``minconf = 0``): ``L·(L-1)/2`` rules,
    * full informative basis: ``g·L·(L-1)/2`` rules,
    * generic basis: ``g·L`` rules (``g ≥ 2``),

    so the defaults give ~10⁵ informative+Luxenburger rules and
    ``chain_length = 1000`` ~1.5·10⁶ (see
    :func:`rule_dense_expected_counts`).  This is the workload of the
    rule-materialisation microbenchmark and of the array-vs-object
    equivalence tests; :func:`make_rule_dense_family` builds the same
    closed/generator families directly, without mining.
    """
    if chain_length < 2:
        raise InvalidParameterError("chain_length must be at least 2")
    if generator_multiplicity < 1:
        raise InvalidParameterError("generator_multiplicity must be at least 1")
    transactions: list[list[str]] = [["solo"]]
    prefix: list[str] = []
    for level in range(1, chain_length + 1):
        prefix = prefix + _rule_dense_level_items(level, generator_multiplicity)
        transactions.append(list(prefix))
    name = f"rule-dense-L{chain_length}-g{generator_multiplicity}"
    return TransactionDatabase(transactions, name=name)


def make_rule_dense_family(
    chain_length: int = 250,
    generator_multiplicity: int = 2,
) -> tuple["ClosedItemsetFamily", "GeneratorFamily"]:
    """The closed family and minimal generators of the clone-chain context.

    Built directly from the analytic structure (no mining): prefix ``j``
    has support ``L - j + 1`` and one minimal generator per clone of its
    last level; the ``{solo}`` singleton has support 1 and is its own
    generator.  Equality with the mined families is asserted by the
    data-generator tests, so benchmarks can skip the (slower) mining
    step without drifting from the real pipeline.
    """
    from ..core.families import ClosedItemsetFamily
    from ..core.generators import GeneratorFamily
    from ..core.itemset import Itemset

    if chain_length < 2:
        raise InvalidParameterError("chain_length must be at least 2")
    if generator_multiplicity < 1:
        raise InvalidParameterError("generator_multiplicity must be at least 1")
    n_objects = chain_length + 1
    supports: dict[Itemset, int] = {Itemset(["solo"]): 1}
    generators_by_closure: dict[Itemset, list[Itemset]] = {
        Itemset(["solo"]): [Itemset(["solo"])]
    }
    prefix: list[str] = []
    for level in range(1, chain_length + 1):
        level_items = _rule_dense_level_items(level, generator_multiplicity)
        prefix = prefix + level_items
        closed = Itemset(prefix)
        supports[closed] = chain_length - level + 1
        generators_by_closure[closed] = [Itemset([item]) for item in level_items]
    family = ClosedItemsetFamily(supports, n_objects=n_objects, minsup_count=1)
    return family, GeneratorFamily(family, generators_by_closure)


def rule_dense_expected_counts(
    chain_length: int, generator_multiplicity: int
) -> dict[str, int]:
    """Closed-form basis sizes of the clone-chain context at ``minconf = 0``."""
    pairs = chain_length * (chain_length - 1) // 2
    return {
        "closed_itemsets": chain_length + 1,
        "luxenburger_full": pairs,
        "luxenburger_reduced": chain_length - 1,
        "informative_full": generator_multiplicity * pairs,
        "informative_reduced": generator_multiplicity * (chain_length - 1),
        "generic": generator_multiplicity * chain_length
        - (1 if generator_multiplicity == 1 else 0),
    }
