"""Sampling and splitting utilities for transaction databases.

These helpers keep the experiment harness honest about scale: the paper's
datasets are sampled down deterministically, and the sampling preserves
the relative supports the experiments depend on (uniform object sampling
is unbiased for itemset supports).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidParameterError
from .context import TransactionDatabase

__all__ = ["sample_objects", "split_objects", "bootstrap_objects"]


def sample_objects(
    database: TransactionDatabase,
    n_objects: int,
    seed: int = 0,
    name: str | None = None,
) -> TransactionDatabase:
    """Return a uniform random sample of *n_objects* objects (without replacement).

    Sampling objects uniformly keeps every itemset's relative support an
    unbiased estimate of its support in the full database, which is why
    scaled-down experiment grids remain comparable in shape.
    """
    if n_objects <= 0:
        raise InvalidParameterError("n_objects must be positive")
    if n_objects >= database.n_objects:
        if name is None or name == database.name:
            return database
        return TransactionDatabase(
            (row.as_frozenset() for row in database),
            item_order=database.items,
            object_ids=database.object_ids,
            name=name,
        )
    rng = np.random.default_rng(seed)
    chosen = np.sort(rng.choice(database.n_objects, size=n_objects, replace=False))
    transactions = [database.transaction(int(i)).as_frozenset() for i in chosen]
    ids = [database.object_ids[int(i)] for i in chosen]
    return TransactionDatabase(
        transactions,
        item_order=database.items,
        object_ids=ids,
        name=name or f"{database.name}[sample{n_objects}]",
    )


def split_objects(
    database: TransactionDatabase, fraction: float, seed: int = 0
) -> tuple[TransactionDatabase, TransactionDatabase]:
    """Split the objects into two disjoint databases (``fraction``, ``1 - fraction``).

    Raises
    ------
    InvalidParameterError
        When the database is too small for both sides to be non-empty
        (the rounded cut would leave one side with zero objects, e.g.
        ``n=1`` at any fraction, or ``n=2`` at ``fraction=0.1``).
    """
    if not 0.0 < fraction < 1.0:
        raise InvalidParameterError("fraction must lie strictly between 0 and 1")
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(database.n_objects)
    cut = int(round(fraction * database.n_objects))
    if cut == 0 or cut == database.n_objects:
        raise InvalidParameterError(
            f"cannot split {database.n_objects} objects at fraction {fraction}: "
            "one side would be empty"
        )
    first_rows = np.sort(permutation[:cut])
    second_rows = np.sort(permutation[cut:])

    def build(rows: np.ndarray, suffix: str) -> TransactionDatabase:
        return TransactionDatabase(
            (database.transaction(int(i)).as_frozenset() for i in rows),
            item_order=database.items,
            object_ids=[database.object_ids[int(i)] for i in rows],
            name=f"{database.name}[{suffix}]",
        )

    return build(first_rows, "splitA"), build(second_rows, "splitB")


def bootstrap_objects(
    database: TransactionDatabase, n_objects: int | None = None, seed: int = 0
) -> TransactionDatabase:
    """Return a bootstrap resample (with replacement) of the objects.

    Used by the robustness example to show how stable the basis sizes are
    under resampling of the data.
    """
    size = database.n_objects if n_objects is None else n_objects
    if size <= 0:
        raise InvalidParameterError("n_objects must be positive")
    rng = np.random.default_rng(seed)
    chosen = rng.integers(0, database.n_objects, size=size)
    return TransactionDatabase(
        (database.transaction(int(i)).as_frozenset() for i in chosen),
        item_order=database.items,
        name=f"{database.name}[bootstrap{size}]",
    )
