"""Reading and writing transaction datasets.

Two plain-text formats cover everything the experiments need:

* **basket format** — one transaction per line, items separated by
  whitespace (the format used by the FIMI repository and by most
  association-rule tools);
* **tabular format** — one object per line, ``attribute=value`` tokens
  separated by a configurable delimiter; each token becomes one item,
  which is how categorical datasets such as MUSHROOM or the census
  extracts are usually itemised.

Both loaders return a :class:`~repro.data.context.TransactionDatabase`;
both writers round-trip with their loader (verified by tests).

For binary persistence there is a third pair,
:func:`save_database_store` / :func:`load_database_store`: the context
section of the versioned :mod:`repro.store` NPZ container (CSR relation
plus the item universe as native arrays).  Unlike the text formats it
preserves the exact item order and loads without re-parsing text; it is
the same container format ``repro save`` writes, so one loader serves
both dataset-only and full-run stores.  (Containers are written whole —
there is no in-place append; re-save to add mined sections.)
"""

from __future__ import annotations

import io
from pathlib import Path
from collections.abc import Iterable, Iterator

from ..errors import DatasetFormatError
from ..ioutils import atomic_write
from .context import TransactionDatabase

__all__ = [
    "load_basket_file",
    "save_basket_file",
    "load_tabular_file",
    "save_tabular_file",
    "save_database_store",
    "load_database_store",
    "parse_basket_lines",
]


def parse_basket_lines(
    lines: Iterable[str], comment_prefix: str = "#"
) -> Iterator[list[str]]:
    """Parse basket-format lines into lists of item tokens.

    Blank lines and lines starting with *comment_prefix* are skipped;
    remaining lines are split on whitespace.
    """
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith(comment_prefix):
            continue
        yield stripped.split()


def load_basket_file(
    path: str | Path, name: str | None = None, comment_prefix: str = "#"
) -> TransactionDatabase:
    """Load a basket-format file into a :class:`TransactionDatabase`.

    Parameters
    ----------
    path:
        File with one whitespace-separated transaction per line.
    name:
        Dataset name; defaults to the file stem.
    comment_prefix:
        Lines starting with this prefix are ignored.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetFormatError(f"dataset file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        transactions = list(parse_basket_lines(handle, comment_prefix=comment_prefix))
    if not transactions:
        raise DatasetFormatError(f"no transactions found in {path}")
    return TransactionDatabase(transactions, name=name or path.stem)


def save_basket_file(database: TransactionDatabase, path: str | Path) -> None:
    """Write a database in basket format (one transaction per line).

    The write is crash-safe: the file appears whole under its final
    name or not at all (temp file, fsync, atomic rename).
    """
    path = Path(path)
    with atomic_write(path, "w", encoding="utf-8") as handle:
        for transaction in database:
            handle.write(" ".join(str(item) for item in transaction))
            handle.write("\n")


def save_database_store(database: TransactionDatabase, path: str | Path) -> Path:
    """Write *database* as the context section of a store container.

    The binary companion of :func:`save_basket_file`: the relation goes
    out as CSR arrays with the item universe in its exact column order,
    inside the same versioned NPZ format ``repro save`` produces (so a
    dataset-only store is a valid artifact-store container; containers
    are always written whole, never appended to in place).
    """
    from ..store import save_run

    return save_run(path, database=database)


def load_database_store(path: str | Path) -> TransactionDatabase:
    """Load the context section of a store container written by any saver.

    Accepts both dataset-only stores (:func:`save_database_store`) and
    full run stores (``repro save``); raises
    :class:`~repro.errors.StoreFormatError` when the container has no
    context section.
    """
    from ..store import load_run

    return load_run(path, sections=("context",)).require("context")


def load_tabular_file(
    path: str | Path,
    delimiter: str = ",",
    attribute_names: list[str] | None = None,
    name: str | None = None,
) -> TransactionDatabase:
    """Load a delimited categorical file, itemising each ``attribute=value``.

    Every line must carry the same number of fields.  Field ``j`` of a line
    becomes the item ``"<attribute_j>=<value>"``; with the default
    attribute names that is ``"a0=x"``, ``"a1=y"`` and so on.  Missing
    values (empty fields or ``"?"``) produce no item, mimicking the usual
    treatment of the UCI categorical datasets.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetFormatError(f"dataset file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        return _parse_tabular(handle, delimiter, attribute_names, name or path.stem)


def _parse_tabular(
    handle: io.TextIOBase,
    delimiter: str,
    attribute_names: list[str] | None,
    name: str,
) -> TransactionDatabase:
    transactions: list[list[str]] = []
    expected_width: int | None = None
    for line_number, line in enumerate(handle, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split(delimiter)
        if expected_width is None:
            expected_width = len(fields)
            if attribute_names is None:
                attribute_names = [f"a{j}" for j in range(expected_width)]
            elif len(attribute_names) != expected_width:
                raise DatasetFormatError(
                    f"{len(attribute_names)} attribute names given for "
                    f"{expected_width} columns"
                )
        elif len(fields) != expected_width:
            raise DatasetFormatError(
                f"line {line_number} has {len(fields)} fields, expected {expected_width}"
            )
        transaction = [
            f"{attribute_names[j]}={value.strip()}"
            for j, value in enumerate(fields)
            if value.strip() not in ("", "?")
        ]
        transactions.append(transaction)
    if not transactions:
        raise DatasetFormatError("no rows found in tabular dataset")
    return TransactionDatabase(transactions, name=name)


def save_tabular_file(
    database: TransactionDatabase, path: str | Path, delimiter: str = ","
) -> None:
    """Write a database of ``attribute=value`` items back to delimited text.

    Every item must be of the form ``attribute=value``; attributes become
    columns (ordered by first appearance in the item universe, which is a
    deterministic column order — transactions themselves are sets, so
    iterating them would reorder columns across runs), objects become
    lines, and objects lacking a value for some attribute get ``"?"`` in
    that column.
    """
    attributes: list[str] = []
    seen_attributes: set[str] = set()
    for item in database.items:
        text = str(item)
        if "=" not in text:
            raise DatasetFormatError(f"item {text!r} is not of the form attribute=value")
        attribute = text.split("=", 1)[0]
        if attribute not in seen_attributes:
            seen_attributes.add(attribute)
            attributes.append(attribute)
    rows: list[dict[str, str]] = []
    for transaction in database:
        row: dict[str, str] = {}
        for item in transaction:
            attribute, value = str(item).split("=", 1)
            row[attribute] = value
        rows.append(row)
    path = Path(path)
    with atomic_write(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(
                delimiter.join(row.get(attribute, "?") for attribute in attributes)
            )
            handle.write("\n")
