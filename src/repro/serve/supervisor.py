"""Fault-tolerant multi-process serving: fork-after-load supervision.

``repro serve --processes N`` boots one :class:`Supervisor` that loads
the store **once**, then forks ``N`` worker processes.  Fork-after-load
means every worker shares the packed numpy arrays of the loaded
snapshot copy-on-write — N workers cost roughly one store's worth of
resident memory, and no worker ever serves before a complete, verified
snapshot exists.

Connection distribution uses ``SO_REUSEPORT`` where the platform has it
(Linux kernels load-balance accepts across the workers' listening
sockets); the supervisor reserves the port up front by binding —
without listening — so the ephemeral ``--port 0`` case resolves to one
number every worker shares.  On platforms without ``SO_REUSEPORT`` the
supervisor falls back to a single pre-fork listening socket that every
worker inherits and accepts on.

Supervision semantics:

* a worker that exits (crash, ``os._exit`` via fault injection, OOM
  kill) is restarted after a jittered exponential backoff;
* too many restarts inside a sliding window (``--processes``-independent
  knobs ``REPRO_SUPERVISOR_MAX_RESTARTS`` /
  ``REPRO_SUPERVISOR_RESTART_WINDOW``) is a *crash loop*: the
  supervisor prints diagnostics, tears everything down and exits
  non-zero instead of flapping forever;
* ``SIGHUP`` to the supervisor fans out to every worker, each of which
  re-checks the store file and hot-reloads it (a corrupt replacement
  keeps the old generation serving, exactly like the single-process
  daemon);
* ``SIGTERM``/``SIGINT`` drain gracefully: workers stop accepting,
  finish in-flight requests, and anything still alive after the drain
  timeout (``REPRO_SERVE_DRAIN_TIMEOUT`` seconds) is killed hard.

Worker restarts are published through ``GET /metrics`` (key
``worker_restarts_total``) via a tiny shared anonymous mmap the
supervisor increments and every worker reads.

Determinism contract: served responses are byte-identical for any
``--processes`` / ``--workers`` combination — the process model only
changes *who* answers, never *what*.
"""

from __future__ import annotations

import errno
import http.client
import mmap
import os
import random
import signal
import socket
import struct
import sys
import threading
import time
from pathlib import Path

from ..testing.faults import get_injector
from .app import ServeApp
from .http import RuleServer

__all__ = ["Supervisor", "SharedCounter"]

#: Crash-loop threshold: this many restarts inside the window aborts.
DEFAULT_MAX_RESTARTS = 5
#: Sliding window (seconds) over which restarts count toward the loop.
DEFAULT_RESTART_WINDOW = 30.0
#: Seconds granted to in-flight requests on graceful shutdown.
DEFAULT_DRAIN_TIMEOUT = 10.0
#: First-restart backoff (seconds); doubles per recent crash, jittered.
DEFAULT_BACKOFF_BASE = 0.1
#: Backoff ceiling (seconds).
DEFAULT_BACKOFF_CAP = 5.0
#: Seconds between supervisor ``GET /healthz`` liveness probes.
DEFAULT_HEALTH_INTERVAL = 2.0

#: Exit code of a supervisor that detected a crash loop.
CRASH_LOOP_EXIT_CODE = 3


def _env_float(name: str, default: float) -> float:
    """Read a float knob from the environment, falling back on *default*."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        return default


def _request_parent_death_signal() -> None:
    """Ask the kernel to SIGTERM this worker if the supervisor dies.

    A supervisor lost to SIGKILL cannot drain its children; Linux's
    ``prctl(PR_SET_PDEATHSIG)`` closes that orphan-leak hole.  Best
    effort — on platforms without it workers simply outlive a
    hard-killed supervisor, which only plain kills (never the graceful
    paths) can cause.
    """
    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.prctl(1, signal.SIGTERM)  # 1 == PR_SET_PDEATHSIG
    except (OSError, AttributeError):  # pragma: no cover - non-Linux
        pass


class SharedCounter:
    """A monotonic counter in anonymous shared memory.

    Created before :func:`os.fork` so the supervisor (single writer)
    and every worker (readers) see the same 8 bytes; the aligned
    word-sized write makes torn reads a non-issue on the platforms the
    daemon targets.
    """

    def __init__(self) -> None:
        self._map = mmap.mmap(-1, 8)

    @property
    def value(self) -> int:
        """int: The current counter value."""
        return struct.unpack_from("<q", self._map, 0)[0]

    def increment(self) -> int:
        """Add one and return the new value (supervisor side only)."""
        value = self.value + 1
        struct.pack_into("<q", self._map, 0, value)
        return value


class Supervisor:
    """Load once, fork N serving workers, and keep them alive.

    Parameters
    ----------
    store_path : str or Path
        The NPZ store container to serve.
    host, port : str, int
        Address to serve on; port ``0`` picks an ephemeral port
        (resolved before forking, so every worker shares it — read it
        back from :attr:`port`).
    processes : int
        Number of worker processes to fork.
    app_kwargs : dict, optional
        Extra keyword arguments for :class:`ServeApp` (``cache_size``,
        ``watch``, ``workers``, ``verify``, ``request_timeout``,
        ``max_inflight``...).
    log_requests : bool
        Per-request stderr logging in the workers.
    socket_timeout : float, optional
        Per-connection socket timeout handed to :class:`RuleServer`.
    max_restarts, restart_window : int, float, optional
        Crash-loop threshold: more than *max_restarts* worker restarts
        within *restart_window* seconds aborts with exit code
        :data:`CRASH_LOOP_EXIT_CODE`.  Default from the
        ``REPRO_SUPERVISOR_MAX_RESTARTS`` /
        ``REPRO_SUPERVISOR_RESTART_WINDOW`` environment knobs.
    drain_timeout : float, optional
        Graceful-shutdown budget (``REPRO_SERVE_DRAIN_TIMEOUT``).
    health_interval : float
        Seconds between ``GET /healthz`` liveness probes (``0``
        disables probing).  Probe failures are logged; *restart* is
        driven by process exit, not probe failure, so a slow worker is
        never killed mid-request.

    Notes
    -----
    :meth:`run` blocks until shutdown and returns the process exit
    code; it must be called from the main thread of a process that owns
    its signal disposition (the ``repro serve`` CLI).
    """

    def __init__(
        self,
        store_path: str | Path,
        host: str = "127.0.0.1",
        port: int = 8000,
        processes: int = 2,
        app_kwargs: dict | None = None,
        log_requests: bool = False,
        socket_timeout: float | None = 30.0,
        max_restarts: int | None = None,
        restart_window: float | None = None,
        drain_timeout: float | None = None,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        self._store_path = Path(store_path)
        self._host = host
        self._requested_port = int(port)
        self._processes = int(processes)
        self._app_kwargs = dict(app_kwargs or {})
        self._log_requests = bool(log_requests)
        self._socket_timeout = socket_timeout
        self._max_restarts = int(
            max_restarts
            if max_restarts is not None
            else _env_float("REPRO_SUPERVISOR_MAX_RESTARTS", DEFAULT_MAX_RESTARTS)
        )
        self._restart_window = (
            restart_window
            if restart_window is not None
            else _env_float(
                "REPRO_SUPERVISOR_RESTART_WINDOW", DEFAULT_RESTART_WINDOW
            )
        )
        self._drain_timeout = (
            drain_timeout
            if drain_timeout is not None
            else _env_float("REPRO_SERVE_DRAIN_TIMEOUT", DEFAULT_DRAIN_TIMEOUT)
        )
        self._backoff_base = _env_float(
            "REPRO_SUPERVISOR_BACKOFF_BASE", DEFAULT_BACKOFF_BASE
        )
        self._health_interval = health_interval
        self._app: ServeApp | None = None
        self._listener: socket.socket | None = None
        self._reuse_port = hasattr(socket, "SO_REUSEPORT")
        self._port: int | None = None
        self._workers: dict[int, int] = {}  # pid -> worker index
        self._restart_times: list[float] = []
        self._recent_exits: list[str] = []
        self._counter = SharedCounter()
        self._stop = False
        self._hup = False

    @property
    def port(self) -> int | None:
        """int or None: The bound port (after :meth:`run` reserved it)."""
        return self._port

    # ------------------------------------------------------------------
    # Parent side
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Load, fork, supervise; block until shutdown.

        Returns
        -------
        int
            ``0`` after a graceful drain, :data:`CRASH_LOOP_EXIT_CODE`
            when a crash loop was detected.
        """
        self._app = ServeApp(self._store_path, **self._app_kwargs)
        self._bind()
        self._install_signals()
        for index in range(self._processes):
            self._workers[self._spawn(index)] = index
        self._announce()
        try:
            return self._supervise()
        finally:
            if self._listener is not None:
                self._listener.close()

    def _bind(self) -> None:
        """Reserve the serving port before forking.

        With ``SO_REUSEPORT`` the parent binds *without listening* —
        only listening sockets participate in kernel load balancing, so
        the bound-idle parent socket just pins the port number while
        each worker binds its own listening socket.  Without it, the
        parent creates the one listening socket every worker inherits.
        """
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self._reuse_port:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        listener.bind((self._host, self._requested_port))
        if not self._reuse_port:
            listener.listen(128)
        self._listener = listener
        self._port = listener.getsockname()[1]

    def _install_signals(self) -> None:
        """Route TERM/INT to graceful drain and HUP to reload fan-out."""
        signal.signal(signal.SIGTERM, self._on_stop_signal)
        signal.signal(signal.SIGINT, self._on_stop_signal)
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, self._on_hup_signal)

    def _on_stop_signal(self, signum, frame) -> None:
        """Flag graceful shutdown (handler-safe: just sets a flag)."""
        self._stop = True

    def _on_hup_signal(self, signum, frame) -> None:
        """Flag a reload fan-out (handler-safe: just sets a flag)."""
        self._hup = True

    def _announce(self) -> None:
        """Print the serving banner the smoke/bench parsers read."""
        assert self._app is not None
        loaded = self._app.loaded
        mode = "SO_REUSEPORT" if self._reuse_port else "shared listener"
        print(
            f"serving {loaded.name} ({self._store_path}) on "
            f"http://{self._host}:{self._port}"
        )
        print(
            f"  supervisor: {self._processes} worker processes ({mode}); "
            f"crash loop at >{self._max_restarts} restarts"
            f"/{self._restart_window:g}s"
        )
        sys.stdout.flush()

    def _supervise(self) -> int:
        """The reap/restart/probe loop; returns the exit code."""
        last_probe = time.monotonic()
        while not self._stop:
            if not self._reap():
                self._log("crash loop detected; shutting down")
                for line in self._recent_exits[-self._max_restarts :]:
                    self._log(f"  recent exit: {line}")
                self._shutdown()
                return CRASH_LOOP_EXIT_CODE
            if self._hup:
                self._hup = False
                self._signal_workers(signal.SIGHUP)
                self._log("SIGHUP fanned out to workers (store reload)")
            now = time.monotonic()
            if (
                self._health_interval
                and now - last_probe >= self._health_interval
            ):
                last_probe = now
                self._probe_health()
            time.sleep(0.05)
        self._shutdown()
        return 0

    def _reap(self) -> bool:
        """Collect dead workers and restart them.

        Returns
        -------
        bool
            ``False`` when the restart budget for the sliding window is
            exhausted (a crash loop), ``True`` otherwise.
        """
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return True
            except InterruptedError:  # pragma: no cover - EINTR race
                continue
            if pid == 0:
                return True
            index = self._workers.pop(pid, None)
            if index is None or self._stop:
                continue
            exitcode = os.waitstatus_to_exitcode(status)
            now = time.monotonic()
            self._restart_times = [
                t for t in self._restart_times
                if now - t < self._restart_window
            ] + [now]
            self._recent_exits.append(
                f"worker {index} (pid {pid}) exited with "
                f"{'signal ' if exitcode < 0 else 'code '}{abs(exitcode)}"
            )
            self._log(
                f"{self._recent_exits[-1]}; restart "
                f"{len(self._restart_times)}/{self._max_restarts} in window"
            )
            if len(self._restart_times) > self._max_restarts:
                return False
            self._backoff(len(self._restart_times))
            if self._stop:  # a drain signal arrived during backoff
                return True
            self._counter.increment()
            self._workers[self._spawn(index)] = index

    def _backoff(self, recent: int) -> None:
        """Sleep a jittered exponential delay, staying signal-responsive."""
        delay = min(
            DEFAULT_BACKOFF_CAP, self._backoff_base * (2 ** (recent - 1))
        ) * (0.5 + random.random())
        deadline = time.monotonic() + delay
        while not self._stop and time.monotonic() < deadline:
            time.sleep(min(0.05, delay))

    def _probe_health(self) -> None:
        """Probe ``GET /healthz`` once; log (never kill) on failure."""
        host = "127.0.0.1" if self._host in ("0.0.0.0", "") else self._host
        connection = http.client.HTTPConnection(host, self._port, timeout=2)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            response.read()
            if response.status != 200:
                self._log(f"health probe answered HTTP {response.status}")
        except (OSError, http.client.HTTPException) as exc:
            self._log(f"health probe failed: {exc!r}")
        finally:
            connection.close()

    def _signal_workers(self, signum: int) -> None:
        """Send *signum* to every live worker, ignoring already-dead ones."""
        for pid in list(self._workers):
            try:
                os.kill(pid, signum)
            except ProcessLookupError:
                pass

    def _shutdown(self) -> None:
        """Drain gracefully: TERM, bounded wait, then KILL stragglers."""
        self._stop = True
        self._signal_workers(signal.SIGTERM)
        deadline = time.monotonic() + self._drain_timeout
        while self._workers and time.monotonic() < deadline:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._workers.clear()
                break
            if pid:
                self._workers.pop(pid, None)
            else:
                time.sleep(0.02)
        if self._workers:
            self._log(
                f"{len(self._workers)} worker(s) still alive after "
                f"{self._drain_timeout:g}s drain; killing hard"
            )
            self._signal_workers(signal.SIGKILL)
            while self._workers:
                try:
                    pid, _status = os.waitpid(-1, 0)
                except ChildProcessError:
                    break
                self._workers.pop(pid, None)

    @staticmethod
    def _log(message: str) -> None:
        """Write one supervisor log line to stderr (flushed)."""
        print(f"supervisor: {message}", file=sys.stderr, flush=True)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _spawn(self, index: int) -> int:
        """Fork worker *index*; returns its pid (in the parent)."""
        pid = os.fork()
        if pid:
            return pid
        code = 1
        try:
            code = self._worker_main(index)
        except BaseException as exc:  # noqa: BLE001 - never unwind the fork
            print(
                f"worker {index}: fatal {exc!r}", file=sys.stderr, flush=True
            )
        finally:
            os._exit(code)
        return 0  # pragma: no cover - unreachable

    def _worker_main(self, index: int) -> int:
        """Serve until told to stop (runs in the forked child)."""
        assert self._app is not None and self._port is not None
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        _request_parent_death_signal()
        get_injector().fire("worker.start")
        app = self._app
        app._extra_metrics = lambda: {
            "worker": index,
            "worker_processes": self._processes,
            "worker_restarts_total": self._counter.value,
        }
        if self._reuse_port:
            # Each worker binds its own listening socket on the shared
            # port; the kernel balances accepts between them.
            if self._listener is not None:
                self._listener.close()
            server = RuleServer(
                (self._host, self._port),
                app,
                log_requests=self._log_requests,
                reuse_port=True,
                socket_timeout=self._socket_timeout,
            )
        else:
            server = RuleServer(
                (self._host, self._port),
                app,
                log_requests=self._log_requests,
                listen_socket=self._listener,
                socket_timeout=self._socket_timeout,
            )

        # Non-daemon handler threads: socketserver only *tracks* (and
        # thus joins in server_close) non-daemon threads, and a joined
        # in-flight request is the whole point of graceful drain.
        server.daemon_threads = False

        def _drain(signum, frame) -> None:
            # shutdown() blocks until serve_forever exits; calling it on
            # the signal frame of the serving thread would deadlock.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _drain)
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, lambda *_: app.request_reload())
        try:
            server.serve_forever(poll_interval=0.1)
        except OSError as exc:  # pragma: no cover - accept loop lost socket
            if exc.errno not in (errno.EBADF, errno.EINVAL):
                raise
        # block_on_close joins in-flight handler threads: the drain.
        server.server_close()
        return 0
