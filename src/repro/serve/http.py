"""The stdlib HTTP transport of the rule-serving daemon.

One thin layer over :class:`http.server.ThreadingHTTPServer`: each
request thread parses the URL/body, hands the parsed request to the
shared :class:`~repro.serve.app.ServeApp` and writes the JSON answer
back with a correct ``Content-Length`` (keep-alive friendly).  No
third-party web framework, no new runtime dependencies — the daemon
serves read-only queries over an immutable snapshot, which is exactly
the workload ``ThreadingHTTPServer`` handles well.

Use :func:`serve_in_thread` to embed a live daemon in tests, examples
and benchmarks; the ``repro serve`` CLI verb wraps :class:`RuleServer`
with SIGHUP-triggered reloads for foreground use.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..testing.faults import get_injector
from .app import ServeApp

__all__ = ["RuleServer", "serve_in_thread"]

#: Upper bound on accepted request bodies (``POST /derive`` payloads are
#: tiny; anything larger is rejected before being read into memory).
MAX_BODY_BYTES = 1 << 20


class RuleServer(ThreadingHTTPServer):
    """A threaded HTTP server bound to one :class:`ServeApp`.

    Parameters
    ----------
    address : tuple[str, int]
        ``(host, port)`` to bind; port ``0`` picks an ephemeral port
        (read it back from :attr:`server_address`).
    app : ServeApp
        The shared application answering every request.
    log_requests : bool
        Whether to emit the default per-request stderr log lines
        (silent by default — the daemon's own metrics endpoint is the
        observability surface).
    listen_socket : socket.socket, optional
        An already-listening socket to adopt instead of binding a new
        one.  Used by the supervisor's shared-listener fallback, where
        every forked worker accepts on the parent's socket.
    reuse_port : bool
        Bind with ``SO_REUSEPORT`` so several worker processes can each
        bind the same ``(host, port)`` and let the kernel load-balance
        incoming connections between them.  Ignored when
        *listen_socket* is given.
    socket_timeout : float, optional
        Per-connection socket timeout in seconds.  A client that stalls
        mid-request (slowloris-style) gets its connection closed after
        this long instead of pinning a handler thread forever.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        app: ServeApp,
        log_requests: bool = False,
        listen_socket: socket.socket | None = None,
        reuse_port: bool = False,
        socket_timeout: float | None = None,
    ) -> None:
        self.app = app
        self.log_requests = bool(log_requests)
        self.reuse_port = bool(reuse_port)
        self.socket_timeout = socket_timeout
        if listen_socket is not None:
            super().__init__(address, _RequestHandler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port
        else:
            super().__init__(address, _RequestHandler)

    def server_bind(self) -> None:
        """Bind the listening socket, with ``SO_REUSEPORT`` when asked."""
        if self.reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):  # pragma: no cover
                raise OSError("SO_REUSEPORT is not available on this platform")
            self.socket.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
            )
        super().server_bind()

    def get_request(self):
        """Accept one connection (the ``serve.accept`` fault seam).

        An injected (or real, transient) ``OSError`` here is swallowed
        by ``socketserver``'s ``_handle_request_noblock`` — the accept
        loop keeps running, which is exactly the robustness property
        the chaos suite pins.
        """
        get_injector().fire("serve.accept")
        return super().get_request()

    @property
    def url(self) -> str:
        """The base URL the server is reachable at."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _RequestHandler(BaseHTTPRequestHandler):
    """Per-request glue: parse, dispatch to the app, write JSON back."""

    server: RuleServer
    protocol_version = "HTTP/1.1"
    # The unbuffered wfile writes status line, headers and body as
    # separate segments; without TCP_NODELAY every keep-alive response
    # stalls ~40ms on Nagle vs delayed-ACK.
    disable_nagle_algorithm = True

    def setup(self) -> None:
        """Install the per-connection socket timeout before buffering."""
        if self.server.socket_timeout is not None:
            # BaseHTTPRequestHandler honours self.timeout by closing the
            # connection when a read blocks longer than this.
            self.timeout = self.server.socket_timeout
        super().setup()

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        """Dispatch a GET request."""
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 (http.server contract)
        """Dispatch a POST request."""
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        """Parse the request, run the app handler, write the response."""
        parsed = urlsplit(self.path)
        params = {
            key: values[-1]
            for key, values in parse_qs(
                parsed.query, keep_blank_values=True
            ).items()
        }
        body: bytes | None = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._write(413, {
                "error": {
                    "code": "payload_too_large",
                    "message": f"request body exceeds {MAX_BODY_BYTES} bytes",
                }
            })
            return
        if length:
            body = self.rfile.read(length)
        try:
            status, payload = self.server.app.handle(
                method, parsed.path, params, body
            )
        except Exception as exc:  # pragma: no cover - defensive belt
            status, payload = 500, {
                "error": {"code": "internal_error", "message": repr(exc)}
            }
        self._write(status, payload)

    def _write(self, status: int, payload: dict) -> None:
        """Serialize *payload* as JSON and write a complete response."""
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json; charset=utf-8")
            self.send_header("Content-Length", str(len(data)))
            if status == 503 and payload.get("error", {}).get("code") == (
                "overloaded"
            ):
                # Tell well-behaved clients when to come back instead of
                # letting them hammer an already-overloaded daemon.
                self.send_header("Retry-After", "1")
            self.end_headers()
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request logging unless the server asked for it."""
        if self.server.log_requests:
            super().log_message(format, *args)


def serve_in_thread(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> tuple[RuleServer, threading.Thread]:
    """Start a daemon-threaded :class:`RuleServer` and return it.

    Parameters
    ----------
    app : ServeApp
        The application to serve.
    host : str
        Interface to bind (loopback by default).
    port : int
        TCP port; ``0`` (the default) picks a free ephemeral port.

    Returns
    -------
    tuple[RuleServer, threading.Thread]
        The bound server (its :attr:`RuleServer.url` is ready to query)
        and the daemon thread running ``serve_forever``.  Call
        ``server.shutdown()`` to stop it.
    """
    server = RuleServer((host, port), app)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return server, thread
