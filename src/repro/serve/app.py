"""The rule-serving application: one loaded store, many concurrent queries.

This module is the transport-free core of ``repro serve``.  A
:class:`ServeApp` loads a :mod:`repro.store` container once into an
immutable :class:`LoadedStore` snapshot (canonically sorted rule columns
per basis, summary statistics, and — when the store carries the needed
sections — a :class:`~repro.core.derivation.BasisDerivation` for checking
arbitrary candidate rules), then answers JSON queries through
:meth:`ServeApp.handle`:

========  ======================  ==========================================
method    path                    answer
========  ======================  ==========================================
GET       ``/healthz``            liveness + store identity
GET       ``/bases``              stored bases with per-basis statistics
GET       ``/bases/{name}/rules`` filtered, paginated rule listing
POST      ``/derive``             derivability check of a candidate rule
POST      ``/recommend``          top-k consequents for a partial basket
GET       ``/metrics``            request/latency/cache counters
========  ======================  ==========================================

Handlers never mutate the snapshot: every request reads ``self.loaded``
exactly once, so a concurrent reload (SIGHUP or store-file replacement)
swaps the whole snapshot atomically and in-flight requests keep
answering from the generation they started with — no torn reads.  The
HTTP transport lives in :mod:`repro.serve.http`.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..analysis.metrics import summarize_rules
from ..core.derivation import BasisDerivation
from ..core.dg_basis import build_duquenne_guigues_basis
from ..core.itemset import Itemset
from ..core.luxenburger import LuxenburgerBasis
from ..core.rulearrays import RuleArrays
from ..errors import DerivationError, ReproError, StoreIntegrityError
from ..recommend import BASIS_PREFERENCE, Recommender, preferred_basis
from ..store import load_run
from ..testing.faults import get_injector
from .cache import LRUCache

__all__ = [
    "ApiError",
    "LoadedStore",
    "ServedBasis",
    "ServeApp",
    "DEFAULT_CACHE_SIZE",
    "MAX_PAGE_LIMIT",
    "MAX_RECOMMEND_K",
    "RECOMMEND_BASIS_PREFERENCE",
]

#: Default capacity of the per-store answer cache.
DEFAULT_CACHE_SIZE = 1024

#: Hard ceiling of the ``limit`` pagination parameter.
MAX_PAGE_LIMIT = 1000

#: Default page size of ``GET /bases/{name}/rules``.
DEFAULT_PAGE_LIMIT = 50

#: Default top-k size of ``POST /recommend``.
DEFAULT_RECOMMEND_K = 5

#: Hard ceiling of the ``k`` body parameter of ``POST /recommend``.
MAX_RECOMMEND_K = 100

#: Default-basis preference of ``POST /recommend`` when the body names
#: none: the first of these that the store holds answers the query,
#: falling back to the alphabetically first stored basis.  Shared with
#: the ``repro recommend`` CLI verb
#: (:data:`repro.recommend.BASIS_PREFERENCE`).
RECOMMEND_BASIS_PREFERENCE = BASIS_PREFERENCE

_RULES_PARAMS = frozenset(
    {
        "min_support",
        "max_support",
        "min_confidence",
        "max_confidence",
        "kind",
        "items",
        "antecedent_items",
        "consequent_items",
        "limit",
        "offset",
    }
)


class ApiError(ReproError):
    """A request error with an HTTP status and a stable machine code.

    Parameters
    ----------
    status : int
        HTTP status code of the response (400, 404, ...).
    code : str
        Stable machine-readable error identifier (``bad_request``,
        ``not_found``, ``not_derivable``, ...) — the contract documented
        in ``docs/serving.md``.
    message : str
        Human-readable description of what went wrong.
    """

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)

    def payload(self) -> dict:
        """Return the JSON error envelope ``{"error": {code, message}}``."""
        return {"error": {"code": self.code, "message": self.message}}


@dataclass(frozen=True)
class ServedBasis:
    """One stored rule basis prepared for read-only serving.

    Attributes
    ----------
    name : str
        Registry name the basis was stored under (``"dg"``, ...).
    kind : str
        ``"exact"``, ``"approximate"``, ``"all"`` or ``"?"`` when the
        store predates basis kinds.
    arrays : RuleArrays
        The rule columns in canonical rule order (sorted once at load,
        so pagination is deterministic and matches the CLI ordering).
    metadata : dict
        Construction metadata recorded at save time.
    summary : dict
        Vectorised statistics (rule counts, exact/approximate split,
        average support/confidence) computed once at load.
    """

    name: str
    kind: str
    arrays: RuleArrays
    metadata: dict = field(default_factory=dict)
    summary: dict = field(default_factory=dict)


@dataclass(frozen=True)
class LoadedStore:
    """An immutable snapshot of one loaded artifact store.

    Every request handler reads exactly one snapshot, so a reload can
    replace the app's current snapshot atomically without locking the
    readers.

    Attributes
    ----------
    path : Path
        The store file the snapshot was loaded from.
    generation : int
        Monotonic load counter (1 for the boot load); included in query
        answers and cache keys so reloads are observable and can never
        serve stale cached entries.
    signature : tuple[int, int] or None
        ``(st_mtime_ns, st_size)`` of the file at load time — the
        change detector of the mtime watcher.
    name : str
        Dataset name recorded in the manifest.
    minsup, minconf : float or None
        Mining thresholds recorded in the manifest.
    n_objects : int or None
        Objects of the mined context (from the closed family), when the
        store carries one.
    bases : dict[str, ServedBasis]
        The stored rule bases, keyed by name.
    derivation : BasisDerivation or None
        Derivation engine for ``POST /derive``; ``None`` when the store
        lacks the sections needed to build one.
    derivation_error : str or None
        Why derivation is unavailable, when it is.
    recommenders : dict[str, Recommender]
        One :class:`~repro.recommend.Recommender` per stored basis,
        sharing each basis's already-sorted columns copy-on-write (only
        the inverted index is new memory).  Rebuilt with every snapshot,
        so hot reloads refresh the recommendation engine atomically too.
    recommend_basis : str or None
        Default basis of ``POST /recommend`` (see
        :data:`RECOMMEND_BASIS_PREFERENCE`); ``None`` when the store
        holds no rule basis at all.
    """

    path: Path
    generation: int
    signature: tuple[int, int] | None
    name: str
    minsup: float | None
    minconf: float | None
    n_objects: int | None
    bases: dict[str, ServedBasis]
    derivation: BasisDerivation | None
    derivation_error: str | None
    recommenders: dict[str, Recommender] = field(default_factory=dict)
    recommend_basis: str | None = None

    def require_basis(self, name: str) -> ServedBasis:
        """Return the served basis *name* or raise a 404 :class:`ApiError`."""
        try:
            return self.bases[name]
        except KeyError:
            raise ApiError(
                404,
                "not_found",
                f"basis {name!r} is not in the store; stored bases: "
                f"{', '.join(self.bases) or '(none)'}",
            ) from None

    def require_recommender(self, name: str | None) -> Recommender:
        """Return the recommender for basis *name* (default when ``None``).

        Raises a 503 :class:`ApiError` when the store holds no rule
        basis at all, and a 404 when *name* is not a stored basis.
        """
        if name is None:
            name = self.recommend_basis
        if name is None:
            raise ApiError(
                503,
                "recommendation_unavailable",
                "the store holds no rule basis to recommend from",
            )
        self.require_basis(name)
        return self.recommenders[name]


class _Metrics:
    """Thread-safe request/latency/reload counters behind ``GET /metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = 0
        self._errors = 0
        self._reloads = 0
        self._reload_failures = 0
        self._integrity_failures = 0
        self._rejected = 0
        self._deadline_exceeded = 0
        self._last_reload_error: str | None = None
        self._routes: dict[str, dict[str, float]] = {}

    def record_reject(self) -> None:
        """Count one request refused by the in-flight overload gate."""
        with self._lock:
            self._rejected += 1

    def record_timeout(self) -> None:
        """Count one request aborted by the per-request deadline."""
        with self._lock:
            self._deadline_exceeded += 1

    def observe(self, route: str, status: int, seconds: float) -> None:
        """Record one handled request for *route* with its latency."""
        with self._lock:
            self._requests += 1
            if status >= 400:
                self._errors += 1
            entry = self._routes.setdefault(
                route,
                {"count": 0, "errors": 0, "latency_seconds_total": 0.0,
                 "latency_seconds_max": 0.0},
            )
            entry["count"] += 1
            if status >= 400:
                entry["errors"] += 1
            entry["latency_seconds_total"] += seconds
            entry["latency_seconds_max"] = max(
                entry["latency_seconds_max"], seconds
            )

    def record_reload(
        self, error: str | None = None, integrity: bool = False
    ) -> None:
        """Record a reload attempt (successful when *error* is ``None``)."""
        with self._lock:
            if error is None:
                self._reloads += 1
            else:
                self._reload_failures += 1
                if integrity:
                    self._integrity_failures += 1
                self._last_reload_error = error

    def snapshot(self) -> dict:
        """Return all counters as a JSON-ready mapping (QPS included)."""
        with self._lock:
            uptime = max(time.monotonic() - self._started, 1e-9)
            endpoints = {}
            for route, entry in sorted(self._routes.items()):
                count = int(entry["count"])
                endpoints[route] = {
                    "count": count,
                    "errors": int(entry["errors"]),
                    "latency_seconds_total": entry["latency_seconds_total"],
                    "latency_seconds_max": entry["latency_seconds_max"],
                    "latency_seconds_mean": (
                        entry["latency_seconds_total"] / count if count else 0.0
                    ),
                }
            return {
                "uptime_seconds": uptime,
                "requests_total": self._requests,
                "errors_total": self._errors,
                "qps": self._requests / uptime,
                "reloads": self._reloads,
                "reload_failures": self._reload_failures,
                "integrity_failures": self._integrity_failures,
                "rejected_total": self._rejected,
                "deadline_exceeded_total": self._deadline_exceeded,
                "last_reload_error": self._last_reload_error,
                "endpoints": endpoints,
            }


def _signature(path: Path) -> tuple[int, int] | None:
    """Return the ``(mtime_ns, size)`` change signature of *path*, if present."""
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _rule_row(arrays: RuleArrays, row: int) -> dict:
    """Render one rule row of *arrays* as a JSON-ready mapping."""
    count = int(arrays.support_count[row])
    universe = arrays.universe
    return {
        "antecedent": [universe[i] for i in arrays.antecedents.row_indices(row)],
        "consequent": [universe[i] for i in arrays.consequents.row_indices(row)],
        "support": float(arrays.support[row]),
        "confidence": float(arrays.confidence[row]),
        "support_count": None if count < 0 else count,
    }


class ServeApp:
    """The long-lived, read-only rule-serving application.

    Parameters
    ----------
    store_path : str or Path
        A ``repro save`` NPZ container.  Loaded once at construction;
        reloaded on :meth:`request_reload` (the SIGHUP path) or — with
        ``watch=True`` — whenever the file's mtime/size signature
        changes between requests.
    cache_size : int
        Capacity of the LRU answer cache over canonicalized queries
        (``0`` disables caching).
    watch : bool
        Whether to stat the store file on each request and reload when
        it was replaced.  Replacements should be atomic (write a
        sidecar, then ``os.replace``); a half-written file that fails to
        load keeps the previous snapshot serving.
    workers : int, optional
        Worker count for the sharded kernels of the warm-start basis
        rebuild (``None`` = the ``REPRO_NUM_WORKERS`` environment
        variable, else serial; ``0`` = all cores).  Served answers are
        byte-identical for any worker count.
    retain_containment : bool
        Whether the loaded lattice keeps the packed ``n**2 / 8``-byte
        containment relation resident.  The daemon only needs
        point-ancestry probes, which the member masks answer, so the
        default is ``False`` — the CSR-only edge store mode that cuts
        warm-start resident memory on large lattices.
    verify : str
        Store integrity mode handed to :func:`repro.store.load_run` at
        (re)load time: ``"off"``, ``"manifest"`` or ``"full"``.  The
        daemon defaults to ``"full"`` — it loads once and serves for a
        long time, so the one-time digest pass is cheap insurance
        against serving from a silently corrupted container.
    request_timeout : float, optional
        Per-request deadline in seconds.  The expensive handlers check
        it between numpy passes and abort with a 503
        ``deadline_exceeded`` error once exceeded.  ``None``/``0``
        disables the deadline.
    max_inflight : int, optional
        Bound on concurrently handled requests.  Excess requests are
        rejected immediately with a 503 ``overloaded`` error (and a
        ``Retry-After`` header at the HTTP layer) instead of queueing
        without bound.  ``/healthz`` and ``/metrics`` bypass the gate
        so the daemon stays observable under overload.  ``None``/``0``
        disables the gate.
    extra_metrics : callable, optional
        Zero-argument callable returning a dict merged into the
        ``GET /metrics`` payload — the seam through which the
        supervisor publishes per-worker identity and the shared
        restart counter.

    Notes
    -----
    The app itself is transport-free: :meth:`handle` maps a parsed
    request to ``(status, payload)``.  :mod:`repro.serve.http` adds the
    stdlib threaded HTTP server on top.
    """

    def __init__(
        self,
        store_path: str | Path,
        cache_size: int = DEFAULT_CACHE_SIZE,
        watch: bool = True,
        workers: int | None = None,
        retain_containment: bool = False,
        verify: str = "full",
        request_timeout: float | None = None,
        max_inflight: int | None = None,
        extra_metrics=None,
    ) -> None:
        self._path = Path(store_path)
        self._watch = bool(watch)
        self._workers = workers
        self._retain_containment = bool(retain_containment)
        self._verify = verify
        self._request_timeout = (
            float(request_timeout) if request_timeout else None
        )
        self._inflight = (
            threading.BoundedSemaphore(int(max_inflight))
            if max_inflight
            else None
        )
        self._extra_metrics = extra_metrics
        self._local = threading.local()
        self.cache = LRUCache(cache_size)
        self.metrics = _Metrics()
        self._reload_lock = threading.Lock()
        self._reload_requested = threading.Event()
        self._failed_signature: tuple[int, int] | None = None
        self._loaded = self._load(generation=1)

    # ------------------------------------------------------------------
    # Loading and reloading
    # ------------------------------------------------------------------
    @property
    def loaded(self) -> LoadedStore:
        """LoadedStore: The current immutable store snapshot."""
        return self._loaded

    def _load(self, generation: int) -> LoadedStore:
        """Load the store file into a fresh :class:`LoadedStore` snapshot."""
        get_injector().fire("store.load", path=self._path)
        signature = _signature(self._path)
        stored = load_run(
            self._path,
            retain_containment=self._retain_containment,
            verify=self._verify,
        )
        bases: dict[str, ServedBasis] = {}
        recommenders: dict[str, Recommender] = {}
        for name, arrays in stored.rule_arrays.items():
            canonical = arrays.sorted_canonically()
            bases[name] = ServedBasis(
                name=name,
                kind=stored.basis_kinds.get(name, "?"),
                arrays=canonical,
                metadata=dict(stored.basis_metadata.get(name, {})),
                summary=summarize_rules(canonical),
            )
            # The recommender shares the snapshot's sorted columns
            # copy-on-write; only its inverted index is new memory.
            recommenders[name] = Recommender(
                canonical, workers=self._workers, assume_canonical=True
            )
        recommend_basis = preferred_basis(bases)
        derivation: BasisDerivation | None = None
        derivation_error: str | None = None
        if stored.closed is None or stored.frequent is None:
            derivation_error = (
                "derivation needs the 'closed' and 'frequent' store sections; "
                f"stored sections: {', '.join(stored.sections) or '(none)'}"
            )
        else:
            dg = build_duquenne_guigues_basis(stored.frequent, stored.closed)
            luxenburger = LuxenburgerBasis(
                stored.closed,
                minconf=0.0,
                transitive_reduction=True,
                lattice=stored.lattice,
                workers=self._workers,
            )
            derivation = BasisDerivation(
                dg, luxenburger, n_objects=stored.closed.n_objects
            )
        return LoadedStore(
            path=self._path,
            generation=generation,
            signature=signature,
            name=stored.name,
            minsup=stored.minsup,
            minconf=stored.minconf,
            n_objects=(
                stored.closed.n_objects if stored.closed is not None else None
            ),
            bases=bases,
            derivation=derivation,
            derivation_error=derivation_error,
            recommenders=recommenders,
            recommend_basis=recommend_basis,
        )

    def request_reload(self) -> None:
        """Ask for a reload before the next request (the SIGHUP handler)."""
        self._reload_requested.set()

    def maybe_reload(self) -> None:
        """Reload the store if requested or if the file was replaced.

        The new snapshot is built completely before being swapped in
        with one atomic attribute assignment; a load failure (e.g. a
        half-written replacement) keeps the previous snapshot serving
        and is surfaced through ``GET /metrics``.  The same failed file
        signature is not retried until the file changes again.
        """
        changed = (
            self._watch
            and (current := _signature(self._path)) != self._loaded.signature
            and current != self._failed_signature
        )
        if not (self._reload_requested.is_set() or changed):
            return
        with self._reload_lock:
            requested = self._reload_requested.is_set()
            self._reload_requested.clear()
            current = _signature(self._path)
            if (
                not requested
                and (current == self._loaded.signature
                     or current == self._failed_signature)
            ):
                return  # another thread already handled it
            try:
                fresh = self._load(generation=self._loaded.generation + 1)
            except ReproError as exc:
                self._failed_signature = current
                self.metrics.record_reload(
                    error=str(exc),
                    integrity=isinstance(exc, StoreIntegrityError),
                )
                return
            self._failed_signature = None
            self._loaded = fresh
            self.cache.clear()
            self.metrics.record_reload()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def handle(
        self,
        method: str,
        path: str,
        params: dict[str, str] | None = None,
        body: bytes | None = None,
    ) -> tuple[int, dict]:
        """Answer one parsed request.

        Parameters
        ----------
        method : str
            HTTP method (``"GET"`` or ``"POST"``).
        path : str
            URL path without the query string (``"/bases/dg/rules"``).
        params : dict[str, str], optional
            Decoded query parameters (single-valued).
        body : bytes, optional
            Raw request body (``POST /derive`` only).

        Returns
        -------
        tuple[int, dict]
            ``(http_status, json_payload)``.  Errors use the envelope
            ``{"error": {"code": ..., "message": ...}}``.
        """
        started = time.perf_counter()
        parts = [part for part in path.split("/") if part]
        # /healthz and /metrics bypass the overload gate (and the fault
        # seam) so the daemon stays observable while it sheds load.
        observability = parts in (["healthz"], ["metrics"])
        gated = self._inflight is not None and not observability
        if gated and not self._inflight.acquire(blocking=False):
            self.metrics.record_reject()
            error = ApiError(
                503, "overloaded",
                "server is at its in-flight request limit; retry shortly",
            )
            route = self._route_label(parts, method)
            self.metrics.observe(route, error.status, time.perf_counter() - started)
            return error.status, error.payload()
        try:
            self.maybe_reload()
            if self._request_timeout is not None:
                self._local.deadline = time.monotonic() + self._request_timeout
            if not observability:
                get_injector().fire("serve.request")
            loaded = self._loaded
            route, status, payload = self._dispatch(
                loaded, method, path, params, body
            )
        finally:
            self._local.deadline = None
            if gated:
                self._inflight.release()
        self.metrics.observe(route, status, time.perf_counter() - started)
        return status, payload

    def _check_deadline(self) -> None:
        """Abort with 503 ``deadline_exceeded`` once the deadline passed.

        Called by the expensive handlers between numpy passes, so an
        over-budget request stops burning CPU at the next checkpoint
        instead of running to completion.
        """
        deadline = getattr(self._local, "deadline", None)
        if deadline is not None and time.monotonic() > deadline:
            self.metrics.record_timeout()
            raise ApiError(
                503, "deadline_exceeded",
                f"request exceeded the {self._request_timeout:g}s deadline",
            )

    def _dispatch(
        self,
        loaded: LoadedStore,
        method: str,
        path: str,
        params: dict[str, str] | None,
        body: bytes | None,
    ) -> tuple[str, int, dict]:
        """Route one request; returns ``(route_label, status, payload)``."""
        params = dict(params or {})
        parts = [part for part in path.split("/") if part]
        try:
            if parts == ["healthz"] and method == "GET":
                return "GET /healthz", 200, self._health_payload(loaded)
            if parts == ["bases"] and method == "GET":
                return "GET /bases", 200, self._bases_payload(loaded)
            if len(parts) == 3 and parts[0] == "bases" and parts[2] == "rules":
                if method != "GET":
                    raise ApiError(
                        405, "method_not_allowed", f"{method} not allowed here"
                    )
                status, payload = self._rules_response(loaded, parts[1], params)
                return "GET /bases/{name}/rules", status, payload
            if parts == ["derive"]:
                if method != "POST":
                    raise ApiError(
                        405, "method_not_allowed",
                        "use POST with a JSON body on /derive",
                    )
                status, payload = self._derive_response(loaded, body)
                return "POST /derive", status, payload
            if parts == ["recommend"]:
                if method != "POST":
                    raise ApiError(
                        405, "method_not_allowed",
                        "use POST with a JSON body on /recommend",
                    )
                status, payload = self._recommend_response(loaded, body)
                return "POST /recommend", status, payload
            if parts == ["metrics"] and method == "GET":
                return "GET /metrics", 200, self._metrics_payload(loaded)
            raise ApiError(404, "not_found", f"no route for {method} {path}")
        except ApiError as exc:
            return self._route_label(parts, method), exc.status, exc.payload()
        except ReproError as exc:
            error = ApiError(500, "internal_error", str(exc))
            return self._route_label(parts, method), error.status, error.payload()

    @staticmethod
    def _route_label(parts: list[str], method: str) -> str:
        """Return the metrics label of a (possibly failed) route."""
        if len(parts) >= 1 and parts[0] == "bases" and len(parts) == 3:
            return "GET /bases/{name}/rules"
        if parts[:1] in (
            ["healthz"], ["bases"], ["derive"], ["recommend"], ["metrics"]
        ):
            return f"{method} /{parts[0]}"
        return "unmatched"

    # ------------------------------------------------------------------
    # Endpoint payloads
    # ------------------------------------------------------------------
    def _health_payload(self, loaded: LoadedStore) -> dict:
        """Build the ``GET /healthz`` answer."""
        return {
            "status": "ok",
            "store": str(loaded.path),
            "dataset": loaded.name,
            "generation": loaded.generation,
            "minsup": loaded.minsup,
            "minconf": loaded.minconf,
            "n_objects": loaded.n_objects,
            "bases": sorted(loaded.bases),
            "derivation": (
                "ready" if loaded.derivation is not None else "unavailable"
            ),
            "recommend_basis": loaded.recommend_basis,
        }

    def _bases_payload(self, loaded: LoadedStore) -> dict:
        """Build the ``GET /bases`` answer (per-basis statistics)."""
        rows = []
        for name in sorted(loaded.bases):
            basis = loaded.bases[name]
            row = {
                "name": basis.name,
                "kind": basis.kind,
                "metadata": basis.metadata,
            }
            row.update(basis.summary)
            rows.append(row)
        return {
            "dataset": loaded.name,
            "generation": loaded.generation,
            "minsup": loaded.minsup,
            "minconf": loaded.minconf,
            "bases": rows,
        }

    def _rules_response(
        self, loaded: LoadedStore, name: str, params: dict[str, str]
    ) -> tuple[int, dict]:
        """Answer ``GET /bases/{name}/rules`` (through the answer cache)."""
        basis = loaded.require_basis(name)
        key = (
            loaded.generation,
            "rules",
            name,
            tuple(sorted(params.items())),
        )
        hit, cached = self.cache.get(key)
        if hit:
            return 200, cached  # type: ignore[return-value]
        payload = self._rules_payload(loaded, basis, params)
        self.cache.put(key, payload)
        return 200, payload

    def _rules_payload(
        self, loaded: LoadedStore, basis: ServedBasis, params: dict[str, str]
    ) -> dict:
        """Filter + paginate one basis's rule columns into a JSON page."""
        unknown = set(params) - _RULES_PARAMS
        if unknown:
            raise ApiError(
                400,
                "bad_request",
                f"unknown query parameter(s): {', '.join(sorted(unknown))}; "
                f"supported: {', '.join(sorted(_RULES_PARAMS))}",
            )
        self._check_deadline()
        arrays = basis.arrays
        mask = np.ones(len(arrays), dtype=bool)
        for param, column, op in (
            ("min_support", arrays.support, np.greater_equal),
            ("max_support", arrays.support, np.less_equal),
            ("min_confidence", arrays.confidence, np.greater_equal),
            ("max_confidence", arrays.confidence, np.less_equal),
        ):
            if param in params:
                mask &= op(column, _float_param(params, param))
        kind = params.get("kind")
        if kind is not None:
            if kind not in ("exact", "approximate"):
                raise ApiError(
                    400, "bad_request",
                    f"kind must be 'exact' or 'approximate', got {kind!r}",
                )
            exact = arrays.exact_mask()
            mask &= exact if kind == "exact" else ~exact
        for param, words in (
            ("items", arrays.antecedents.words | arrays.consequents.words),
            ("antecedent_items", arrays.antecedents.words),
            ("consequent_items", arrays.consequents.words),
        ):
            if param in params:
                mask &= _containment_mask(
                    words, _parse_items(params[param], param, arrays.universe),
                    arrays.universe,
                )
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        offset = _int_param(params, "offset", 0, 0, None)
        indices = np.nonzero(mask)[0]
        page = indices[offset : offset + limit]
        self._check_deadline()
        return {
            "basis": basis.name,
            "kind": basis.kind,
            "generation": loaded.generation,
            "total": int(indices.size),
            "offset": offset,
            "limit": limit,
            "count": int(page.size),
            "rules": [_rule_row(arrays, int(row)) for row in page],
        }

    def _derive_response(
        self, loaded: LoadedStore, body: bytes | None
    ) -> tuple[int, dict]:
        """Answer ``POST /derive`` (through the answer cache)."""
        antecedent, consequent = _parse_derive_body(body, loaded)
        key = (loaded.generation, "derive", antecedent, consequent)
        hit, cached = self.cache.get(key)
        if hit:
            return cached  # type: ignore[return-value]
        response = self._derive_payload(loaded, antecedent, consequent)
        self.cache.put(key, response)
        return response

    def _derive_payload(
        self,
        loaded: LoadedStore,
        antecedent: tuple,
        consequent: tuple,
    ) -> tuple[int, dict]:
        """Check one candidate rule for derivability from the bases."""
        self._check_deadline()
        if loaded.derivation is None:
            raise ApiError(
                503, "derivation_unavailable",
                loaded.derivation_error or "derivation is unavailable",
            )
        try:
            rule = loaded.derivation.derive_rule(
                Itemset(antecedent), Itemset(consequent)
            )
        except DerivationError as exc:
            return 422, {
                "derivable": False,
                "generation": loaded.generation,
                "error": {"code": "not_derivable", "message": str(exc)},
            }
        return 200, {
            "derivable": True,
            "generation": loaded.generation,
            "rule": {
                "antecedent": sorted(rule.antecedent, key=_item_sort_key),
                "consequent": sorted(rule.consequent, key=_item_sort_key),
                "support": rule.support,
                "confidence": rule.confidence,
                "support_count": rule.support_count,
            },
        }

    def _recommend_response(
        self, loaded: LoadedStore, body: bytes | None
    ) -> tuple[int, dict]:
        """Answer ``POST /recommend`` (through the answer cache)."""
        basket, k, name = _parse_recommend_body(body, loaded)
        recommender = loaded.require_recommender(name)
        basis = name if name is not None else loaded.recommend_basis
        key = (loaded.generation, "recommend", basis, k, basket)
        hit, cached = self.cache.get(key)
        if hit:
            return 200, cached  # type: ignore[return-value]
        payload = self._recommend_payload(loaded, recommender, basis, basket, k)
        self.cache.put(key, payload)
        return 200, payload

    def _recommend_payload(
        self,
        loaded: LoadedStore,
        recommender: Recommender,
        basis: str,
        basket: tuple,
        k: int,
    ) -> dict:
        """Run one top-k basket query and render it as JSON."""
        self._check_deadline()
        result = recommender.query(basket, k)
        self._check_deadline()
        return {
            "basis": basis,
            "generation": loaded.generation,
            "basket": list(basket),
            "known_items": list(result.known_items),
            "k": k,
            "matched_rules": result.matched_rules,
            "count": len(result.recommendations),
            "recommendations": [
                {
                    "items": list(rec.items),
                    "confidence": rec.confidence,
                    "support": rec.support,
                    "support_count": rec.support_count,
                    "antecedent": list(rec.antecedent),
                    "consequent": list(rec.consequent),
                }
                for rec in result.recommendations
            ],
        }

    def _metrics_payload(self, loaded: LoadedStore) -> dict:
        """Build the ``GET /metrics`` answer."""
        payload = self.metrics.snapshot()
        payload["generation"] = loaded.generation
        payload["cache"] = self.cache.stats()
        if self._extra_metrics is not None:
            payload.update(self._extra_metrics())
        return payload


# ----------------------------------------------------------------------
# Parameter parsing helpers
# ----------------------------------------------------------------------
def _item_sort_key(item) -> tuple[str, str]:
    """Return a type-stable sort key for mixed str/int items."""
    return (type(item).__name__, str(item))


def _float_param(params: dict[str, str], name: str) -> float:
    """Parse the probability-valued query parameter *name*."""
    raw = params[name]
    try:
        value = float(raw)
    except ValueError:
        raise ApiError(
            400, "bad_request", f"{name} must be a number, got {raw!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise ApiError(
            400, "bad_request", f"{name} must lie in [0, 1], got {value}"
        )
    return value


def _int_param(
    params: dict[str, str],
    name: str,
    default: int,
    minimum: int,
    maximum: int | None,
) -> int:
    """Parse the integer query parameter *name* with range validation."""
    raw = params.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ApiError(
            400, "bad_request", f"{name} must be an integer, got {raw!r}"
        ) from None
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
        raise ApiError(400, "bad_request", f"{name} must be {bound}, got {value}")
    return value


def _coerce_item(token, universe: tuple) -> object:
    """Coerce one query/body item to the item type of *universe*."""
    if universe and all(isinstance(item, int) for item in universe):
        if isinstance(token, int):
            return token
        try:
            return int(str(token))
        except ValueError:
            raise ApiError(
                400, "bad_request",
                f"this store's items are integers; got {token!r}",
            ) from None
    return token if isinstance(token, (str, int)) else str(token)


def _parse_items(raw: str, param: str, universe: tuple) -> tuple:
    """Parse a comma-separated item list query parameter."""
    tokens = [token.strip() for token in raw.split(",") if token.strip()]
    if not tokens:
        raise ApiError(
            400, "bad_request", f"{param} must name at least one item"
        )
    return tuple(_coerce_item(token, universe) for token in tokens)


def _containment_mask(
    words: np.ndarray, items: tuple, universe: tuple
) -> np.ndarray:
    """Return the rows of packed *words* whose mask contains all *items*.

    Items outside the universe simply match no rule (the filter is a
    containment predicate, not a validation step).
    """
    position = {item: index for index, item in enumerate(universe)}
    query = np.zeros(words.shape[1] if words.ndim == 2 else 0, dtype=np.uint64)
    for item in items:
        index = position.get(item)
        if index is None:
            return np.zeros(words.shape[0], dtype=bool)
        query[index >> 6] |= np.uint64(1) << np.uint64(index & 63)
    return ((words & query) == query).all(axis=1)


def _parse_derive_body(
    body: bytes | None, loaded: LoadedStore
) -> tuple[tuple, tuple]:
    """Parse and validate the JSON body of ``POST /derive``."""
    if not body:
        raise ApiError(
            400, "bad_request",
            'POST /derive needs a JSON body like {"antecedent": ["a"], '
            '"consequent": ["c"]}',
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ApiError(400, "bad_request", f"invalid JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise ApiError(400, "bad_request", "the request body must be a JSON object")
    unknown = set(payload) - {"antecedent", "consequent"}
    if unknown:
        raise ApiError(
            400, "bad_request",
            f"unknown body key(s): {', '.join(sorted(unknown))}; "
            "expected antecedent and consequent",
        )
    universe: tuple = ()
    for basis in loaded.bases.values():
        universe = basis.arrays.universe
        break
    sides = []
    for side in ("antecedent", "consequent"):
        value = payload.get(side, [])
        if not isinstance(value, list) or not all(
            isinstance(item, (str, int)) and not isinstance(item, bool)
            for item in value
        ):
            raise ApiError(
                400, "bad_request",
                f"{side} must be a JSON array of item strings or integers",
            )
        sides.append(tuple(sorted(
            (_coerce_item(item, universe) for item in value), key=_item_sort_key
        )))
    antecedent, consequent = sides
    if not consequent:
        raise ApiError(400, "bad_request", "consequent must be non-empty")
    return antecedent, consequent


def _parse_recommend_body(
    body: bytes | None, loaded: LoadedStore
) -> tuple[tuple, int, str | None]:
    """Parse and validate the JSON body of ``POST /recommend``.

    Returns ``(basket, k, basis)`` with the basket deduplicated and
    canonically sorted — the canonical form is also the answer-cache
    key, so ``["b", "a", "a"]`` and ``["a", "b"]`` share one entry.
    """
    if not body:
        raise ApiError(
            400, "bad_request",
            'POST /recommend needs a JSON body like {"basket": ["a", "c"], '
            '"k": 5}',
        )
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ApiError(400, "bad_request", f"invalid JSON body: {exc}") from None
    if not isinstance(payload, dict):
        raise ApiError(400, "bad_request", "the request body must be a JSON object")
    unknown = set(payload) - {"basket", "k", "basis"}
    if unknown:
        raise ApiError(
            400, "bad_request",
            f"unknown body key(s): {', '.join(sorted(unknown))}; "
            "expected basket, k and basis",
        )
    if "basket" not in payload:
        raise ApiError(400, "bad_request", "the body must name a basket")
    raw_basket = payload["basket"]
    if not isinstance(raw_basket, list) or not all(
        isinstance(item, (str, int)) and not isinstance(item, bool)
        for item in raw_basket
    ):
        raise ApiError(
            400, "bad_request",
            "basket must be a JSON array of item strings or integers "
            "(empty is allowed: it matches the empty-antecedent rules)",
        )
    universe: tuple = ()
    for basis in loaded.bases.values():
        universe = basis.arrays.universe
        break
    basket = tuple(sorted(
        {_coerce_item(item, universe) for item in raw_basket},
        key=_item_sort_key,
    ))
    k = payload.get("k", DEFAULT_RECOMMEND_K)
    if isinstance(k, bool) or not isinstance(k, int):
        raise ApiError(400, "bad_request", f"k must be an integer, got {k!r}")
    if not 1 <= k <= MAX_RECOMMEND_K:
        raise ApiError(
            400, "bad_request", f"k must be in [1, {MAX_RECOMMEND_K}], got {k}"
        )
    name = payload.get("basis")
    if name is not None and not isinstance(name, str):
        raise ApiError(
            400, "bad_request", f"basis must be a string, got {name!r}"
        )
    return basket, k, name
