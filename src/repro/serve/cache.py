"""Bounded, thread-safe LRU cache for canonicalized query answers.

The serving daemon answers many identical queries (the same rule page,
the same derivation candidate) against an immutable store snapshot, so a
small per-process answer cache converts the hot part of the query mix
into dictionary lookups.  Keys are canonicalized query identities built
by :mod:`repro.serve.app` (and always include the loaded store's
generation, so a reload can never serve a stale answer); values are the
fully rendered response payloads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from ..errors import InvalidParameterError

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded least-recently-used mapping with hit/miss/eviction accounting.

    Parameters
    ----------
    capacity : int
        Maximum number of cached entries; inserting beyond it evicts the
        least recently used entry.  ``0`` disables caching entirely
        (every lookup is a miss and nothing is stored).

    Notes
    -----
    All operations take an internal lock, so one instance can be shared
    by every request-handler thread of the daemon.
    """

    def __init__(self, capacity: int) -> None:
        capacity = int(capacity)
        if capacity < 0:
            raise InvalidParameterError(
                f"cache capacity must be >= 0, got {capacity}"
            )
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """The maximum number of entries the cache may hold."""
        return self._capacity

    def __len__(self) -> int:
        """Return the current number of cached entries."""
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable) -> tuple[bool, object]:
        """Look *key* up and record the hit or miss.

        Parameters
        ----------
        key : Hashable
            Canonicalized query identity.

        Returns
        -------
        tuple[bool, object]
            ``(True, value)`` on a hit — the entry is promoted to most
            recently used — or ``(False, None)`` on a miss.
        """
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return True, self._entries[key]
            self._misses += 1
            return False, None

    def put(self, key: Hashable, value: object) -> None:
        """Store *value* under *key*, evicting the LRU entry when full.

        Parameters
        ----------
        key : Hashable
            Canonicalized query identity.
        value : object
            The rendered answer to cache.  Values must be treated as
            immutable by callers — the same object is handed to every
            future hit.
        """
        if self._capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (hit/miss counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Return the cache counters as a JSON-ready mapping.

        Returns
        -------
        dict[str, int]
            ``hits``, ``misses``, ``evictions`` (entries dropped to make
            room), ``size`` (current entries) and ``capacity``.
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "capacity": self._capacity,
            }
