"""Read-only rule-serving daemon over the artifact store.

The serve-many half of the mine-once/serve-many pipeline: ``repro
serve --store run.npz --port 8000`` loads a :mod:`repro.store`
container once and answers concurrent HTTP/JSON queries against the
immutable snapshot — basis listings with statistics, filtered and
paginated rule pages straight off the columnar
:class:`~repro.core.rulearrays.RuleArrays`, and derivability checks of
arbitrary candidate rules through
:class:`~repro.core.derivation.BasisDerivation` (the paper's central
claim, as an endpoint).

Layering:

* :mod:`repro.serve.app` — transport-free request handling over an
  atomically swappable :class:`~repro.serve.app.LoadedStore` snapshot
  (SIGHUP / mtime-triggered reloads, per-store LRU answer cache,
  latency/QPS/cache counters);
* :mod:`repro.serve.http` — the stdlib ``ThreadingHTTPServer`` glue
  plus :func:`~repro.serve.http.serve_in_thread` for embedding a live
  daemon in tests and examples;
* :mod:`repro.serve.supervisor` — fork-after-load multi-process serving
  (``--processes N``): crashed workers restarted with backoff, crash
  loops detected, SIGTERM drains gracefully, SIGHUP fans out reloads;
* :mod:`repro.serve.cache` — the bounded thread-safe LRU cache.

The HTTP API is documented endpoint by endpoint in ``docs/serving.md``.
"""

from __future__ import annotations

from .app import (
    DEFAULT_CACHE_SIZE,
    MAX_PAGE_LIMIT,
    ApiError,
    LoadedStore,
    ServeApp,
    ServedBasis,
)
from .cache import LRUCache
from .http import RuleServer, serve_in_thread
from .supervisor import Supervisor

__all__ = [
    "ApiError",
    "DEFAULT_CACHE_SIZE",
    "LoadedStore",
    "LRUCache",
    "MAX_PAGE_LIMIT",
    "RuleServer",
    "ServeApp",
    "ServedBasis",
    "Supervisor",
    "serve_in_thread",
]
