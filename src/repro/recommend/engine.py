"""The match → score → rank recommendation kernel and its object oracle.

Semantics (shared, bit for bit, by :class:`Recommender` and
:func:`recommend_reference` — the oracle is the specification):

1. **Match** — a rule is a candidate when its antecedent is a subset of
   the basket (empty antecedents match every basket).  Basket items
   outside the rule universe are ignored: they can satisfy no antecedent
   bit and appear in no consequent.
2. **Score** — the *novel consequent* of a candidate is its consequent
   minus the basket.  Candidates whose novel consequent is empty are
   dropped (they would recommend what the basket already holds).
3. **Rank** — candidates sharing a novel consequent are collapsed onto
   the best rule: highest confidence, then highest support, then lowest
   row number in the canonically sorted collection.  The distinct novel
   consequents are ordered by the same ``(confidence desc, support
   desc, row asc)`` key of their best rule and the first *k* are
   returned.

Confidence and support comparisons are exact float64 comparisons — both
pipelines read the same frozen columns, so no epsilon is involved and
equality with the oracle is bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.parallel import KernelExecutor, get_executor, shard_spans
from ..core.rulearrays import RuleArrays, pack_itemset_words
from ..errors import InvalidParameterError
from .index import AntecedentIndex

__all__ = [
    "BASIS_PREFERENCE",
    "BasketQueryResult",
    "Recommendation",
    "Recommender",
    "preferred_basis",
    "recommend_reference",
]

#: Candidate-row count below which per-query scoring stays in-line even
#: when a thread pool is available — sharding µs-scale work would drown
#: the kernel in scheduling overhead.
PARALLEL_MIN_ROWS = 8192

#: Default-basis preference when a store holds several rule bases: the
#: first of these that is stored answers recommendation queries.  The
#: informative bases rank highest — they are the paper's user-facing
#: artefact (minimal antecedents, maximal consequents), so they answer
#: basket queries with the fewest, strongest rules.
BASIS_PREFERENCE = (
    "informative",
    "informative-reduced",
    "generic",
    "all",
    "luxenburger",
    "luxenburger-reduced",
    "approximate",
    "exact",
    "dg",
)


def preferred_basis(names) -> str | None:
    """Pick the default recommendation basis among stored basis *names*.

    Parameters
    ----------
    names : iterable of str
        Basis names available in a store.

    Returns
    -------
    str or None
        The first :data:`BASIS_PREFERENCE` entry present in *names*,
        falling back to the alphabetically first name; ``None`` when
        *names* is empty.
    """
    available = set(names)
    for name in BASIS_PREFERENCE:
        if name in available:
            return name
    return min(available) if available else None


@dataclass(frozen=True)
class Recommendation:
    """One ranked consequent suggestion for a basket.

    Attributes
    ----------
    items : tuple
        The novel consequent — the items being recommended, i.e. the
        winning rule's consequent minus the basket — in canonical
        universe order.
    confidence : float
        Confidence of the winning rule.
    support : float
        Support of the winning rule.
    support_count : int or None
        Absolute support count of the winning rule (``None`` when the
        stored collection does not carry counts).
    antecedent : tuple
        Antecedent of the winning rule, canonical universe order.
    consequent : tuple
        Full consequent of the winning rule (may overlap the basket).
    rule_row : int
        Row of the winning rule in the recommender's (canonically
        sorted) rule collection — the final tie-break key.
    """

    items: tuple
    confidence: float
    support: float
    support_count: int | None
    antecedent: tuple
    consequent: tuple
    rule_row: int


@dataclass(frozen=True)
class BasketQueryResult:
    """The full answer to one basket query.

    Attributes
    ----------
    recommendations : tuple[Recommendation, ...]
        The top-k distinct novel consequents, best first.
    matched_rules : int
        Candidate rules whose antecedent the basket contained (before
        the empty-novel-consequent drop) — the denominator a caller
        needs to judge how much evidence backed the answer.
    known_items : tuple
        Basket items that exist in the rule universe, canonical order;
        the items the match actually ran against.
    """

    recommendations: tuple[Recommendation, ...]
    matched_rules: int
    known_items: tuple


class Recommender:
    """Top-k consequent queries over one indexed rule collection.

    Parameters
    ----------
    arrays : RuleArrays
        The rule collection to serve.  Sorted canonically at
        construction unless ``assume_canonical`` says it already is —
        tie-breaks are defined over canonical row order, so rebuilding
        the recommender from the same rules always answers identically.
    workers : int, optional
        Worker count for the sharded scoring kernel and for
        :meth:`recommend_many` query batches (``None`` = the
        ``REPRO_NUM_WORKERS`` environment variable, else serial;
        ``0`` = all cores).  Answers are identical for any worker count.
    assume_canonical : bool
        Skip the canonical sort when the caller guarantees it (the
        serve layer shares its already-sorted snapshot columns
        copy-on-write).

    Examples
    --------
    >>> from repro.recommend import Recommender
    >>> engine = Recommender(arrays)                    # doctest: +SKIP
    >>> engine.recommend(["bread", "butter"], k=3)      # doctest: +SKIP
    """

    def __init__(
        self,
        arrays: RuleArrays,
        workers: int | None = None,
        assume_canonical: bool = False,
    ) -> None:
        if not assume_canonical:
            arrays = arrays.sorted_canonically()
        self._arrays = arrays
        self._index = AntecedentIndex(arrays)
        self._workers = workers
        self._position = {item: pos for pos, item in enumerate(arrays.universe)}
        # Global ranking permutation, precomputed once: the ranking key
        # (confidence desc, support desc, row asc) is a property of the
        # rules alone — the basket only *filters* candidates and drops
        # empty novel consequents.  Sorting a query's matched rows by
        # this precomputed rank lets the kernel scan candidates
        # best-first and stop as soon as k distinct novel consequents
        # have appeared, instead of scoring and deduplicating the whole
        # matched set.
        n_rows = len(arrays)
        self._row_of_rank = np.lexsort(
            (np.arange(n_rows), -arrays.support, -arrays.confidence)
        ).astype(np.int64)
        self._rank_of_row = np.empty(n_rows, dtype=np.int64)
        self._rank_of_row[self._row_of_rank] = np.arange(n_rows, dtype=np.int64)

    @classmethod
    def from_store(
        cls,
        path: str | Path,
        basis: str,
        workers: int | None = None,
    ) -> "Recommender":
        """Build a recommender from one basis of a ``repro save`` store.

        Parameters
        ----------
        path : str or Path
            A store container written by :func:`repro.store.save_run`.
        basis : str
            Name of the stored basis to serve (``"informative"``, ...).
        workers : int, optional
            Forwarded to the constructor.

        Returns
        -------
        Recommender
            Engine over the named basis's rule columns.

        Raises
        ------
        InvalidParameterError
            When the store holds no basis of that name.
        """
        from ..store import load_run

        run = load_run(path, sections=("rules",))
        arrays = (run.rule_arrays or {}).get(basis)
        if arrays is None:
            stored = ", ".join(sorted(run.rule_arrays or {})) or "(none)"
            raise InvalidParameterError(
                f"store {path} holds no basis {basis!r}; stored bases: {stored}"
            )
        return cls(arrays, workers=workers)

    @property
    def arrays(self) -> RuleArrays:
        """RuleArrays: The served collection, canonical row order."""
        return self._arrays

    @property
    def index(self) -> AntecedentIndex:
        """AntecedentIndex: The underlying inverted index."""
        return self._index

    @property
    def universe(self) -> tuple:
        """tuple: The item universe of the served collection."""
        return self._arrays.universe

    def __len__(self) -> int:
        """Return the number of rules served by this engine."""
        return len(self._arrays)

    def __repr__(self) -> str:
        """Summarize the engine as rule and universe counts."""
        return (
            f"Recommender(rules={len(self._arrays)}, "
            f"items={len(self._arrays.universe)})"
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, basket, k: int = 5) -> BasketQueryResult:
        """Answer one basket query with the full result envelope.

        Parameters
        ----------
        basket : iterable
            The partial basket's items.  Duplicates collapse; items
            outside the rule universe are ignored (reported through
            ``known_items``).
        k : int
            Maximum number of distinct consequents to return (fewer
            when fewer candidates exist).

        Returns
        -------
        BasketQueryResult
            Top-k recommendations plus the matched-rule count.
        """
        return self._query(basket, k, get_executor(self._workers))

    def recommend(self, basket, k: int = 5) -> list[Recommendation]:
        """Return just the ranked top-k list for one basket."""
        return list(self.query(basket, k).recommendations)

    def recommend_many(self, baskets, k: int = 5) -> list[BasketQueryResult]:
        """Answer a batch of basket queries, sharded across workers.

        Queries are independent, so the batch is split into contiguous
        spans and each span runs the serial per-query kernel on one
        worker — the throughput lever of the serve-side bulk workload.
        Results keep the input order and are identical to calling
        :meth:`query` per basket.

        Parameters
        ----------
        baskets : sequence of iterables
            One basket per query.
        k : int
            Top-k size shared by every query.

        Returns
        -------
        list[BasketQueryResult]
            One result per basket, in input order.
        """
        baskets = list(baskets)
        executor = get_executor(self._workers)
        serial = get_executor(1)
        if executor.is_serial or len(baskets) < 2:
            return [self._query(basket, k, serial) for basket in baskets]
        spans = shard_spans(len(baskets), executor.shard_size(len(baskets)))

        def run_span(span: tuple[int, int]) -> list[BasketQueryResult]:
            start, stop = span
            return [self._query(basket, k, serial) for basket in baskets[start:stop]]

        chunks = executor.map(run_span, spans)
        return [result for chunk in chunks for result in chunk]

    # ------------------------------------------------------------------
    # Kernel stages
    # ------------------------------------------------------------------
    def _query(self, basket, k: int, executor: KernelExecutor) -> BasketQueryResult:
        """Run match → score → rank for one basket on *executor*."""
        if k < 1:
            raise InvalidParameterError(f"k must be positive, got {k}")
        known = sorted(
            {
                pos
                for pos in (self._position.get(item) for item in basket)
                if pos is not None
            }
        )
        positions = np.asarray(known, dtype=np.int64)
        basket_words = pack_itemset_words(
            [self._arrays.universe[pos] for pos in known],
            self._position,
            self._arrays.antecedents.n_words,
        )
        matched = self._index.matching_rows(positions)
        recommendations = self._rank_scan(matched, basket_words, k, executor)
        return BasketQueryResult(
            recommendations=tuple(recommendations),
            matched_rules=int(matched.size),
            known_items=tuple(self._arrays.universe[pos] for pos in known),
        )

    def _novel_masks(
        self,
        rows: np.ndarray,
        basket_words: np.ndarray,
        executor: KernelExecutor,
    ) -> np.ndarray:
        """Packed novel-consequent masks (consequent minus basket) per row.

        The row-block shards are disjoint and concatenated in order, so
        the sharded result is byte-identical to the serial one.
        """
        consequents = self._arrays.consequents.words
        if executor.is_serial or rows.size < PARALLEL_MIN_ROWS:
            return consequents[rows] & ~basket_words
        spans = shard_spans(rows.size, executor.shard_size(rows.size, minimum=1024))

        def score_span(span: tuple[int, int]) -> np.ndarray:
            start, stop = span
            return consequents[rows[start:stop]] & ~basket_words

        blocks = executor.map(score_span, spans)
        return np.concatenate(blocks)

    def _rank_scan(
        self,
        matched: np.ndarray,
        basket_words: np.ndarray,
        k: int,
        executor: KernelExecutor,
    ) -> list[Recommendation]:
        """Score candidates best-first, collapse onto novel keys, take top k.

        Reorders *matched* by the precomputed global ranking key, then
        scores geometrically growing prefix chunks: each chunk's novel
        masks are computed, empties dropped, and the kept masks
        deduplicated (first occurrence in rank order = that consequent's
        best rule).  Once the scanned prefix holds at least *k* distinct
        masks the remaining candidates can only rank behind them, so the
        scan stops — in the common case the full matched set is never
        scored.  Answers are identical to scoring everything.
        """
        if matched.size == 0:
            return []
        rows_ranked = self._row_of_rank[np.sort(self._rank_of_row[matched])]
        n_words = self._arrays.consequents.n_words
        if n_words == 0:
            # Degenerate empty universe: every novel consequent is empty.
            return []
        void_dtype = np.dtype((np.void, n_words * 8))
        kept_masks: list[np.ndarray] = []
        kept_rows: list[np.ndarray] = []
        start, chunk = 0, max(64, 4 * k)
        while start < rows_ranked.size:
            stop = min(rows_ranked.size, start + chunk)
            rows_chunk = rows_ranked[start:stop]
            novel = self._novel_masks(rows_chunk, basket_words, executor)
            keep = novel.any(axis=1)
            if keep.any():
                kept_masks.append(novel[keep])
                kept_rows.append(rows_chunk[keep])
                masks = np.ascontiguousarray(np.concatenate(kept_masks))
                keys = masks.view(void_dtype).ravel()
                if np.unique(keys).size >= k:
                    break
            start, chunk = stop, chunk * 2
        if not kept_masks:
            return []
        masks = np.ascontiguousarray(np.concatenate(kept_masks))
        rows_kept = np.concatenate(kept_rows)
        keys = masks.view(void_dtype).ravel()
        # First occurrence per distinct mask in ranked order is that
        # consequent's best rule; the occurrence positions, ascending,
        # are already the final ranking.
        _, first = np.unique(keys, return_index=True)
        selected = np.sort(first)[:k]
        results = []
        for position in selected:
            row = int(rows_kept[position])
            count = int(self._arrays.support_count[row])
            results.append(
                Recommendation(
                    items=self._items_from_words(masks[position]),
                    confidence=float(self._arrays.confidence[row]),
                    support=float(self._arrays.support[row]),
                    support_count=None if count < 0 else count,
                    antecedent=tuple(
                        self._arrays.universe[i]
                        for i in self._arrays.antecedents.row_indices(row)
                    ),
                    consequent=tuple(
                        self._arrays.universe[i]
                        for i in self._arrays.consequents.row_indices(row)
                    ),
                    rule_row=row,
                )
            )
        return results

    def _items_from_words(self, words: np.ndarray) -> tuple:
        """Decode one packed mask row to its items, canonical order."""
        universe = self._arrays.universe
        items = []
        for word_index, word in enumerate(words):
            value = int(word)
            while value:
                bit = value & -value
                items.append(universe[(word_index << 6) + bit.bit_length() - 1])
                value ^= bit
        return tuple(items)


def recommend_reference(arrays: RuleArrays, basket, k: int = 5) -> BasketQueryResult:
    """The slow object-level oracle of :meth:`Recommender.query`.

    Materialises every row of *arrays* as an
    :class:`~repro.core.rules.AssociationRule` and applies the module's
    match/score/rank semantics with plain Python sets — no index, no
    packing, no vectorisation.  ``Recommender(arrays).query(basket, k)``
    must return exactly this (the caller passes the recommender's own
    canonically sorted ``arrays`` so row-number tie-breaks line up).

    Parameters
    ----------
    arrays : RuleArrays
        Rule collection in the row order that defines tie-breaking.
    basket : iterable
        The partial basket's items.
    k : int
        Maximum number of distinct consequents to return.

    Returns
    -------
    BasketQueryResult
        Identical envelope to the vectorized engine.
    """
    if k < 1:
        raise InvalidParameterError(f"k must be positive, got {k}")
    position = {item: pos for pos, item in enumerate(arrays.universe)}
    known = {item for item in basket if item in position}
    matched = 0
    best: dict[frozenset, tuple] = {}
    for row, rule in enumerate(arrays.iter_rules()):
        if not set(rule.antecedent) <= known:
            continue
        matched += 1
        novel = frozenset(rule.consequent) - known
        if not novel:
            continue
        candidate = (-rule.confidence, -rule.support, row)
        current = best.get(novel)
        if current is None or candidate < current[0]:
            best[novel] = (candidate, row, rule)
    ranked = sorted(best.items(), key=lambda entry: entry[1][0])[:k]
    recommendations = tuple(
        Recommendation(
            items=tuple(sorted(novel, key=position.__getitem__)),
            confidence=rule.confidence,
            support=rule.support,
            support_count=rule.support_count,
            antecedent=tuple(sorted(rule.antecedent, key=position.__getitem__)),
            consequent=tuple(sorted(rule.consequent, key=position.__getitem__)),
            rule_row=row,
        )
        for novel, (_, row, rule) in ranked
    )
    return BasketQueryResult(
        recommendations=recommendations,
        matched_rules=matched,
        known_items=tuple(sorted(known, key=position.__getitem__)),
    )
