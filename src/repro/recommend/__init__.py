"""Top-k consequent recommendation over packed rule columns.

The user-facing query workload of the rule bases: given a *partial
basket* (a set of items already chosen), return the top-k consequents —
ranked by confidence, support as tiebreak — among all rules whose
antecedent is contained in the basket.  The package answers that query
at interactive latency over millions of stored rules:

``AntecedentIndex``
    A packed inverted index mapping universe item positions to the
    :class:`~repro.core.rulearrays.RuleArrays` rows whose antecedent
    contains the item (CSR postings), generalizing the size-bucketed
    containment index of ``ClosedItemsetFamily.closure_of``.
``Recommender``
    The vectorized match → score → rank kernel over one canonically
    sorted rule collection, with ``workers=`` sharding through the
    :mod:`repro.core.parallel` executor seam.
``recommend_reference``
    The slow object-level oracle: same semantics, one materialised
    :class:`~repro.core.rules.AssociationRule` at a time.  Tests assert
    the kernel equal to it; it is the specification.

See ``docs/recommend.md`` for the index layout, the scoring semantics
and the HTTP/CLI surfaces built on top (``POST /recommend``,
``repro recommend``).
"""

from .engine import (
    BASIS_PREFERENCE,
    BasketQueryResult,
    Recommendation,
    Recommender,
    preferred_basis,
    recommend_reference,
)
from .index import AntecedentIndex

__all__ = [
    "BASIS_PREFERENCE",
    "AntecedentIndex",
    "BasketQueryResult",
    "Recommendation",
    "Recommender",
    "preferred_basis",
    "recommend_reference",
]
