"""The packed inverted index from antecedent items to rule rows.

One :class:`AntecedentIndex` is built per rule collection and reused for
every query.  It generalizes the size-bucketed containment index
prototype of ``ClosedItemsetFamily.closure_of``: instead of bucketing
whole itemsets by cardinality, it stores CSR postings per *item* plus
the antecedent cardinality per *row*, so a subset probe against a basket
touches only the rows whose antecedent shares at least one item with the
basket — never the full collection.
"""

from __future__ import annotations

import numpy as np

from ..core.rulearrays import RuleArrays

__all__ = ["AntecedentIndex"]


class AntecedentIndex:
    """CSR postings from universe item positions to antecedent rows.

    For a basket ``B`` (a set of universe item positions) the matching
    rows — rules whose antecedent mask is a subset of ``B``'s mask — are
    exactly the rows whose posting multiplicity across ``B``'s lists
    equals their antecedent cardinality, plus the empty-antecedent rows,
    which match every basket.

    Parameters
    ----------
    arrays : RuleArrays
        The rule collection to index.  Row numbers reported by
        :meth:`matching_rows` refer to this collection's row order; pass
        canonically sorted arrays when deterministic tie-breaking across
        rebuilds matters (``Recommender`` does).

    Attributes
    ----------
    arrays : RuleArrays
        The indexed collection (shared, not copied).
    indptr : numpy.ndarray
        Int64 CSR offsets, one slot per universe position plus one: the
        postings of item position ``p`` are
        ``postings[indptr[p]:indptr[p + 1]]``.
    postings : numpy.ndarray
        Int64 row ids, ascending within each item's slice.
    antecedent_sizes : numpy.ndarray
        Int64 antecedent cardinality per row (packed popcount).
    always_rows : numpy.ndarray
        Rows with an *empty* antecedent (the Duquenne-Guigues basis
        legitimately holds such rules); they match every basket,
        including the empty one.
    max_antecedent_size : int
        Largest antecedent cardinality; ``<= 1`` enables the no-count
        fast path of :meth:`matching_rows`.
    """

    __slots__ = (
        "arrays",
        "indptr",
        "postings",
        "antecedent_sizes",
        "always_rows",
        "max_antecedent_size",
    )

    def __init__(self, arrays: RuleArrays) -> None:
        self.arrays = arrays
        n_items = len(arrays.universe)
        sizes = arrays.antecedents.row_counts()
        rows, cols = arrays.antecedents.nonzero()
        # Stable sort by item position: nonzero() emits row-major order,
        # so rows stay ascending within each item's postings slice.
        order = np.argsort(cols, kind="stable")
        postings = rows[order].astype(np.int64, copy=False)
        if cols.size:
            counts = np.bincount(cols, minlength=n_items)
        else:
            counts = np.zeros(n_items, dtype=np.int64)
        indptr = np.zeros(n_items + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self.indptr = indptr
        self.postings = postings
        self.antecedent_sizes = sizes
        self.always_rows = np.flatnonzero(sizes == 0).astype(np.int64)
        self.max_antecedent_size = int(sizes.max()) if sizes.size else 0
        for array in (
            self.indptr,
            self.postings,
            self.antecedent_sizes,
            self.always_rows,
        ):
            array.setflags(write=False)

    def __repr__(self) -> str:
        """Summarize the index as rule, item and posting counts."""
        return (
            f"AntecedentIndex(rules={len(self.arrays)}, "
            f"items={len(self.arrays.universe)}, "
            f"postings={self.postings.size})"
        )

    @property
    def nbytes(self) -> int:
        """Resident bytes of the index arrays (the shared rules excluded)."""
        return sum(
            array.nbytes
            for array in (
                self.indptr,
                self.postings,
                self.antecedent_sizes,
                self.always_rows,
            )
        )

    def matching_rows(self, positions: np.ndarray) -> np.ndarray:
        """Rows whose antecedent is contained in the given basket positions.

        Parameters
        ----------
        positions : numpy.ndarray
            Distinct universe item positions present in the basket (any
            order; items outside the universe must already be dropped —
            they cannot satisfy any antecedent bit).

        Returns
        -------
        numpy.ndarray
            Matching row ids, ascending int64.  Empty-antecedent rows
            are always included, so the empty basket returns exactly
            :attr:`always_rows`.
        """
        slices = [
            self.postings[self.indptr[p] : self.indptr[p + 1]] for p in positions
        ]
        slices = [s for s in slices if s.size]
        if not slices:
            return self.always_rows
        cat = np.concatenate(slices)
        if self.max_antecedent_size <= 1:
            # Single-item antecedents: every posting row is fully
            # covered by its one basket item and appears exactly once,
            # so the multiplicity count is a no-op.
            matched = np.sort(cat)
        else:
            candidates, multiplicity = np.unique(cat, return_counts=True)
            matched = candidates[multiplicity == self.antecedent_sizes[candidates]]
        if self.always_rows.size:
            matched = np.concatenate([self.always_rows, matched])
            matched.sort()
        return matched
