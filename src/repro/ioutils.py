"""Crash-safe file writing shared by every writer in the repository.

A process killed mid-write (OOM, SIGKILL, power loss) must never leave a
torn file behind: consumers of a half-written artifact store, basket
file or benchmark trajectory would fail in confusing ways long after the
crash.  :func:`atomic_write` gives every writer the same durable
convention:

1. write to a temporary file *in the destination directory* (same
   filesystem, so the final rename cannot degrade into a copy);
2. flush and ``fsync`` the temporary file so the bytes are on disk;
3. ``os.replace`` it over the destination — atomic on POSIX and
   Windows — so readers observe either the complete old file or the
   complete new file, never a mixture;
4. ``fsync`` the directory (best effort) so the rename itself survives
   a crash.

The temporary file is unlinked on any failure, so aborted writes leave
nothing behind but the untouched destination.
"""

from __future__ import annotations

import os
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write"]


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of *directory* (not supported everywhere)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - filesystem without dir-fsync
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(
    path: str | Path, mode: str = "w", encoding: str | None = None
) -> Iterator:
    """Open a handle whose contents replace *path* atomically on success.

    Parameters
    ----------
    path : str or Path
        Destination file.  Its parent directory must exist.
    mode : str
        ``"w"`` (text, the default) or ``"wb"`` (binary); append modes
        make no sense here and are rejected.
    encoding : str, optional
        Text encoding (text mode only); defaults to UTF-8.

    Yields
    ------
    file object
        A writable handle backed by a temporary file in the destination
        directory.  When the ``with`` body completes, the data is
        fsynced and atomically renamed over *path*; when it raises, the
        temporary file is removed and *path* is untouched.

    Raises
    ------
    ValueError
        If *mode* is not a plain write mode.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_write supports modes 'w' and 'wb', got {mode!r}")
    path = Path(path)
    if encoding is None and mode == "w":
        encoding = "utf-8"
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, encoding=encoding) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
