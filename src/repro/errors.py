"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses are raised where the distinction is actionable (bad input data
versus bad mining parameters versus internal invariant violations).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A mining parameter (support, confidence, ...) is out of range."""


class InvalidItemsetError(ReproError, ValueError):
    """An itemset refers to items that do not exist in the mining context."""


class EmptyDatabaseError(ReproError, ValueError):
    """An operation requires a non-empty transaction database."""


class DatasetFormatError(ReproError, ValueError):
    """A dataset file or in-memory payload does not match the expected format."""


class InconsistentRuleError(ReproError, ValueError):
    """An association rule violates a structural constraint.

    Raised for instance when the antecedent and consequent overlap, when a
    consequent is empty, or when a confidence/support value falls outside
    ``[0, 1]``.
    """


class DerivationError(ReproError, RuntimeError):
    """Rule derivation from a basis failed to reconstruct a required fact.

    This signals a violated invariant (the bases are supposed to be
    *generating sets*), so it is a bug either in the basis construction or
    in the derivation procedure rather than a user error.
    """


class NotMinedError(ReproError, RuntimeError):
    """A result was requested from an algorithm that has not been run yet."""


class StoreFormatError(ReproError, ValueError):
    """An on-disk artifact store cannot be read.

    Raised by :mod:`repro.store` for files that are not repro stores,
    carry an unsupported format version, or miss a section the caller
    asked for.
    """


class StoreIntegrityError(StoreFormatError):
    """An on-disk artifact store is corrupted.

    Raised by :mod:`repro.store` when integrity verification fails: a
    truncated or unreadable container, an array listed in the manifest
    but absent from the file (or vice versa), or array bytes whose
    SHA-256 digest no longer matches the digest recorded at save time.
    Subclasses :class:`StoreFormatError`, so every existing handler of
    unreadable stores (CLI error reporting, the serving daemon's
    keep-the-old-generation reload fallback) covers corruption too.
    """


class OracleMismatchError(ReproError, RuntimeError):
    """An incrementally repaired artifact disagrees with a fresh mine.

    Raised by :mod:`repro.incremental` when its delta-maintained
    families, generators or lattice fail the oracle comparison against a
    from-scratch mining run (``verify="oracle"``), or when an always-on
    internal consistency check (delta-counted support vs engine-counted
    support) trips.  Like :class:`DerivationError` this signals a bug in
    the maintenance algebra, not a user error.
    """


class MissingDependencyError(ReproError, ImportError):
    """An optional dependency needed for the requested feature is absent.

    Raised by the Arrow/Parquet export of :mod:`repro.store` when
    ``pyarrow`` is not installed; the core NPZ store never needs it.
    """
