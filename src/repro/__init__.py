"""repro — Mining bases for association rules using frequent closed itemsets.

Reproduction of Taouil, Pasquier, Bastide, Lakhal, *"Mining Bases for
Association Rules Using Closed Sets"*, ICDE 2000.

The package is organised in five sub-packages:

* :mod:`repro.core` — itemsets, the Galois connection, closed/pseudo-closed
  itemsets, the Duquenne-Guigues and Luxenburger bases, rule derivation;
* :mod:`repro.data` — the transaction-database substrate, dataset I/O and
  the synthetic dataset generators used by the experiments;
* :mod:`repro.engine` — the batch closure engines (vectorised numpy and
  vertical bitset backends) every algorithm evaluates covers/closures on;
* :mod:`repro.algorithms` — Apriori (baseline), Close, A-Close and CHARM;
* :mod:`repro.analysis` — interestingness metrics and dataset statistics;
* :mod:`repro.experiments` — the harness regenerating every table and
  figure of the evaluation, plus the ``repro`` CLI.

Quickstart
----------
>>> from repro import TransactionDatabase, Close, Apriori
>>> from repro import build_duquenne_guigues_basis, LuxenburgerBasis
>>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
...                           ["a", "b", "c", "e"], ["b", "e"],
...                           ["a", "b", "c", "e"]])
>>> closed = Close(minsup=0.4).mine(db)
>>> frequent = Apriori(minsup=0.4).mine(db)
>>> dg = build_duquenne_guigues_basis(frequent, closed)
>>> lux = LuxenburgerBasis(closed, minconf=0.5)
"""

from ._version import __version__
from .algorithms.aclose import AClose
from .algorithms.apriori import Apriori
from .algorithms.charm import Charm
from .algorithms.close import Close
from .algorithms.rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)
from .bases import (
    BasisContext,
    BuiltBasis,
    RuleBasis,
    available_bases,
    build_bases,
    register_basis,
)
from .core.closure import GaloisConnection
from .core.concept import FormalConcept, enumerate_concepts
from .core.derivation import BasisDerivation
from .core.dg_basis import DuquenneGuiguesBasis, build_duquenne_guigues_basis
from .core.families import ClosedItemsetFamily, ItemsetFamily
from .core.generators import GeneratorFamily
from .core.informative import GenericBasis, InformativeBasis
from .core.itemset import Itemset
from .core.lattice import IcebergLattice
from .core.luxenburger import LuxenburgerBasis, build_luxenburger_basis
from .core.pseudo_closed import PseudoClosedItemset, frequent_pseudo_closed_itemsets
from .core.rules import AssociationRule, RuleSet
from .data.context import TransactionDatabase
from .data.io import load_basket_file, load_tabular_file, save_basket_file
from .engine import (
    BitsetClosureEngine,
    ClosureEngine,
    NumpyClosureEngine,
    make_engine,
)
from .data.synthetic import QuestGenerator, make_quest_dataset
from .errors import (
    DatasetFormatError,
    DerivationError,
    EmptyDatabaseError,
    InconsistentRuleError,
    InvalidItemsetError,
    InvalidParameterError,
    MissingDependencyError,
    ReproError,
    StoreFormatError,
)

__all__ = [
    "__version__",
    # core types
    "Itemset",
    "AssociationRule",
    "RuleSet",
    "ItemsetFamily",
    "ClosedItemsetFamily",
    "GaloisConnection",
    "FormalConcept",
    "enumerate_concepts",
    "IcebergLattice",
    "GeneratorFamily",
    # bases
    "PseudoClosedItemset",
    "frequent_pseudo_closed_itemsets",
    "DuquenneGuiguesBasis",
    "build_duquenne_guigues_basis",
    "LuxenburgerBasis",
    "build_luxenburger_basis",
    "GenericBasis",
    "InformativeBasis",
    "BasisDerivation",
    # bases registry
    "BasisContext",
    "BuiltBasis",
    "RuleBasis",
    "available_bases",
    "build_bases",
    "register_basis",
    # engines
    "ClosureEngine",
    "NumpyClosureEngine",
    "BitsetClosureEngine",
    "make_engine",
    # data
    "TransactionDatabase",
    "load_basket_file",
    "load_tabular_file",
    "save_basket_file",
    "QuestGenerator",
    "make_quest_dataset",
    # algorithms
    "Apriori",
    "Close",
    "AClose",
    "Charm",
    "generate_all_rules",
    "generate_exact_rules",
    "generate_approximate_rules",
    # errors
    "ReproError",
    "InvalidParameterError",
    "InvalidItemsetError",
    "EmptyDatabaseError",
    "DatasetFormatError",
    "InconsistentRuleError",
    "DerivationError",
    "StoreFormatError",
    "MissingDependencyError",
]
