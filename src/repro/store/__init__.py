"""On-disk artifact store: persist a mining run, serve it many times.

The store subsystem turns the in-memory artifacts of a run — context,
frequent/closed families, minimal generators, the packed lattice order
core and the columnar rule bases — into one versioned ``.npz`` container
(:mod:`repro.store.npz`), plus an optional Arrow/Parquet export of the
rule columns for out-of-process consumers (:mod:`repro.store.arrow`,
behind a soft ``pyarrow`` dependency).

The crucial property is that loading is *cheap*: the lattice order core
is rehydrated from its stored containment words and Hasse edges, so a
``repro bases --from-store`` warm start skips mining and the O(n²)
lattice construction entirely, and round-trips are exact — the loaded
arrays are byte-identical to the saved ones (asserted by the store
round-trip tests).
"""

from .arrow import (
    EXPORT_FORMATS,
    arrow_available,
    export_rule_arrays,
    rule_arrays_to_table,
)
from .integrity import (
    DIGEST_ALGORITHM,
    VERIFY_MODES,
    array_digest,
    compute_digests,
    verify_container,
)
from .npz import (
    FORMAT_NAME,
    FORMAT_VERSION,
    StoredRun,
    load_run,
    read_manifest,
    save_run,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "StoredRun",
    "save_run",
    "load_run",
    "read_manifest",
    "arrow_available",
    "rule_arrays_to_table",
    "export_rule_arrays",
    "EXPORT_FORMATS",
    "DIGEST_ALGORITHM",
    "VERIFY_MODES",
    "array_digest",
    "compute_digests",
    "verify_container",
]
