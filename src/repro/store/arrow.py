"""Arrow / Parquet export of the columnar rule store (soft ``pyarrow``).

Out-of-process consumers (notebooks, DuckDB, Spark, a serving tier) want
the rule bases as ordinary analytical tables, not as packed uint64
masks.  This module converts a :class:`~repro.core.rulearrays.RuleArrays`
into a :mod:`pyarrow` table — antecedent and consequent as list columns
of item strings, the three statistics as plain numeric columns — and
writes it as Parquet or Arrow IPC (Feather).

``pyarrow`` is a *soft* dependency: importing this module never fails,
:func:`arrow_available` reports whether the export can run, and the
conversion functions raise a clear
:class:`~repro.errors.MissingDependencyError` when it cannot.  The list
columns are assembled from the packed masks' ``nonzero`` scan (offsets +
values, the native Arrow list layout), streamed over
:meth:`~repro.core.rulearrays.RuleArrays.iter_blocks` so a million-rule
export never unpacks the whole mask matrix at once.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.rulearrays import RuleArrays
from ..errors import InvalidParameterError, MissingDependencyError

try:  # pragma: no cover - exercised only where pyarrow is installed
    import pyarrow as _pyarrow
except ImportError:  # pragma: no cover - the common CI environment
    _pyarrow = None

__all__ = [
    "arrow_available",
    "rule_arrays_to_table",
    "export_rule_arrays",
    "EXPORT_FORMATS",
]

#: File formats :func:`export_rule_arrays` can write.
EXPORT_FORMATS = ("parquet", "feather")


def arrow_available() -> bool:
    """Whether ``pyarrow`` is importable in this environment."""
    return _pyarrow is not None


def _require_pyarrow():
    if _pyarrow is None:
        raise MissingDependencyError(
            "the Arrow/Parquet export needs the optional 'pyarrow' package; "
            "install it (pip install pyarrow) or use the NPZ store instead"
        )
    return _pyarrow


def _list_column(pa, blocks, side: str, universe_labels: np.ndarray):
    """One side's masks as a chunked Arrow ``list<string>`` column."""
    chunks = []
    for block in blocks:
        matrix = getattr(block, side)
        rows, cols = matrix.nonzero()
        offsets = np.zeros(matrix.n_rows + 1, dtype=np.int32)
        np.cumsum(np.bincount(rows, minlength=matrix.n_rows), out=offsets[1:])
        values = pa.array(universe_labels[cols])
        chunks.append(pa.ListArray.from_arrays(pa.array(offsets), values))
    if not chunks:
        return pa.array([], type=pa.list_(pa.string()))
    return pa.chunked_array(chunks)


def rule_arrays_to_table(
    arrays: RuleArrays, block_rows: int | None = None
):
    """A :class:`RuleArrays` as a ``pyarrow.Table``.

    Columns: ``antecedent`` / ``consequent`` (``list<string>`` of item
    labels, ascending item order), ``support``, ``confidence`` (float64)
    and ``support_count`` (int64, ``-1`` = unknown).  The masks are
    unpacked block by block (``block_rows``; ``None`` = auto size), so
    the peak temporary stays bounded however many rules are exported.
    """
    pa = _require_pyarrow()
    labels = np.array([str(item) for item in arrays.universe])
    blocks = list(arrays.iter_blocks(block_rows))
    table = pa.table(
        {
            "antecedent": _list_column(pa, blocks, "antecedents", labels),
            "consequent": _list_column(pa, blocks, "consequents", labels),
            "support": pa.array(np.asarray(arrays.support)),
            "confidence": pa.array(np.asarray(arrays.confidence)),
            "support_count": pa.array(np.asarray(arrays.support_count)),
        }
    )
    return table


def export_rule_arrays(
    arrays: RuleArrays,
    path: str | Path,
    format: str | None = None,
    block_rows: int | None = None,
) -> Path:
    """Write the rule columns to *path* as Parquet or Arrow IPC.

    ``format`` is ``"parquet"`` or ``"feather"``; ``None`` infers it from
    the file suffix (``.parquet`` / ``.feather`` / ``.arrow``, defaulting
    to Parquet).  Returns the path written.
    """
    _require_pyarrow()
    path = Path(path)
    if format is None:
        suffix = path.suffix.lower()
        format = "feather" if suffix in (".feather", ".arrow", ".ipc") else "parquet"
    if format not in EXPORT_FORMATS:
        raise InvalidParameterError(
            f"unknown export format {format!r}; expected one of "
            f"{', '.join(EXPORT_FORMATS)}"
        )
    table = rule_arrays_to_table(arrays, block_rows=block_rows)
    if format == "parquet":
        from pyarrow import parquet

        parquet.write_table(table, path)
    else:
        from pyarrow import feather

        feather.write_feather(table, path)
    return path
