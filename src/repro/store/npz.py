"""The versioned NPZ artifact store: mine once, serve many times.

Everything a mining run produces — the transaction context, the frequent
and frequent-closed families, the minimal generators, the packed lattice
order core and the columnar rule bases — is a function of arrays this
library already holds in packed form.  This module writes those arrays
into one compressed ``.npz`` container (plain numpy, no pickling, no
optional dependencies) and rehydrates them without redoing any of the
expensive work: a loaded lattice adopts the stored containment words and
Hasse edges through :meth:`~repro.core.order.PackedOrderCore.from_parts`
instead of re-running the O(n²) construction passes.

Container layout (flat keys, ``__``-separated)::

    manifest                      uint8 row of UTF-8 JSON (format name,
                                  version, section index, run metadata)
    context__indptr               CSR row offsets of the relation
    context__item_ids             item column per relation pair
    context__items                item universe (int64 or unicode)
    frequent__words/__counts/__universe    packed family rows + supports
    closed__words/__counts/__universe      idem, the closed family
    generators__words             packed generator rows (closed universe)
    generators__closure_index     row -> canonical closed-member index
    order__words                  packed strict-containment BitMatrix
    order__rows / order__cols     Hasse edge index arrays
    rules__<name>__antecedents/__consequents/__support/__confidence/
        __support_count/__universe         one RuleArrays per basis

Every section is optional except the manifest; :func:`load_run` returns
whatever the file holds.  Items must be strings or integers — the two
kinds every dataset loader and generator in this library produces — so
the container never needs ``allow_pickle``.

The format is versioned (:data:`FORMAT_VERSION`); readers reject files
with a different major version loudly instead of mis-parsing them.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from ..core.bitmatrix import BitMatrix
from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.generators import GeneratorFamily
from ..core.itemset import Item, Itemset
from ..core.lattice import IcebergLattice
from ..core.order import PackedOrderCore, pack_itemset_masks
from ..core.rulearrays import RuleArrays, pack_itemsets_into, sorted_universe
from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError, StoreFormatError, StoreIntegrityError
from ..ioutils import atomic_write
from .integrity import (
    DIGEST_ALGORITHM,
    compute_digests,
    resolve_verify_mode,
    verify_container,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "StoredRun",
    "save_run",
    "load_run",
    "read_manifest",
]

#: Identifies the container type inside the manifest.
FORMAT_NAME = "repro-store"

#: Major format version; bumped on any incompatible layout change.
#: Readers refuse other versions rather than guessing.
FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Item-universe codec
# ----------------------------------------------------------------------
def _encode_items(items: Sequence[Item]) -> np.ndarray:
    """Items as a native numpy array (no pickling): unicode or int64."""
    values = list(items)
    if not values:
        return np.zeros(0, dtype="<U1")
    if all(isinstance(v, str) for v in values):
        return np.array(values)
    if all(
        isinstance(v, (int, np.integer)) and not isinstance(v, bool) for v in values
    ):
        return np.array([int(v) for v in values], dtype=np.int64)
    raise StoreFormatError(
        "the artifact store holds items as strings or integers; got mixed "
        f"or unsupported item types in {values[:5]!r}..."
    )


def _decode_items(array: np.ndarray) -> tuple[Item, ...]:
    """Inverse of :func:`_encode_items`."""
    if array.dtype.kind == "U":
        return tuple(str(value) for value in array.tolist())
    if array.dtype.kind in ("i", "u"):
        return tuple(int(value) for value in array.tolist())
    raise StoreFormatError(f"unsupported stored item dtype {array.dtype}")


def _decode_members(matrix: BitMatrix, universe: Sequence[Item]) -> list[Itemset]:
    """Unpack every mask row back into an :class:`Itemset`, row order kept."""
    rows, cols = matrix.nonzero()
    per_row = np.bincount(rows, minlength=matrix.n_rows)
    members: list[Itemset] = []
    position = 0
    for row in range(matrix.n_rows):
        stop = position + int(per_row[row])
        members.append(Itemset(universe[col] for col in cols[position:stop]))
        position = stop
    return members


# ----------------------------------------------------------------------
# Section encoders
# ----------------------------------------------------------------------
def _family_section(prefix: str, family: ItemsetFamily, payload: dict) -> dict:
    """Pack one itemset family into ``payload``; return its manifest entry."""
    members = family.itemsets()
    universe = sorted_universe(item for member in members for item in member)
    payload[f"{prefix}__words"] = pack_itemsets_into(members, universe).words
    payload[f"{prefix}__counts"] = np.array(
        [family.support_count(member) for member in members], dtype=np.int64
    )
    payload[f"{prefix}__universe"] = _encode_items(universe)
    return {
        "n_members": len(members),
        "n_objects": family.n_objects,
        "minsup_count": family.minsup_count,
    }


def _load_family(
    prefix: str, data, entry: dict, closed: bool
) -> ItemsetFamily | ClosedItemsetFamily:
    universe = _decode_items(data[f"{prefix}__universe"])
    matrix = BitMatrix(data[f"{prefix}__words"], len(universe))
    counts = data[f"{prefix}__counts"]
    members = _decode_members(matrix, universe)
    supports = dict(zip(members, (int(c) for c in counts)))
    cls = ClosedItemsetFamily if closed else ItemsetFamily
    return cls(
        supports,
        n_objects=int(entry["n_objects"]),
        minsup_count=int(entry["minsup_count"]),
    )


def _rules_section(name: str, arrays: RuleArrays, payload: dict) -> None:
    prefix = f"rules__{name}"
    payload[f"{prefix}__antecedents"] = arrays.antecedents.words
    payload[f"{prefix}__consequents"] = arrays.consequents.words
    payload[f"{prefix}__support"] = arrays.support
    payload[f"{prefix}__confidence"] = arrays.confidence
    payload[f"{prefix}__support_count"] = arrays.support_count
    payload[f"{prefix}__universe"] = _encode_items(arrays.universe)


def _load_rules(name: str, data) -> RuleArrays:
    prefix = f"rules__{name}"
    universe = _decode_items(data[f"{prefix}__universe"])
    return RuleArrays(
        BitMatrix(data[f"{prefix}__antecedents"], len(universe)),
        BitMatrix(data[f"{prefix}__consequents"], len(universe)),
        universe,
        data[f"{prefix}__support"],
        data[f"{prefix}__confidence"],
        data[f"{prefix}__support_count"],
    )


def _json_safe(value):
    """Best-effort JSON coercion for basis metadata (numpy scalars, etc.)."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


# ----------------------------------------------------------------------
# The stored run
# ----------------------------------------------------------------------
@dataclass
class StoredRun:
    """Everything :func:`load_run` rehydrated from one container.

    Sections absent from the file are ``None`` (or empty for the rule
    mapping).  The lattice, when present, carries the *stored* packed
    order core — no containment or reduction pass ran to build it.
    """

    path: Path
    manifest: dict
    database: TransactionDatabase | None = None
    frequent: ItemsetFamily | None = None
    closed: ClosedItemsetFamily | None = None
    generators: GeneratorFamily | None = None
    lattice: IcebergLattice | None = None
    rule_arrays: dict[str, RuleArrays] = field(default_factory=dict)
    basis_kinds: dict[str, str] = field(default_factory=dict)
    basis_metadata: dict[str, dict] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Dataset name recorded at save time (``"unnamed"`` when absent).

        The manifest always carries the ``name`` key (possibly null), so
        the fallback must trigger on ``None``, not on a missing key.
        """
        value = self.manifest.get("dataset", {}).get("name")
        return "unnamed" if value is None else str(value)

    @property
    def minsup(self) -> float | None:
        """Relative minimum support of the stored run, if recorded."""
        value = self.manifest.get("minsup")
        return None if value is None else float(value)

    @property
    def minconf(self) -> float | None:
        """Minimum confidence of the stored run, if recorded."""
        value = self.manifest.get("minconf")
        return None if value is None else float(value)

    @property
    def sections(self) -> tuple[str, ...]:
        """The sections present in the container."""
        return tuple(self.manifest.get("sections", ()))

    def require(self, section: str):
        """The section's object, or a clear error naming what is missing."""
        attribute = {
            "context": "database",
            "frequent": "frequent",
            "closed": "closed",
            "generators": "generators",
            "order": "lattice",
        }.get(section)
        if attribute is None:
            raise InvalidParameterError(f"unknown store section {section!r}")
        value = getattr(self, attribute)
        if value is None:
            raise StoreFormatError(
                f"store {self.path} has no {section!r} section "
                f"(sections: {', '.join(self.sections) or 'none'})"
            )
        return value


# ----------------------------------------------------------------------
# Save / load
# ----------------------------------------------------------------------
def save_run(
    path: str | Path,
    *,
    database: TransactionDatabase | None = None,
    frequent: ItemsetFamily | None = None,
    closed: ClosedItemsetFamily | None = None,
    generators: GeneratorFamily | None = None,
    lattice: IcebergLattice | None = None,
    rule_arrays: Mapping[str, RuleArrays] | None = None,
    basis_kinds: Mapping[str, str] | None = None,
    basis_metadata: Mapping[str, Mapping] | None = None,
    name: str | None = None,
    minsup: float | None = None,
    minconf: float | None = None,
    extra: Mapping | None = None,
) -> Path:
    """Write one mining run into a versioned ``.npz`` container.

    Every section argument is optional; only the supplied sections are
    written, and the manifest indexes what is present.

    Parameters
    ----------
    path : str or Path
        Destination file (conventionally ``.npz``).
    database, frequent, closed, generators, lattice : optional
        The run's sections.  ``lattice`` must have been built over
        ``closed`` — the loaded order core is re-attached to the loaded
        family by member index.
    rule_arrays : mapping of str to RuleArrays, optional
        One entry per basis to store, keyed by basis name.
    basis_kinds, basis_metadata : mapping, optional
        Per-basis registry kind and construction metadata, recorded in
        the manifest (metadata is JSON-coerced).
    name, minsup, minconf : optional
        Run identity recorded in the manifest.
    extra : mapping, optional
        Arbitrary caller JSON stored under the manifest's ``extra`` key.

    Returns
    -------
    Path
        The path written.
    """
    path = Path(path)
    payload: dict[str, np.ndarray] = {}
    manifest: dict = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "dataset": {"name": name or (database.name if database is not None else None)},
        "minsup": minsup,
        "minconf": minconf,
        "sections": [],
        "families": {},
        "bases": [],
        "extra": _json_safe(dict(extra)) if extra else {},
    }

    if database is not None:
        matrix = database.matrix
        rows, cols = np.nonzero(matrix)
        indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(rows, minlength=database.n_objects)))
        )
        payload["context__indptr"] = indptr.astype(np.int64)
        payload["context__item_ids"] = cols.astype(np.int64)
        payload["context__items"] = _encode_items(database.items)
        manifest["dataset"].update(
            {"n_objects": database.n_objects, "n_items": database.n_items}
        )
        manifest["sections"].append("context")

    if frequent is not None:
        manifest["families"]["frequent"] = _family_section(
            "frequent", frequent, payload
        )
        manifest["sections"].append("frequent")

    if closed is not None:
        manifest["families"]["closed"] = _family_section("closed", closed, payload)
        manifest["sections"].append("closed")

    if generators is not None:
        if closed is None:
            raise InvalidParameterError(
                "storing generators requires storing their closed family too"
            )
        if generators.closed_family is not closed:
            raise InvalidParameterError(
                "the generator family was built from a different closed family"
            )
        members = closed.itemsets()
        position = {member: index for index, member in enumerate(members)}
        universe = sorted_universe(item for member in members for item in member)
        gen_matrix, closures, _ = generators.packed_masks(universe)
        payload["generators__words"] = gen_matrix.words
        payload["generators__closure_index"] = np.array(
            [position[closure] for closure in closures], dtype=np.int64
        )
        manifest["sections"].append("generators")

    if lattice is not None:
        if closed is None:
            raise InvalidParameterError(
                "storing a lattice requires storing its closed family too"
            )
        if lattice.closed_family is not closed:
            raise InvalidParameterError(
                "the lattice was built from a different closed family"
            )
        hasse_rows, hasse_cols = lattice.hasse_edge_indices()
        payload["order__words"] = lattice.order_core.packed_containment_matrix().words
        payload["order__rows"] = np.asarray(hasse_rows, dtype=np.int64)
        payload["order__cols"] = np.asarray(hasse_cols, dtype=np.int64)
        manifest["order"] = {
            "strategy": lattice.strategy,
            "n": len(lattice),
            "n_edges": lattice.edge_count(),
        }
        manifest["sections"].append("order")

    if rule_arrays:
        for basis_name, arrays in rule_arrays.items():
            _rules_section(basis_name, arrays, payload)
            manifest["bases"].append(
                {
                    "name": basis_name,
                    "kind": (basis_kinds or {}).get(basis_name),
                    "rules": len(arrays),
                    "metadata": _json_safe(
                        dict((basis_metadata or {}).get(basis_name, {}))
                    ),
                }
            )
        manifest["sections"].append("rules")

    # Per-array SHA-256 digests let a reader verify the container end to
    # end (``load_run(verify=...)``) long after any transport or storage
    # layer could have corrupted it.
    manifest["integrity"] = {
        "algorithm": DIGEST_ALGORITHM,
        "arrays": compute_digests(payload),
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
    payload["manifest"] = np.frombuffer(manifest_bytes, dtype=np.uint8)
    # Crash-safe write: a `repro save` killed mid-write leaves either the
    # complete old file or the complete new file, never a torn container.
    with atomic_write(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def _parse_manifest(raw: np.ndarray, source: str | Path) -> dict:
    try:
        manifest = json.loads(np.asarray(raw, dtype=np.uint8).tobytes().decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreFormatError(f"{source}: unreadable store manifest ({exc})") from None
    if manifest.get("format") != FORMAT_NAME:
        raise StoreFormatError(
            f"{source} is not a {FORMAT_NAME} container "
            f"(format={manifest.get('format')!r})"
        )
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{source} uses store format version {version!r}; this reader "
            f"supports version {FORMAT_VERSION}"
        )
    return manifest


def _open_container(path: Path):
    """``np.load`` with every not-an-NPZ failure mapped to StoreFormatError.

    numpy's own errors here are misleading (a text file surfaces as a
    pickle complaint, a truncated one as BadZipFile); the documented
    contract is one loud :class:`~repro.errors.StoreFormatError` for
    anything that is not a readable store container.
    """
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise StoreFormatError(f"store file not found: {path}") from None
    except (ValueError, OSError, zipfile.BadZipFile, zlib.error, EOFError) as exc:
        # Truncated or otherwise undecodable bytes are an integrity
        # failure (the file existed but cannot be what was saved), which
        # subclasses the documented StoreFormatError contract.
        raise StoreIntegrityError(
            f"{path} is not a readable store container ({exc})"
        ) from None


def read_manifest(path: str | Path) -> dict:
    """The validated manifest of a container, without loading any section."""
    path = Path(path)
    with _open_container(path) as data:
        if "manifest" not in data:
            raise StoreFormatError(f"{path} has no store manifest")
        return _parse_manifest(data["manifest"], path)


def load_run(
    path: str | Path,
    sections: Iterable[str] | None = None,
    retain_containment: bool = True,
    verify: str = "manifest",
) -> StoredRun:
    """Rehydrate a container written by :func:`save_run`.

    The returned lattice wraps the *stored* order core — no containment
    or transitive-reduction pass runs on load.

    Parameters
    ----------
    path : str or Path
        A container written by :func:`save_run`.
    sections : iterable of str, optional
        Restrict loading to the named sections (dependencies included
        automatically: generators and the lattice both need the closed
        family).  Sections the file does not hold are skipped — use
        :meth:`StoredRun.require` for a clear error when one is
        mandatory.  ``None`` loads everything the file holds.
    retain_containment : bool
        When ``False`` the order section is rehydrated CSR-only: the
        stored ``order__words`` array (the packed ``n**2 / 8``-byte
        containment relation) is never decompressed; the lattice adopts
        just the Hasse edge arrays plus the ``O(n x words)`` member
        masks and answers containment queries by mask probing.  The
        memory-lean warm-start mode of query-only consumers such as
        ``repro serve``.
    verify : str
        Integrity verification mode (see :mod:`repro.store.integrity`):
        ``"manifest"`` (the default) cross-checks the manifest's array
        inventory against the container, ``"full"`` additionally
        recomputes every array's SHA-256 digest, ``"off"`` skips
        verification entirely.

    Returns
    -------
    StoredRun
        One attribute per loaded section; absent sections are ``None``.

    Raises
    ------
    StoreFormatError
        When the file is not a store container or its format name or
        version does not match this reader.
    StoreIntegrityError
        When the container fails integrity verification (truncated or
        undecodable file, missing/extra arrays, digest mismatch).
    """
    path = Path(path)
    resolve_verify_mode(verify)
    with _open_container(path) as data:
        if "manifest" not in data:
            raise StoreFormatError(f"{path} has no store manifest")
        manifest = _parse_manifest(data["manifest"], path)
        verify_container(data, manifest, path, verify)
        present = set(manifest.get("sections", []))
        wanted = present if sections is None else set(sections) & present
        if wanted & {"generators", "order"}:
            wanted.add("closed")
        wanted &= present

        run = StoredRun(path=path, manifest=manifest)
        try:
            _load_sections(run, data, manifest, wanted, retain_containment)
        except (zipfile.BadZipFile, zlib.error, EOFError, KeyError) as exc:
            # A flipped byte inside a compressed member surfaces as a
            # zip/zlib decode failure (or a missing key) at read time;
            # map it to the documented corruption error regardless of
            # the verify mode in effect.
            raise StoreIntegrityError(
                f"{path}: container section data is corrupted ({exc!r})"
            ) from None
        return run


def _load_sections(
    run: StoredRun, data, manifest: dict, wanted: set[str], retain_containment: bool
) -> None:
    """Populate *run* with the *wanted* sections of an opened container."""
    if "context" in wanted:
        items = _decode_items(data["context__items"])
        indptr = data["context__indptr"]
        item_ids = data["context__item_ids"]
        transactions = [
            [items[c] for c in item_ids[indptr[i] : indptr[i + 1]]]
            for i in range(len(indptr) - 1)
        ]
        run.database = TransactionDatabase(
            transactions, item_order=items, name=run.name
        )

    families = manifest.get("families", {})
    if "frequent" in wanted:
        run.frequent = _load_family(
            "frequent", data, families["frequent"], closed=False
        )
    if "closed" in wanted:
        run.closed = _load_family("closed", data, families["closed"], closed=True)

    if "generators" in wanted:
        members = run.closed.itemsets()
        universe = sorted_universe(
            item for member in members for item in member
        )
        gen_matrix = BitMatrix(data["generators__words"], len(universe))
        closure_index = data["generators__closure_index"]
        generator_sets = _decode_members(gen_matrix, universe)
        by_closure: dict[Itemset, list[Itemset]] = {}
        for index, generator in zip(closure_index, generator_sets):
            by_closure.setdefault(members[int(index)], []).append(generator)
        run.generators = GeneratorFamily(run.closed, by_closure)

    if "order" in wanted:
        if retain_containment:
            n = int(manifest["order"]["n"])
            core = PackedOrderCore.from_parts(
                BitMatrix(data["order__words"], n),
                data["order__rows"],
                data["order__cols"],
            )
        else:
            masks, _ = pack_itemset_masks(run.closed.itemsets())
            core = PackedOrderCore.from_edges(
                masks,
                data["order__rows"],
                data["order__cols"],
            )
        run.lattice = IcebergLattice(run.closed, order_core=core)

    if "rules" in wanted:
        for entry in manifest.get("bases", []):
            basis_name = entry["name"]
            run.rule_arrays[basis_name] = _load_rules(basis_name, data)
            if entry.get("kind"):
                run.basis_kinds[basis_name] = entry["kind"]
            run.basis_metadata[basis_name] = dict(entry.get("metadata", {}))
