"""End-to-end integrity verification of the NPZ artifact store.

The mine-once/serve-many pipeline trusts its store files for a long
time: a container written today may be hot-reloaded into a serving
daemon weeks later, after passing through object stores, rsyncs and
backup restores — any of which can flip a bit.  The zip layer's CRC-32
catches most transport damage, but only for the arrays a reader happens
to decompress, only when numpy surfaces the failure readably, and with
32 bits of protection.  This module adds an explicit, end-to-end check:

* at **save** time, :func:`compute_digests` records one SHA-256 digest
  per stored array (over dtype, shape and raw bytes) into the
  manifest's ``integrity`` section;
* at **load** time, :func:`verify_container` replays the check behind
  three modes — ``"manifest"`` (structural: every manifest-listed
  array present in the file and vice versa, digests recorded),
  ``"full"`` (additionally decompress every array and compare its
  SHA-256 against the manifest) and ``"off"``.

Every failure raises :class:`~repro.errors.StoreIntegrityError` naming
the first offending array, so a corrupted store is rejected loudly at
load instead of serving wrong answers quietly.
"""

from __future__ import annotations

import hashlib
import zipfile
import zlib

import numpy as np

from ..errors import InvalidParameterError, StoreIntegrityError

__all__ = [
    "DIGEST_ALGORITHM",
    "VERIFY_MODES",
    "array_digest",
    "compute_digests",
    "resolve_verify_mode",
    "verify_container",
]

#: The digest algorithm recorded in (and required by) the manifest.
DIGEST_ALGORITHM = "sha256"

#: Accepted values of the ``verify=`` parameter of ``load_run`` and the
#: ``repro serve --verify`` flag, weakest first.
VERIFY_MODES = ("off", "manifest", "full")


def array_digest(array: np.ndarray) -> str:
    """Return the hex SHA-256 digest of one stored array.

    The digest covers the dtype string, the shape and the raw C-order
    bytes, so any single-bit change to the data — and any silent dtype
    or shape reinterpretation — produces a different digest.

    Parameters
    ----------
    array : numpy.ndarray
        The array exactly as written into (or read back from) the
        container.

    Returns
    -------
    str
        Lowercase hexadecimal SHA-256 digest.
    """
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(contiguous.dtype.str.encode("ascii"))
    digest.update(repr(tuple(contiguous.shape)).encode("ascii"))
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


def compute_digests(payload: dict[str, np.ndarray]) -> dict[str, str]:
    """Digest every array of a save payload (the manifest key excluded).

    Parameters
    ----------
    payload : dict[str, numpy.ndarray]
        The arrays about to be written, keyed by container name.  The
        ``"manifest"`` entry — which will itself *carry* the digests —
        is skipped.

    Returns
    -------
    dict[str, str]
        Container key to hex digest, sorted by key.
    """
    return {
        key: array_digest(array)
        for key, array in sorted(payload.items())
        if key != "manifest"
    }


def resolve_verify_mode(verify: str) -> str:
    """Validate a ``verify=`` argument against :data:`VERIFY_MODES`."""
    if verify not in VERIFY_MODES:
        raise InvalidParameterError(
            f"verify must be one of {', '.join(VERIFY_MODES)}; got {verify!r}"
        )
    return verify


def verify_container(data, manifest: dict, source, verify: str) -> None:
    """Check one opened container against its manifest's integrity section.

    Parameters
    ----------
    data : numpy.lib.npyio.NpzFile
        The opened container.
    manifest : dict
        Its already-parsed and version-checked manifest.
    source : str or Path
        The file path, for error messages.
    verify : str
        One of :data:`VERIFY_MODES`.  ``"off"`` returns immediately;
        ``"manifest"`` checks the array inventory both ways;
        ``"full"`` additionally decompresses every array and compares
        its SHA-256 digest against the recorded one.

    Raises
    ------
    StoreIntegrityError
        On a missing integrity section, an unknown digest algorithm, an
        array listed but absent (or present but unlisted), an array
        whose compressed bytes cannot be decoded, or a digest mismatch.
    InvalidParameterError
        When *verify* is not a recognized mode.
    """
    if resolve_verify_mode(verify) == "off":
        return
    integrity = manifest.get("integrity")
    if not isinstance(integrity, dict) or "arrays" not in integrity:
        raise StoreIntegrityError(
            f"{source}: the manifest carries no integrity section; "
            "cannot verify (re-save the store, or load with verify='off')"
        )
    algorithm = integrity.get("algorithm")
    if algorithm != DIGEST_ALGORITHM:
        raise StoreIntegrityError(
            f"{source}: unsupported integrity digest algorithm "
            f"{algorithm!r} (this reader verifies {DIGEST_ALGORITHM})"
        )
    recorded: dict = integrity["arrays"]
    listed = set(recorded)
    present = set(data.files) - {"manifest"}
    missing = sorted(listed - present)
    if missing:
        raise StoreIntegrityError(
            f"{source}: array(s) listed in the manifest are missing from "
            f"the container: {', '.join(missing)}"
        )
    unlisted = sorted(present - listed)
    if unlisted:
        raise StoreIntegrityError(
            f"{source}: container holds array(s) the manifest never "
            f"recorded: {', '.join(unlisted)}"
        )
    if verify != "full":
        return
    for key in sorted(listed):
        try:
            actual = array_digest(data[key])
        except (ValueError, OSError, zipfile.BadZipFile, zlib.error, EOFError) as exc:
            raise StoreIntegrityError(
                f"{source}: array {key!r} is unreadable ({exc})"
            ) from None
        if actual != recorded[key]:
            raise StoreIntegrityError(
                f"{source}: array {key!r} failed {DIGEST_ALGORITHM} "
                f"verification (stored {recorded[key][:12]}..., "
                f"computed {actual[:12]}...)"
            )
