"""Sliding-window streaming mode over the incremental update core.

A bounded window of the most recent transactions, kept mined: every
:meth:`SlidingWindow.append` evicts the oldest objects past the
capacity, appends the batch, and repairs the mined artifacts through
:func:`repro.incremental.update.update_mining` — the same damage-based
maintenance, with the evicted rows as the removed set.  At capacity the
window size is constant, so the absolute support threshold never drops
and the incremental path stays valid on every step.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.itemset import Item, Itemset
from ..core.lattice import IcebergLattice
from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError
from ..experiments.harness import ItemsetMiningResult, mine_itemsets
from .update import IncrementalUpdateResult, update_mining

__all__ = ["SlidingWindow"]


class SlidingWindow:
    """A capacity-bounded transaction window with delta-maintained mining.

    Parameters
    ----------
    database:
        The initial window content; must fit the capacity.
    minsup:
        Relative minimum support, fixed for the window's lifetime.
    capacity:
        Maximum number of objects retained; appends beyond it evict the
        oldest objects first.
    damage_threshold, verify, engine, workers:
        Forwarded to :func:`~repro.incremental.update.update_mining`.
    track_lattice:
        When true, an iceberg lattice is built once up front and
        incrementally repaired on every append (exposed as
        :attr:`lattice`); off by default because not every streaming
        consumer needs the order structure.
    """

    def __init__(
        self,
        database: TransactionDatabase,
        minsup: float,
        capacity: int,
        *,
        damage_threshold: float = 0.5,
        verify: str = "off",
        engine: str | None = None,
        workers: int | None = None,
        track_lattice: bool = False,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                f"window capacity must be positive, got {capacity}"
            )
        if database.n_objects > capacity:
            raise InvalidParameterError(
                f"initial database holds {database.n_objects} objects, more "
                f"than the window capacity {capacity}"
            )
        self._capacity = int(capacity)
        self._damage_threshold = damage_threshold
        self._verify = verify
        self._engine = engine
        self._workers = workers
        self._mining = mine_itemsets(database, minsup, engine=engine)
        self._lattice: IcebergLattice | None = (
            IcebergLattice(self._mining.closed, workers=workers)
            if track_lattice
            else None
        )

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Maximum number of objects the window retains."""
        return self._capacity

    @property
    def database(self) -> TransactionDatabase:
        """The current window content as a mining context."""
        return self._mining.database

    @property
    def mining(self) -> ItemsetMiningResult:
        """The current mining result (frequent, closed, generators)."""
        return self._mining

    @property
    def frequent(self) -> ItemsetFamily:
        """The frequent itemsets of the current window."""
        return self._mining.frequent

    @property
    def closed(self) -> ClosedItemsetFamily:
        """The frequent closed itemsets of the current window."""
        return self._mining.closed

    @property
    def lattice(self) -> IcebergLattice | None:
        """The maintained iceberg lattice (``track_lattice=True`` only)."""
        return self._lattice

    def __len__(self) -> int:
        """Return the current number of objects in the window."""
        return self._mining.database.n_objects

    def transactions(self) -> tuple[Itemset, ...]:
        """The window content, oldest first."""
        return self._mining.database.transactions()

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def append(self, batch: Iterable[Iterable[Item]]) -> IncrementalUpdateResult:
        """Append *batch*, evicting the oldest objects past the capacity.

        Returns the full update result (statistics included); the window
        itself adopts the new mining state.
        """
        batch_rows = [frozenset(t) for t in batch]
        if len(batch_rows) > self._capacity:
            raise InvalidParameterError(
                f"batch of {len(batch_rows)} objects exceeds the window "
                f"capacity {self._capacity}"
            )
        evict = max(
            0, self.database.n_objects + len(batch_rows) - self._capacity
        )
        result = update_mining(
            self._mining,
            batch_rows,
            removed_count=evict,
            damage_threshold=self._damage_threshold,
            verify=self._verify,
            engine=self._engine,
            lattice=self._lattice,
            workers=self._workers,
        )
        self._mining = result.mining
        if self._lattice is not None:
            self._lattice = (
                result.lattice
                if result.lattice is not None
                else IcebergLattice(result.mining.closed, workers=self._workers)
            )
        return result
