"""Incremental mining: delta maintenance of contexts that change.

The mine-once/serve-compact pipeline of the paper meets live traffic
here: instead of re-mining the whole context for every appended batch,
this package extends the context in place-preserving fashion
(:meth:`~repro.data.context.TransactionDatabase.extended` shares the
packed relation prefix and warm engine views) and repairs the mined
artifacts — frequent family, closed family, generators, iceberg lattice
— by re-evaluating only the *damaged* part: the itemsets contained in a
changed row, i.e. the closed sets whose extents intersect the appended
(or evicted) objects.

Entry points
------------
* :func:`~repro.incremental.update.update_mining` — one append (and
  optional oldest-rows eviction) against a previous mining result, with
  a configurable damage threshold past which it falls back to a full
  re-mine, and an optional fresh-mine oracle verification.
* :class:`~repro.incremental.window.SlidingWindow` — a capacity-bounded
  streaming window kept mined through the same core.
* :func:`~repro.incremental.lattice.repair_lattice` — Hasse-diagram
  repair that reuses every old edge whose neighbourhood is intact.
* the ``repro update`` CLI verb — the same update against an on-disk
  artifact store, rewritten atomically (see ``docs/architecture.md``).
"""

from .lattice import repair_lattice
from .update import (
    IncrementalUpdateResult,
    UpdateStatistics,
    update_mining,
)
from .window import SlidingWindow

__all__ = [
    "IncrementalUpdateResult",
    "SlidingWindow",
    "UpdateStatistics",
    "repair_lattice",
    "update_mining",
]
