"""Incremental repair of the iceberg lattice's Hasse diagram.

Of the two passes that build an order core, the containment relation is
the cheap one (blocked packed subset tests) and the transitive reduction
is the expensive one (a boolean matrix product).  The repair therefore
recomputes containment over the new member list — it also serves as the
verification substrate for every repaired edge — and reuses the old
Hasse diagram wherever the node neighbourhood is intact:

* a surviving old edge ``u → v`` stays unless a **new** node landed
  strictly between ``u`` and ``v`` (removals can only delete
  intermediates, never create them, and a surviving old intermediate
  would have made ``u → v`` a non-edge already);
* a pair bridged by a chain of **removed** nodes (reachable from a
  removed node backwards/forwards through removed intermediates in the
  old diagram) is re-tested: it becomes an edge iff no node of the new
  family lies strictly between;
* a **new** node ``w`` gets edges from the maximal elements of its
  down-set and to the minimal elements of its up-set (both read off the
  recomputed containment).

Because the edge *set* of a transitive reduction is unique and
:class:`~repro.core.order.OrderCore` canonicalises edge order by
lexsort, the repaired core is byte-identical to one built from scratch.
"""

from __future__ import annotations

import numpy as np

from ..core.bitmatrix import packed_containment
from ..core.families import ClosedItemsetFamily
from ..core.lattice import IcebergLattice
from ..core.order import PackedOrderCore, pack_itemset_masks
from ..core.parallel import get_executor

__all__ = ["repair_lattice"]


def _surviving_reach(
    start: int, adjacency: list[list[int]], removed: set[int]
) -> set[int]:
    """Surviving nodes reachable from *start* through removed nodes only."""
    out: set[int] = set()
    stack = [start]
    seen = {start}
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in removed:
                stack.append(neighbour)
            else:
                out.add(neighbour)
    return out


def repair_lattice(
    old_lattice: IcebergLattice,
    closed: ClosedItemsetFamily,
    workers: int | None = None,
) -> IcebergLattice:
    """Return the iceberg lattice of *closed*, repairing *old_lattice*.

    *old_lattice* must be the lattice of the closed family this update
    started from; *closed* is the repaired family.  The result is
    byte-identical (edge arrays, containment words) to
    ``IcebergLattice(closed)`` built from scratch.
    """
    members = closed.itemsets()
    old_members = old_lattice.members
    if not members or not old_members:
        return IcebergLattice(closed, workers=workers)

    executor = get_executor(workers)
    masks, _ = pack_itemset_masks(members)
    proper = packed_containment(masks, executor=executor)

    index = {member: i for i, member in enumerate(members)}
    old_to_new = np.array(
        [index.get(member, -1) for member in old_members], dtype=np.int64
    )
    old_member_set = set(old_members)
    new_nodes = [
        i for i, member in enumerate(members) if member not in old_member_set
    ]
    removed_old = [i for i, j in enumerate(old_to_new) if j < 0]

    old_rows, old_cols = old_lattice.hasse_edge_indices()
    src = old_to_new[old_rows]
    dst = old_to_new[old_cols]
    alive = (src >= 0) & (dst >= 0)
    surviving_rows = src[alive]
    surviving_cols = dst[alive]

    # Surviving edges break only when a new node slid strictly between.
    keep = np.ones(surviving_rows.shape[0], dtype=bool)
    for w in new_nodes:
        below_w = proper.column_bool(w)
        above_w = proper.row_bool(w)
        keep &= ~(below_w[surviving_rows] & above_w[surviving_cols])
    edges = {
        (int(r), int(c))
        for r, c in zip(surviving_rows[keep], surviving_cols[keep])
    }

    # Pairs whose only old Hasse paths ran through removed nodes may have
    # become edges; every such pair is (surviving ancestor, surviving
    # descendant) of some removed node through removed intermediates.
    if removed_old:
        n_old = len(old_members)
        preds: list[list[int]] = [[] for _ in range(n_old)]
        succs: list[list[int]] = [[] for _ in range(n_old)]
        for r, c in zip(old_rows.tolist(), old_cols.tolist()):
            succs[r].append(c)
            preds[c].append(r)
        removed_set = set(removed_old)
        candidates: set[tuple[int, int]] = set()
        for node in removed_old:
            ancestors = _surviving_reach(node, preds, removed_set)
            descendants = _surviving_reach(node, succs, removed_set)
            for u in ancestors:
                for v in descendants:
                    candidates.add((int(old_to_new[u]), int(old_to_new[v])))
        for u, v in candidates:
            if (u, v) in edges or not proper.get(u, v):
                continue
            between = proper.row_bool(u) & proper.column_bool(v)
            if not between.any():
                edges.add((u, v))

    # New nodes connect to the maximal elements below and the minimal
    # elements above (new-new edges are found from either endpoint).
    for w in new_nodes:
        below_bool = proper.column_bool(w)
        for x in np.nonzero(below_bool)[0]:
            if not (proper.row_bool(int(x)) & below_bool).any():
                edges.add((int(x), w))
        above_bool = proper.row_bool(w)
        for v in np.nonzero(above_bool)[0]:
            if not (above_bool & proper.column_bool(int(v))).any():
                edges.add((w, int(v)))

    rows = np.fromiter((r for r, _ in edges), dtype=np.int64, count=len(edges))
    cols = np.fromiter((c for _, c in edges), dtype=np.int64, count=len(edges))
    core = PackedOrderCore.from_parts(proper, rows, cols)
    return IcebergLattice(closed, order_core=core)
