"""Delta maintenance of mined artifacts when the context changes.

The paper's pipeline is mine-once/serve-compact, but a live context is
not frozen: transactions arrive (and, in a sliding window, expire).  A
full re-mine on every batch throws away almost everything the previous
run established, because a small batch can only perturb a small part of
the concept lattice.  This module repairs the mined artifacts instead.

The maintenance algebra
-----------------------
Call an itemset ``X`` **damaged** when it is contained in some *changed*
row (appended or removed).  Damage is downward closed, and an undamaged
``X`` keeps both its support and its closure: no changed row contains
``X``, so its cover gains/loses nothing, and if the old closure ``h(X)``
were contained in a changed row then ``X ⊆ h(X)`` would be too.  The
repair therefore only re-evaluates the damaged part of each artifact:

* **supports** — for every old frequent member, the appended/removed
  covers are counted with one packed-word containment pass per changed
  row (vectorised over members), giving ``support' = support + add −
  del`` without touching the engines;
* **new frequent itemsets** — any itemset newly reaching the threshold
  must occur in an appended row (its support could not have risen
  otherwise), so candidate discovery runs level-wise from the appended
  rows only, seeded by the add-damaged survivors;
* **closed itemsets** — undamaged closed members survive verbatim;
  the closures of the damaged frequent itemsets are recomputed in one
  batch on the extended context's (warm-started) engine — exactly the
  closed sets whose extents intersect the appended objects;
* **generators** — Close's recorded generators are exactly the frequent
  singletons (full-support ones recorded as ``∅``) plus the larger
  itemsets whose immediate subsets all have strictly larger support, a
  predicate the repaired support table answers by pure dict arithmetic;
* **lattice** — see :mod:`repro.incremental.lattice`.

When the update is not a pure gain (the context shrank, the absolute
threshold dropped) or the damage ratio exceeds the configurable
threshold, the repair falls back to a full re-mine — correct by
construction, just slower.  ``verify="oracle"`` additionally asserts
every repaired artifact equal to a from-scratch mine of the extended
context (the oracle pattern used throughout this repository), and an
always-on internal check compares the delta-counted supports of the
damaged itemsets with the engine's counts.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..algorithms.apriori import apriori_candidates
from ..algorithms.base import MiningRun, MiningStatistics
from ..core.families import ClosedItemsetFamily, ItemsetFamily
from ..core.itemset import Item, Itemset
from ..core.lattice import IcebergLattice
from ..core.rulearrays import pack_itemset_words, pack_itemsets_into, sorted_universe
from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError, OracleMismatchError
from ..experiments.harness import ItemsetMiningResult, mine_itemsets
from .lattice import repair_lattice

__all__ = ["IncrementalUpdateResult", "UpdateStatistics", "update_mining"]

#: Accepted values of the ``verify`` option.
VERIFY_MODES = ("off", "oracle")


@dataclass(frozen=True)
class UpdateStatistics:
    """What one incremental update did (and why, when it fell back)."""

    #: ``"incremental"`` (artifacts repaired in place) or ``"remine"``
    #: (full fresh mine of the extended context).
    mode: str
    #: Human-readable reason of a fallback, ``None`` on the fast path.
    fallback_reason: str | None
    #: Appended / removed object counts of this update.
    n_appended: int
    n_removed: int
    #: Old closed family size and how much of it was damaged.
    old_closed: int
    damaged_closed: int
    damage_ratio: float
    #: Damaged frequent itemsets whose closures were recomputed.
    reclosed: int
    #: Frequent itemsets that entered / left the family.
    new_frequent: int
    dropped_frequent: int
    wall_clock_seconds: float = 0.0

    def as_dict(self) -> dict:
        """The statistics as a JSON-ready mapping."""
        return {
            "mode": self.mode,
            "fallback_reason": self.fallback_reason,
            "n_appended": self.n_appended,
            "n_removed": self.n_removed,
            "old_closed": self.old_closed,
            "damaged_closed": self.damaged_closed,
            "damage_ratio": self.damage_ratio,
            "reclosed": self.reclosed,
            "new_frequent": self.new_frequent,
            "dropped_frequent": self.dropped_frequent,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


@dataclass
class IncrementalUpdateResult:
    """An updated mining result plus the bookkeeping of how it was made."""

    #: The mining result of the extended context (same shape as
    #: :func:`repro.experiments.harness.mine_itemsets` returns, so every
    #: downstream consumer — bases, store, serve — works unchanged).
    mining: ItemsetMiningResult
    statistics: UpdateStatistics
    #: The repaired iceberg lattice, when the caller passed the old one
    #: and the incremental path ran; ``None`` otherwise (consumers then
    #: rebuild it lazily through :class:`repro.bases.BasisContext`).
    lattice: IcebergLattice | None = None


def _fresh_statistics(
    stats: "UpdateStatistics", started: float
) -> UpdateStatistics:
    return UpdateStatistics(
        mode=stats.mode,
        fallback_reason=stats.fallback_reason,
        n_appended=stats.n_appended,
        n_removed=stats.n_removed,
        old_closed=stats.old_closed,
        damaged_closed=stats.damaged_closed,
        damage_ratio=stats.damage_ratio,
        reclosed=stats.reclosed,
        new_frequent=stats.new_frequent,
        dropped_frequent=stats.dropped_frequent,
        wall_clock_seconds=time.perf_counter() - started,
    )


def update_mining(
    mining: ItemsetMiningResult,
    batch: Iterable[Iterable[Item]],
    *,
    removed_count: int = 0,
    damage_threshold: float = 0.5,
    verify: str = "off",
    engine: str | None = None,
    lattice: IcebergLattice | None = None,
    workers: int | None = None,
) -> IncrementalUpdateResult:
    """Update *mining* for a context extended by *batch* transactions.

    Parameters
    ----------
    mining:
        The previous mining result; its database is the base context.
        Never mutated.
    batch:
        Transactions to append (each an iterable of items; may introduce
        items new to the universe).
    removed_count:
        Number of *oldest* objects evicted before appending (the sliding
        window's eviction pattern).  ``0`` means pure append, in which
        case the extended context shares the base context's packed
        relation prefix and warm engine views.
    damage_threshold:
        Fall back to a full re-mine when more than this fraction of the
        old closed family is damaged (contained in a changed row); the
        repair would then redo most of the work anyway, with overhead.
    verify:
        ``"oracle"`` asserts every repaired artifact equal to a fresh
        mine of the extended context; ``"off"`` (default) trusts the
        maintenance algebra (an internal support consistency check stays
        on either way).
    engine:
        Closure engine backend, as for :func:`mine_itemsets`.
    lattice:
        The old iceberg lattice; when given (and the incremental path
        runs) the repaired lattice is returned on the result.
    workers:
        Worker threads for the packed lattice kernels.

    Returns
    -------
    IncrementalUpdateResult
        The new mining result (over the extended database), the update
        statistics, and the repaired lattice when applicable.
    """
    if not 0.0 <= damage_threshold <= 1.0:
        raise InvalidParameterError(
            f"damage_threshold must lie in [0, 1], got {damage_threshold}"
        )
    if verify not in VERIFY_MODES:
        raise InvalidParameterError(
            f"verify must be one of {VERIFY_MODES}, got {verify!r}"
        )
    old_db = mining.database
    if not 0 <= removed_count <= old_db.n_objects:
        raise InvalidParameterError(
            f"removed_count must lie in [0, {old_db.n_objects}], "
            f"got {removed_count}"
        )
    started = time.perf_counter()
    batch_rows = [frozenset(t) for t in batch]
    minsup = mining.minsup

    # Warm the old engine first so the extension inherits its packed
    # views, then build the extended context.
    old_engine = old_db.engine(engine)
    if removed_count == 0:
        new_db = old_db.extended(batch_rows)
    else:
        survivors = old_db.transactions()[removed_count:]
        next_id = old_db.n_objects
        new_db = TransactionDatabase(
            [row.as_frozenset() for row in survivors] + batch_rows,
            item_order=old_db.items,
            object_ids=list(old_db.object_ids[removed_count:])
            + list(range(next_id, next_id + len(batch_rows))),
            name=old_db.name,
            engine=old_db.default_engine_name,
        )

    added = [Itemset(row) for row in batch_rows]
    removed = list(old_db.transactions()[:removed_count])
    old_closed = mining.closed
    closed_members = old_closed.itemsets()

    def fallback(reason: str, damaged: int = 0, ratio: float = 0.0):
        fresh = mine_itemsets(new_db, minsup, engine=engine)
        stats = UpdateStatistics(
            mode="remine",
            fallback_reason=reason,
            n_appended=len(added),
            n_removed=len(removed),
            old_closed=len(closed_members),
            damaged_closed=damaged,
            damage_ratio=ratio,
            reclosed=0,
            new_frequent=0,
            dropped_frequent=0,
        )
        return IncrementalUpdateResult(
            mining=fresh, statistics=_fresh_statistics(stats, started)
        )

    if new_db.n_objects < old_db.n_objects:
        return fallback("context shrank (more objects removed than appended)")
    thresh_old = mining.frequent.minsup_count
    thresh_new = new_db.minsup_count(minsup)
    if thresh_new < thresh_old:
        return fallback("absolute support threshold dropped")

    old_supports = mining.frequent.to_dict()
    members = mining.frequent.itemsets()
    member_index = {member: i for i, member in enumerate(members)}
    if any(member not in member_index for member in closed_members):
        # A size-capped Apriori run: the repair needs the complete
        # frequent family as its survivor base.
        return fallback("old frequent family is incomplete")
    if closed_members and not mining.generators_by_closure:
        return fallback("old result carries no generator records")

    # ------------------------------------------------------------------
    # Delta counts of the old frequent members (one packed containment
    # pass per changed row, vectorised over members).
    # ------------------------------------------------------------------
    add_counts = np.zeros(len(members), dtype=np.int64)
    del_counts = np.zeros(len(members), dtype=np.int64)
    changed = added + removed
    if members and changed:
        universe = sorted_universe(
            item for group in (members, changed) for itemset in group
            for item in itemset
        )
        packed = pack_itemsets_into(members, universe)
        words = packed.words
        position = {item: i for i, item in enumerate(universe)}
        for counts, rows in ((add_counts, added), (del_counts, removed)):
            for row in rows:
                row_words = pack_itemset_words(row, position, packed.n_words)
                counts += ~np.any(words & ~row_words, axis=1)
    damaged_flags = (add_counts > 0) | (del_counts > 0)

    damaged_closed = sum(
        1 for member in closed_members if damaged_flags[member_index[member]]
    )
    damage_ratio = damaged_closed / len(closed_members) if closed_members else 0.0
    if damage_ratio > damage_threshold:
        return fallback(
            f"damage ratio {damage_ratio:.3f} exceeds threshold "
            f"{damage_threshold}",
            damaged=damaged_closed,
            ratio=damage_ratio,
        )

    # ------------------------------------------------------------------
    # Frequent family: survivors by delta arithmetic, newcomers by a
    # level-wise scan seeded from the appended rows.
    # ------------------------------------------------------------------
    new_supports: dict[Itemset, int] = {}
    dropped_frequent = 0
    for i, member in enumerate(members):
        support = old_supports[member] + int(add_counts[i]) - int(del_counts[i])
        if support >= thresh_new:
            new_supports[member] = support
        else:
            dropped_frequent += 1

    old_item_set = set(old_db.items)

    def admit(candidates: list[Itemset]) -> list[Itemset]:
        """Keep the candidates that are frequent in the extended context.

        A newcomer's support is its (old-engine-counted) base support
        plus the appended-cover count minus the removed-cover count; a
        candidate absent from every appended row cannot have gained
        support and is pruned outright.
        """
        in_old = [
            c for c in candidates if all(item in old_item_set for item in c)
        ]
        base = dict(zip(in_old, old_engine.supports(in_old))) if in_old else {}
        kept: list[Itemset] = []
        for candidate in candidates:
            adds = sum(1 for row in added if candidate.issubset(row))
            if adds == 0:
                continue
            dels = sum(1 for row in removed if candidate.issubset(row))
            support = base.get(candidate, 0) + adds - dels
            if support >= thresh_new:
                new_supports[candidate] = support
                kept.append(candidate)
        return kept

    old_add_damaged_by_size: dict[int, list[Itemset]] = {}
    for i, member in enumerate(members):
        if add_counts[i] > 0 and member in new_supports:
            old_add_damaged_by_size.setdefault(len(member), []).append(member)

    batch_items: set = set()
    for row in added:
        batch_items.update(row)
    level_candidates = sorted(
        singleton
        for singleton in (Itemset([item]) for item in batch_items)
        if singleton not in old_supports
    )
    new_by_size: dict[int, list[Itemset]] = {1: admit(level_candidates)}
    candidates_evaluated = len(level_candidates)
    size = 2
    while True:
        join_base = old_add_damaged_by_size.get(size - 1, []) + new_by_size.get(
            size - 1, []
        )
        if not join_base:
            break
        fresh_candidates = [
            candidate
            for candidate in apriori_candidates(join_base)
            if candidate not in old_supports and candidate not in new_supports
        ]
        candidates_evaluated += len(fresh_candidates)
        new_by_size[size] = admit(fresh_candidates)
        size += 1
    new_members = [m for level in new_by_size.values() for m in level]
    frequent_new = ItemsetFamily(
        new_supports, new_db.n_objects, minsup_count=thresh_new
    )

    # ------------------------------------------------------------------
    # Closed family: undamaged members survive verbatim; the damaged
    # frequent itemsets are re-closed in one batch on the new engine.
    # ------------------------------------------------------------------
    damaged_frequent = sorted(
        [
            member
            for i, member in enumerate(members)
            if damaged_flags[i] and member in new_supports
        ]
        + new_members
    )
    new_engine = new_db.engine(engine)
    closure_pairs = new_engine.closures_and_supports(damaged_frequent)
    closure_map: dict[Itemset, Itemset] = {}
    closed_supports: dict[Itemset, int] = {}
    for member in closed_members:
        if not damaged_flags[member_index[member]] and member in new_supports:
            closed_supports[member] = new_supports[member]
    for itemset, (closure, count) in zip(damaged_frequent, closure_pairs):
        if count != new_supports[itemset]:
            raise OracleMismatchError(
                f"delta-counted support {new_supports[itemset]} of {itemset} "
                f"disagrees with the engine count {count}"
            )
        closure_map[itemset] = closure
        closed_supports[closure] = count
    closed_new = ClosedItemsetFamily(
        closed_supports, new_db.n_objects, minsup_count=thresh_new
    )

    # ------------------------------------------------------------------
    # Generators: re-derive Close's recorded entries from the repaired
    # support table; closures come from the batch above (damaged) or the
    # old records (undamaged — their closure is unchanged).
    # ------------------------------------------------------------------
    old_generator_closure: dict[Itemset, Itemset] = {}
    for closure, generators in mining.generators_by_closure.items():
        for generator in generators:
            if len(generator):
                old_generator_closure[generator] = closure
    n_new = new_db.n_objects
    grouped: dict[Itemset, set[Itemset]] = {}
    for itemset, support in new_supports.items():
        if len(itemset) == 1:
            recorded = Itemset.empty() if support == n_new else itemset
        else:
            if any(
                new_supports[subset] == support
                for subset in itemset.immediate_subsets()
            ):
                continue
            recorded = itemset
        closure = closure_map.get(itemset)
        if closure is None:
            closure = old_generator_closure.get(itemset)
        if closure is None:
            closure = old_closed.closure_of(itemset)
        grouped.setdefault(closure, set()).add(recorded)
    generators_new = {
        closure: sorted(recorded) for closure, recorded in grouped.items()
    }

    # ------------------------------------------------------------------
    # Assemble a result interchangeable with a fresh mine's.
    # ------------------------------------------------------------------
    levels = max((len(m) for m in new_supports), default=0)
    apriori_run = MiningRun(
        algorithm="Apriori[delta]",
        database_name=new_db.name,
        minsup=minsup,
        family=frequent_new,
        statistics=MiningStatistics(
            database_passes=1,
            candidates_generated=candidates_evaluated,
            itemsets_found=len(frequent_new),
            levels=levels,
        ),
    )
    close_run = MiningRun(
        algorithm="Close[delta]",
        database_name=new_db.name,
        minsup=minsup,
        family=closed_new,
        statistics=MiningStatistics(
            database_passes=1,
            candidates_generated=len(damaged_frequent),
            itemsets_found=len(closed_new),
            levels=levels,
        ),
    )
    mining_new = ItemsetMiningResult(
        database=new_db,
        minsup=minsup,
        apriori_run=apriori_run,
        close_run=close_run,
        generators_by_closure=generators_new,
    )

    repaired_lattice = None
    if lattice is not None:
        repaired_lattice = repair_lattice(lattice, closed_new, workers=workers)

    if verify == "oracle":
        _verify_against_oracle(
            mining_new, repaired_lattice, engine=engine, workers=workers
        )

    stats = UpdateStatistics(
        mode="incremental",
        fallback_reason=None,
        n_appended=len(added),
        n_removed=len(removed),
        old_closed=len(closed_members),
        damaged_closed=damaged_closed,
        damage_ratio=damage_ratio,
        reclosed=len(damaged_frequent),
        new_frequent=len(new_members),
        dropped_frequent=dropped_frequent,
    )
    return IncrementalUpdateResult(
        mining=mining_new,
        statistics=_fresh_statistics(stats, started),
        lattice=repaired_lattice,
    )


def _verify_against_oracle(
    mining: ItemsetMiningResult,
    lattice: IcebergLattice | None,
    engine: str | None,
    workers: int | None,
) -> None:
    """Assert the repaired artifacts equal a fresh mine of the context."""
    fresh = mine_itemsets(mining.database, mining.minsup, engine=engine)
    if not mining.frequent.same_contents(fresh.frequent):
        raise OracleMismatchError(
            "repaired frequent family differs from the fresh-mine oracle"
        )
    if not mining.closed.same_contents(fresh.closed):
        raise OracleMismatchError(
            "repaired closed family differs from the fresh-mine oracle"
        )
    if mining.generators_by_closure != fresh.generators_by_closure:
        raise OracleMismatchError(
            "repaired generators differ from the fresh-mine oracle"
        )
    if lattice is not None:
        oracle = IcebergLattice(fresh.closed, workers=workers)
        ours_rows, ours_cols = lattice.hasse_edge_indices()
        oracle_rows, oracle_cols = oracle.hasse_edge_indices()
        if not (
            np.array_equal(ours_rows, oracle_rows)
            and np.array_equal(ours_cols, oracle_cols)
        ):
            raise OracleMismatchError(
                "repaired lattice edges differ from the fresh-mine oracle"
            )
        if not lattice.order_core.packed_containment_matrix().equals(
            oracle.order_core.packed_containment_matrix()
        ):
            raise OracleMismatchError(
                "repaired containment relation differs from the oracle"
            )
