"""Incremental update of an on-disk artifact store.

The store-facing face of :mod:`repro.incremental`: load a ``repro
save`` container, extend its context with a transaction batch, repair
the mined sections through
:func:`~repro.incremental.update.update_mining`, rebuild the stored
rule bases on the repaired lattice, and rewrite the container.  The
rewrite goes through :func:`repro.store.save_run`, whose
:func:`repro.ioutils.atomic_write` temp-file/fsync/rename discipline
means a serving daemon watching the file either keeps the old
generation or hot-reloads the complete repaired one — never a torn
half-write.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from ..algorithms.base import MiningRun
from ..bases.base import BasisContext
from ..bases.registry import build_bases
from ..core.itemset import Item
from ..errors import InvalidParameterError
from ..experiments.harness import (
    ItemsetMiningResult,
    RuleArtifacts,
    save_artifacts,
)
from .update import IncrementalUpdateResult, update_mining

__all__ = ["update_store"]


def _mining_from_store(stored) -> ItemsetMiningResult:
    """Rehydrate a mining result from a loaded store's sections."""
    database = stored.require("context")
    frequent = stored.require("frequent")
    closed = stored.require("closed")
    generator_family = stored.require("generators")
    minsup = stored.minsup
    if minsup is None:
        raise InvalidParameterError(
            "the store records no minsup; it cannot be updated incrementally"
        )
    generators_by_closure = {
        closure: list(generator_family.generators_of(closure))
        for closure in generator_family.closed_itemsets()
    }
    return ItemsetMiningResult(
        database=database,
        minsup=minsup,
        apriori_run=MiningRun(
            algorithm="Apriori[store]",
            database_name=database.name,
            minsup=minsup,
            family=frequent,
        ),
        close_run=MiningRun(
            algorithm="Close[store]",
            database_name=database.name,
            minsup=minsup,
            family=closed,
        ),
        generators_by_closure=generators_by_closure,
    )


def update_store(
    path: str | Path,
    batch: Iterable[Iterable[Item]],
    *,
    window: int | None = None,
    damage_threshold: float = 0.5,
    verify: str = "off",
    engine: str | None = None,
    workers: int | None = None,
) -> tuple[Path, IncrementalUpdateResult]:
    """Append *batch* to the store at *path* and rewrite it repaired.

    The store must carry the context, frequent, closed and generators
    sections (everything ``repro save`` writes by default; a
    ``--no-context`` store cannot be extended).  The stored lattice is
    repaired incrementally when present; the stored bases are rebuilt on
    the repaired artifacts at the stored ``minconf``.

    Parameters
    ----------
    path:
        A ``repro save`` container; rewritten in place (atomically).
    batch:
        Transactions to append.
    window:
        Optional sliding-window capacity: the oldest objects are evicted
        so that at most this many remain after the append.
    damage_threshold, verify, engine, workers:
        Forwarded to :func:`~repro.incremental.update.update_mining`.

    Returns
    -------
    tuple[Path, IncrementalUpdateResult]
        The written path and the full update result.
    """
    from .. import store

    stored = store.load_run(path)
    mining = _mining_from_store(stored)
    batch_rows = [frozenset(t) for t in batch]
    removed_count = 0
    if window is not None:
        if window < 1:
            raise InvalidParameterError(
                f"window capacity must be positive, got {window}"
            )
        removed_count = max(
            0, mining.database.n_objects + len(batch_rows) - window
        )
        if removed_count > mining.database.n_objects:
            raise InvalidParameterError(
                f"batch of {len(batch_rows)} objects exceeds the window "
                f"capacity {window}"
            )
    result = update_mining(
        mining,
        batch_rows,
        removed_count=removed_count,
        damage_threshold=damage_threshold,
        verify=verify,
        engine=engine,
        lattice=stored.lattice,
        workers=workers,
    )
    artifacts = None
    basis_names = list(stored.basis_kinds) or None
    if stored.minconf is not None:
        context = BasisContext(
            closed=result.mining.closed,
            minconf=stored.minconf,
            frequent=result.mining.frequent,
            generators_factory=lambda: result.mining.generator_family,
            workers=workers,
            _lattice=result.lattice,
        )
        artifacts = RuleArtifacts(
            database_name=result.mining.database.name,
            minsup=result.mining.minsup,
            minconf=stored.minconf,
            bases=build_bases(context, basis_names),
            context=context,
        )
    written = save_artifacts(path, result.mining, artifacts, include_context=True)
    return written, result
