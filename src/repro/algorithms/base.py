"""Common scaffolding shared by the mining algorithms.

Every miner in :mod:`repro.algorithms` follows the same small contract:

* it is constructed with its parameters (``minsup`` at least);
* :meth:`MiningAlgorithm.run` executes it against a
  :class:`~repro.data.context.TransactionDatabase` and returns a
  :class:`MiningRun` record holding the result family plus the measured
  statistics (candidate counts, database passes, wall-clock time);
* the result family is an :class:`~repro.core.families.ItemsetFamily`
  (Apriori) or :class:`~repro.core.families.ClosedItemsetFamily`
  (Close, A-Close, CHARM).

The statistics are the quantities the original papers plot (number of
database passes, number of candidates, execution time), so the benchmark
harness can report them uniformly for every algorithm.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..core.families import ItemsetFamily
from ..data.context import TransactionDatabase
from ..errors import InvalidParameterError

__all__ = ["MiningStatistics", "MiningRun", "MiningAlgorithm"]


@dataclass
class MiningStatistics:
    """Counters collected while a mining algorithm runs.

    Attributes
    ----------
    database_passes:
        Number of full scans over the transaction database (the dominant
        cost driver discussed by the Close paper).
    candidates_generated:
        Total number of candidate itemsets whose support was evaluated.
    itemsets_found:
        Number of itemsets retained in the final result family.
    levels:
        Number of level-wise iterations (longest candidate size reached).
    wall_clock_seconds:
        Total execution time of :meth:`MiningAlgorithm.run`.
    """

    database_passes: int = 0
    candidates_generated: int = 0
    itemsets_found: int = 0
    levels: int = 0
    wall_clock_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a plain dictionary (for reports)."""
        return {
            "database_passes": self.database_passes,
            "candidates_generated": self.candidates_generated,
            "itemsets_found": self.itemsets_found,
            "levels": self.levels,
            "wall_clock_seconds": self.wall_clock_seconds,
        }


@dataclass
class MiningRun:
    """The outcome of one execution of a mining algorithm."""

    algorithm: str
    database_name: str
    minsup: float
    family: ItemsetFamily
    statistics: MiningStatistics = field(default_factory=MiningStatistics)

    def __str__(self) -> str:
        return (
            f"{self.algorithm} on {self.database_name} @ minsup={self.minsup:.4f}: "
            f"{len(self.family)} itemsets in "
            f"{self.statistics.wall_clock_seconds:.3f}s"
        )


class MiningAlgorithm(ABC):
    """Abstract base class of every frequent-itemset mining algorithm.

    Parameters
    ----------
    minsup:
        Relative minimum support threshold in ``[0, 1]``.
    engine:
        Optional closure-engine override (``"numpy"`` or ``"bitset"``).
        ``None`` picks the miner's :attr:`default_engine`, or — when that
        is also ``None`` — the database's own default.
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "abstract"

    #: Engine a miner prefers when the caller does not choose one
    #: (vertical miners override this with ``"bitset"``).
    default_engine: str | None = None

    def __init__(self, minsup: float, engine: str | None = None) -> None:
        if not 0.0 <= minsup <= 1.0:
            raise InvalidParameterError(f"minsup must lie in [0, 1], got {minsup}")
        self._minsup = minsup
        from ..engine import resolve_engine_name

        if engine is not None:
            engine = resolve_engine_name(engine)
        self._engine_name = engine

    @property
    def minsup(self) -> float:
        """Relative minimum support threshold."""
        return self._minsup

    @property
    def engine_name(self) -> str | None:
        """Explicit engine override, or ``None`` for the default chain."""
        return self._engine_name

    def _engine(self, database: TransactionDatabase):
        """Resolve the closure engine this run uses on *database*."""
        return database.engine(self._engine_name or self.default_engine)

    def run(self, database: TransactionDatabase) -> MiningRun:
        """Execute the algorithm on *database* and return a run record."""
        statistics = MiningStatistics()
        start = time.perf_counter()
        family = self._mine(database, statistics)
        statistics.wall_clock_seconds = time.perf_counter() - start
        statistics.itemsets_found = len(family)
        return MiningRun(
            algorithm=self.name,
            database_name=database.name,
            minsup=self._minsup,
            family=family,
            statistics=statistics,
        )

    def mine(self, database: TransactionDatabase) -> ItemsetFamily:
        """Convenience wrapper returning only the result family."""
        return self.run(database).family

    @abstractmethod
    def _mine(
        self, database: TransactionDatabase, statistics: MiningStatistics
    ) -> ItemsetFamily:
        """Algorithm-specific mining procedure."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(minsup={self._minsup})"
