"""Apriori: the level-wise frequent-itemset miner used as the paper's baseline.

Apriori (Agrawal & Srikant, VLDB 1994) enumerates frequent itemsets level
by level: frequent ``k``-itemsets are joined to form candidate
``(k+1)``-itemsets, candidates with an infrequent ``k``-subset are pruned
(anti-monotonicity of support), and one database pass counts the supports
of the survivors.  The bases papers use Apriori both as the source of
*all* frequent itemsets — from which the full, highly redundant rule sets
are generated — and as the runtime baseline that Close and A-Close are
compared against.

The implementation below hands each candidate level to the context's
closure engine as one batch, so support counting is a handful of
vectorised reductions (a BLAS matrix product on the numpy engine, early
exit tidset ANDs on the bitset engine) instead of a database re-scan per
candidate; the number of logical database passes reported in the
statistics still follows the classical level-wise accounting (one pass
per level), which is what the original figures plot.
"""

from __future__ import annotations

from itertools import combinations

from ..core.families import ItemsetFamily
from ..core.itemset import Itemset
from ..data.context import TransactionDatabase
from .base import MiningAlgorithm, MiningStatistics

__all__ = ["Apriori", "apriori_candidates"]


def apriori_candidates(level: list[Itemset]) -> list[Itemset]:
    """Generate the candidate ``(k+1)``-itemsets from frequent ``k``-itemsets.

    Two ``k``-itemsets are joined when they share their first ``k - 1``
    items (in canonical order); the resulting candidate is kept only if all
    of its ``k``-subsets belong to *level* (the classical Apriori pruning).

    The function is exposed publicly because Close and A-Close reuse the
    very same join on their generator sets.
    """
    frequent = set(level)
    ordered = sorted(level)
    candidates: list[Itemset] = []
    by_prefix: dict[tuple, list[Itemset]] = {}
    for itemset in ordered:
        items = itemset.as_tuple()
        by_prefix.setdefault(items[:-1], []).append(itemset)
    for prefix_group in by_prefix.values():
        for first, second in combinations(prefix_group, 2):
            candidate = first.union(second)
            if all(
                subset in frequent
                for subset in candidate.subsets_of_size(len(candidate) - 1)
            ):
                candidates.append(candidate)
    return sorted(candidates)


class Apriori(MiningAlgorithm):
    """Level-wise mining of all frequent itemsets.

    Parameters
    ----------
    minsup:
        Relative minimum support threshold.
    max_size:
        Optional cap on the itemset cardinality (useful to keep the
        all-rules baselines tractable on dense datasets; ``None`` means no
        cap, the classical behaviour).

    Examples
    --------
    >>> from repro.data.context import TransactionDatabase
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]])
    >>> family = Apriori(minsup=0.4).mine(db)
    >>> len(family)
    15
    """

    name = "Apriori"

    def __init__(
        self, minsup: float, max_size: int | None = None, engine: str | None = None
    ) -> None:
        super().__init__(minsup, engine=engine)
        self._max_size = max_size

    def _mine(
        self, database: TransactionDatabase, statistics: MiningStatistics
    ) -> ItemsetFamily:
        engine = self._engine(database)
        threshold = database.minsup_count(self._minsup)
        supports: dict[Itemset, int] = {}

        # Level 1: count every single item in one batched pass.
        statistics.database_passes += 1
        statistics.levels = 1
        singles = [Itemset.of(item) for item in database.items]
        statistics.candidates_generated += len(singles)
        level: list[Itemset] = []
        for itemset, count in zip(singles, engine.supports(singles)):
            if count >= threshold:
                supports[itemset] = count
                level.append(itemset)

        # Levels k >= 2: join, prune, then count the whole level in one batch.
        while level:
            if self._max_size is not None and statistics.levels >= self._max_size:
                break
            candidates = apriori_candidates(sorted(level))
            if not candidates:
                break
            statistics.database_passes += 1
            statistics.levels += 1
            statistics.candidates_generated += len(candidates)
            next_level: list[Itemset] = []
            for candidate, count in zip(candidates, engine.supports(candidates)):
                if count >= threshold:
                    supports[candidate] = count
                    next_level.append(candidate)
            level = next_level

        return ItemsetFamily(
            supports, n_objects=database.n_objects, minsup_count=threshold
        )
