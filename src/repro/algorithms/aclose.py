"""A-Close: frequent closed itemset mining via minimal generators.

A-Close (Pasquier, Bastide, Taouil, Lakhal — ICDT 1999) is the second
miner the ICDE 2000 paper builds on.  Unlike Close it does not compute a
closure at every level; it first discovers the *frequent minimal
generators* with plain support counting, then performs one final pass to
compute their closures:

1. level-wise, candidate generators are joined and pruned exactly as in
   Apriori;
2. a frequent candidate is discarded as a non-generator when its support
   equals the support of one of its immediate subsets (then its closure is
   that subset's closure, which will be produced anyway);
3. once no candidate survives, a closure pass computes ``h(G)`` for every
   retained generator ``G``; the distinct closures with their supports
   form the frequent closed itemset family.

The original algorithm remembers the first level at which a non-generator
appeared and only re-computes closures from that level upwards; we keep
the simpler "close every generator" variant, which returns the same
result and only changes constants that are irrelevant to the shapes the
benchmarks reproduce (the closure pass is still a single scan-equivalent
phase).
"""

from __future__ import annotations

from ..core.families import ClosedItemsetFamily
from ..core.itemset import Itemset
from ..data.context import TransactionDatabase
from .apriori import apriori_candidates
from .base import MiningAlgorithm, MiningStatistics

__all__ = ["AClose"]


class AClose(MiningAlgorithm):
    """Frequent closed itemset mining with the A-Close algorithm.

    Attributes
    ----------
    generators:
        After :meth:`run`, the sorted list of frequent minimal generators.
    generators_by_closure:
        After :meth:`run`, a mapping ``closed itemset -> sorted generators``.

    Examples
    --------
    >>> from repro.data.context import TransactionDatabase
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]])
    >>> closed = AClose(minsup=0.4).mine(db)
    >>> len(closed)
    5
    """

    name = "A-Close"

    def __init__(self, minsup: float, engine: str | None = None) -> None:
        super().__init__(minsup, engine=engine)
        self.generators: list[Itemset] = []
        self.generators_by_closure: dict[Itemset, list[Itemset]] = {}

    def _mine(
        self, database: TransactionDatabase, statistics: MiningStatistics
    ) -> ClosedItemsetFamily:
        engine = self._engine(database)
        threshold = database.minsup_count(self._minsup)
        n_objects = database.n_objects

        # ------------------------------------------------------------------
        # Phase 1: find the frequent minimal generators level-wise.
        # ------------------------------------------------------------------
        generator_supports: dict[Itemset, int] = {}

        statistics.database_passes += 1
        statistics.levels = 1
        level: dict[Itemset, int] = {}
        singles = [Itemset.of(item) for item in database.items]
        statistics.candidates_generated += len(singles)
        for candidate, count in zip(singles, engine.supports(singles)):
            # A single item is a minimal generator unless it appears in
            # every object (then its closure is already the closure of the
            # empty set); it is still useful to keep it so that its closed
            # superset is produced, and the closure pass deduplicates.
            if count >= threshold:
                level[candidate] = count
                generator_supports[candidate] = count

        while level:
            candidates = apriori_candidates(sorted(level))
            if not candidates:
                break
            statistics.database_passes += 1
            statistics.levels += 1
            next_level: dict[Itemset, int] = {}
            # One batched support pass counts the whole candidate level.
            statistics.candidates_generated += len(candidates)
            for candidate, count in zip(candidates, engine.supports(candidates)):
                if count < threshold:
                    continue
                # Generator test: the support must be strictly smaller than
                # the support of every immediate subset; equality means the
                # candidate has the same closure as that subset.
                is_generator = True
                for subset in candidate.immediate_subsets():
                    subset_count = level.get(subset)
                    if subset_count is None:
                        # The subset was itself discarded as a non-generator;
                        # supersets of non-generators are non-generators.
                        is_generator = False
                        break
                    if subset_count == count:
                        is_generator = False
                        break
                if is_generator:
                    next_level[candidate] = count
                    generator_supports[candidate] = count
            level = next_level

        # ------------------------------------------------------------------
        # Phase 2: closure pass over the retained generators.
        # ------------------------------------------------------------------
        statistics.database_passes += 1
        closed_supports: dict[Itemset, int] = {}
        generators_by_closure: dict[Itemset, list[Itemset]] = {}
        ordered_generators = sorted(generator_supports)
        # The final closure pass is one batch over every retained generator.
        closures = engine.closures(ordered_generators)
        for generator, closure in zip(ordered_generators, closures):
            count = generator_supports[generator]
            previous = closed_supports.get(closure)
            if previous is None:
                closed_supports[closure] = count
            # As in Close: a single item covering every object is recorded as
            # the empty generator, its true minimal generator.
            recorded = generator
            if count == n_objects and len(generator) == 1:
                recorded = Itemset.empty()
            bucket = generators_by_closure.setdefault(closure, [])
            if recorded not in bucket:
                bucket.append(recorded)

        self.generators = sorted(generator_supports)
        self.generators_by_closure = {
            closure: sorted(gens) for closure, gens in generators_by_closure.items()
        }
        return ClosedItemsetFamily(
            closed_supports, n_objects=n_objects, minsup_count=threshold
        )
