"""Classical generation of *all* valid association rules.

This is the baseline the bases are measured against: given the family of
frequent itemsets (from Apriori), enumerate every rule ``X → Y`` with
``X, Y`` non-empty and disjoint, ``X ∪ Y`` frequent, and confidence at
least ``minconf``.  The number of such rules explodes on dense data —
that explosion, and the redundancy it carries, is precisely the problem
statement of the ICDE 2000 paper.

Two refinements are exposed because the experiment tables need them
separately:

* :func:`generate_exact_rules` — only the 100 %-confidence rules;
* :func:`generate_approximate_rules` — only the rules with confidence in
  ``[minconf, 1)``.

Both are one enumeration pass with the confidence window applied inline;
in particular the approximate variant does **not** materialise the full
rule set first and filter afterwards.

Supports come from the provided :class:`~repro.core.families.ItemsetFamily`;
no database access is needed.
"""

from __future__ import annotations

from ..core.constants import EPSILON
from ..core.families import ItemsetFamily
from ..core.rules import AssociationRule, RuleSet
from ..errors import InvalidParameterError

__all__ = [
    "generate_all_rules",
    "generate_exact_rules",
    "generate_approximate_rules",
]


def _validate_minconf(minconf: float) -> None:
    if not 0.0 <= minconf <= 1.0:
        raise InvalidParameterError(f"minconf must lie in [0, 1], got {minconf}")


def _generate_rules(
    frequent: ItemsetFamily,
    minconf: float,
    min_rule_size: int,
    exclude_exact: bool = False,
) -> RuleSet:
    """One enumeration pass with the confidence window applied inline."""
    rules = RuleSet()
    n_objects = frequent.n_objects
    for itemset, count in frequent.items_with_supports():
        if len(itemset) < min_rule_size:
            continue
        support = count / n_objects if n_objects else 0.0
        for antecedent in itemset.nonempty_proper_subsets():
            antecedent_count = frequent.get(antecedent)
            if antecedent_count is None or antecedent_count == 0:
                # Cannot happen for a downward-closed family; guard anyway.
                continue
            confidence = count / antecedent_count
            if confidence < minconf - EPSILON:
                continue
            if exclude_exact and confidence >= 1.0 - EPSILON:
                continue
            rules.add(
                AssociationRule(
                    antecedent,
                    itemset.difference(antecedent),
                    support=support,
                    confidence=confidence,
                    support_count=count,
                )
            )
    return rules


def generate_all_rules(
    frequent: ItemsetFamily,
    minconf: float,
    *,
    min_rule_size: int = 2,
) -> RuleSet:
    """Generate every valid association rule from the frequent itemsets.

    Parameters
    ----------
    frequent:
        Family of frequent itemsets with their supports (typically the
        output of :class:`~repro.algorithms.apriori.Apriori`).
    minconf:
        Minimum confidence threshold in ``[0, 1]``.
    min_rule_size:
        Minimum cardinality of ``X ∪ Y``; the classical definition uses 2
        (a rule needs at least one item on each side).

    Returns
    -------
    RuleSet
        All rules ``X → Y`` with non-empty, disjoint sides, ``X ∪ Y``
        frequent and ``confidence ≥ minconf``.
    """
    _validate_minconf(minconf)
    return _generate_rules(frequent, minconf, min_rule_size)


def generate_exact_rules(frequent: ItemsetFamily) -> RuleSet:
    """Generate every exact (100 %-confidence) association rule.

    A rule ``X → Y`` is exact iff ``support(X ∪ Y) = support(X)``, i.e. the
    antecedent never occurs without the consequent.
    """
    return generate_all_rules(frequent, minconf=1.0)


def generate_approximate_rules(frequent: ItemsetFamily, minconf: float) -> RuleSet:
    """Generate every approximate rule with confidence in ``[minconf, 1)``.

    The exact rules are excluded during the enumeration itself (one pass),
    not by generating everything and filtering afterwards.
    """
    _validate_minconf(minconf)
    return _generate_rules(frequent, minconf, min_rule_size=2, exclude_exact=True)
