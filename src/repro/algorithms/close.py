"""Close: level-wise mining of frequent closed itemsets via generators.

Close (Pasquier, Bastide, Taouil, Lakhal — Information Systems 24(1),
1999) is the algorithm the ICDE 2000 paper relies on to extract the
frequent closed itemsets ``FC``.  It works level-wise over *generator*
itemsets:

1. the candidate generators of size 1 are the single items;
2. for every candidate generator ``p`` one database pass computes both its
   support and its closure ``h(p)`` (the intersection of the transactions
   containing ``p``);
3. infrequent generators are discarded; a generator whose closure was
   already produced by one of its subsets is redundant and discarded too;
4. candidate generators of size ``k + 1`` are obtained with the Apriori
   join of the surviving generators of size ``k``, pruned when one of
   their ``k``-subsets is not a surviving generator or when they are
   included in the closure of one of their ``k``-subsets (in that case
   their closure is already known).

The union of the closures of all surviving generators is exactly the set
of frequent closed itemsets, each with its support.  The number of
database passes equals the length of the largest generator, which on
dense correlated data is much smaller than the largest frequent itemset —
this is what gives Close its advantage over Apriori in the paper's
figures.
"""

from __future__ import annotations

from ..core.families import ClosedItemsetFamily
from ..core.itemset import Itemset
from ..data.context import TransactionDatabase
from .apriori import apriori_candidates
from .base import MiningAlgorithm, MiningStatistics

__all__ = ["Close"]


class Close(MiningAlgorithm):
    """Frequent closed itemset mining with the Close algorithm.

    Parameters
    ----------
    minsup:
        Relative minimum support threshold.

    Attributes
    ----------
    generators_by_closure:
        After :meth:`run`, a mapping ``closed itemset -> sorted list of the
        generators whose closure it is`` (only the generators actually kept
        by the level-wise search, i.e. the frequent minimal generators).

    Examples
    --------
    >>> from repro.data.context import TransactionDatabase
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]])
    >>> closed = Close(minsup=0.4).mine(db)
    >>> sorted(map(str, closed))
    ['{a, b, c, e}', '{a, c}', '{b, c, e}', '{b, e}', '{c}']
    """

    name = "Close"

    def __init__(self, minsup: float, engine: str | None = None) -> None:
        super().__init__(minsup, engine=engine)
        self.generators_by_closure: dict[Itemset, list[Itemset]] = {}

    def _mine(
        self, database: TransactionDatabase, statistics: MiningStatistics
    ) -> ClosedItemsetFamily:
        engine = self._engine(database)
        threshold = database.minsup_count(self._minsup)
        closed_supports: dict[Itemset, int] = {}
        generators_by_closure: dict[Itemset, list[Itemset]] = {}

        # Level 1 candidate generators: the single items.
        candidates = [Itemset.of(item) for item in database.items]
        closure_of_generator: dict[Itemset, Itemset] = {}
        support_of_generator: dict[Itemset, int] = {}

        while candidates:
            statistics.database_passes += 1
            statistics.levels += 1
            survivors: list[Itemset] = []
            # The whole level is closed and counted in one vectorised
            # engine pass — this batch is the paper's "one database scan
            # per level" made literal.
            level = sorted(candidates)
            statistics.candidates_generated += len(level)
            evaluated = engine.closures_and_supports(level)
            for candidate, (closure, count) in zip(level, evaluated):
                if count < threshold:
                    continue
                survivors.append(candidate)
                closure_of_generator[candidate] = closure
                support_of_generator[candidate] = count
                # A single item present in every object is not a minimal
                # generator (the empty itemset already has the same closure);
                # record the empty itemset instead so that the generator
                # family stays made of genuine minimal generators.
                recorded = candidate
                if count == database.n_objects and len(candidate) == 1:
                    recorded = Itemset.empty()
                if closure not in closed_supports:
                    closed_supports[closure] = count
                    generators_by_closure[closure] = [recorded]
                elif recorded not in generators_by_closure[closure]:
                    generators_by_closure[closure].append(recorded)

            # Build the next level of candidate generators.
            next_candidates: list[Itemset] = []
            for candidate in apriori_candidates(survivors):
                # Redundancy pruning: if the candidate is contained in the
                # closure of one of its immediate subsets, its closure is
                # already known (it equals that subset's closure), so the
                # candidate is not a new generator.
                redundant = False
                for subset in candidate.immediate_subsets():
                    closure = closure_of_generator.get(subset)
                    if closure is not None and candidate.issubset(closure):
                        redundant = True
                        break
                if not redundant:
                    next_candidates.append(candidate)
            candidates = next_candidates

        self.generators_by_closure = {
            closure: sorted(generators)
            for closure, generators in generators_by_closure.items()
        }
        return ClosedItemsetFamily(
            closed_supports, n_objects=database.n_objects, minsup_count=threshold
        )
