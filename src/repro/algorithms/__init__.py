"""Mining algorithms: Apriori (baseline), Close, A-Close and CHARM."""

from .aclose import AClose
from .apriori import Apriori, apriori_candidates
from .base import MiningAlgorithm, MiningRun, MiningStatistics
from .charm import Charm
from .close import Close
from .rule_generation import (
    generate_all_rules,
    generate_approximate_rules,
    generate_exact_rules,
)

__all__ = [
    "MiningAlgorithm",
    "MiningRun",
    "MiningStatistics",
    "Apriori",
    "apriori_candidates",
    "Close",
    "AClose",
    "Charm",
    "generate_all_rules",
    "generate_exact_rules",
    "generate_approximate_rules",
]
