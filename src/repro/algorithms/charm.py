"""CHARM: vertical (tidset-based) frequent closed itemset mining.

CHARM (Zaki & Hsiao, SDM 2002) post-dates the ICDE 2000 paper but mines
exactly the same object — the frequent closed itemsets — with a radically
different strategy: a depth-first exploration of an itemset–tidset search
tree with aggressive pruning based on four tidset properties.  It is
included here as an *extension* and, more importantly, as an independent
cross-check oracle: the test-suite and the A2 ablation benchmark verify
that Close, A-Close and CHARM return identical ``(closed itemset,
support)`` families on every dataset.

Tidsets are represented as arbitrary-precision integer bitsets (one bit
per object), so intersection is a single ``&`` and support a single
popcount.  The bitset views themselves belong to the context's
``"bitset"`` closure engine (:class:`repro.engine.BitsetClosureEngine`) —
CHARM is an ordinary client of that vertical engine, not a special case
inside the database.
"""

from __future__ import annotations

from ..core.families import ClosedItemsetFamily
from ..core.itemset import Itemset
from ..data.context import TransactionDatabase
from ..engine.bitops import popcount
from ..errors import InvalidParameterError
from .base import MiningAlgorithm, MiningStatistics

__all__ = ["Charm"]


class _Node:
    """A mutable (itemset, tidset) pair of the CHARM search tree."""

    __slots__ = ("itemset", "tidset", "alive")

    def __init__(self, itemset: Itemset, tidset: int) -> None:
        self.itemset = itemset
        self.tidset = tidset
        self.alive = True


class Charm(MiningAlgorithm):
    """Frequent closed itemset mining with the CHARM algorithm.

    Examples
    --------
    >>> from repro.data.context import TransactionDatabase
    >>> db = TransactionDatabase([["a", "c", "d"], ["b", "c", "e"],
    ...                           ["a", "b", "c", "e"], ["b", "e"],
    ...                           ["a", "b", "c", "e"]])
    >>> closed = Charm(minsup=0.4).mine(db)
    >>> len(closed)
    5
    """

    name = "CHARM"

    #: CHARM's search state *is* the vertical tidset view.
    default_engine = "bitset"

    def __init__(self, minsup: float, engine: str | None = None) -> None:
        super().__init__(minsup, engine=engine)
        if self._engine_name not in (None, "bitset"):
            raise InvalidParameterError(
                f"CHARM is a vertical algorithm and requires the 'bitset' "
                f"engine, got {self._engine_name!r}"
            )

    def _mine(
        self, database: TransactionDatabase, statistics: MiningStatistics
    ) -> ClosedItemsetFamily:
        engine = self._engine(database)
        threshold = database.minsup_count(self._minsup)
        statistics.database_passes += 1

        item_bits = engine.item_bits()
        roots = [
            _Node(Itemset.of(item), bits)
            for item, bits in item_bits.items()
            if popcount(bits) >= threshold
        ]
        statistics.candidates_generated += len(item_bits)
        # Processing items by increasing support maximises the chance of the
        # tidset-equality/containment shortcuts firing early (Zaki's heuristic).
        roots.sort(key=lambda node: (popcount(node.tidset), node.itemset))

        # closed sets found so far, keyed by tidset-hash buckets for the
        # subsumption check (an itemset is not closed if a known closed set
        # with the same tidset strictly contains it).
        closed_by_support: dict[int, list[tuple[Itemset, int]]] = {}
        statistics.levels = 1

        def is_subsumed(itemset: Itemset, tidset: int) -> bool:
            support = popcount(tidset)
            for other, other_tids in closed_by_support.get(support, ()):
                if other_tids == tidset and itemset.is_proper_subset(other):
                    return True
            return False

        def record(itemset: Itemset, tidset: int) -> None:
            if is_subsumed(itemset, tidset):
                return
            support = popcount(tidset)
            bucket = closed_by_support.setdefault(support, [])
            # Remove previously recorded sets subsumed by the new one: they
            # were provisional closures along other branches.
            bucket[:] = [
                (other, other_tids)
                for other, other_tids in bucket
                if not (other_tids == tidset and other.is_proper_subset(itemset))
            ]
            if not any(other == itemset for other, _ in bucket):
                bucket.append((itemset, tidset))

        def extend(nodes: list[_Node], depth: int) -> None:
            statistics.levels = max(statistics.levels, depth)
            for i, node_i in enumerate(nodes):
                if not node_i.alive:
                    continue
                children: list[_Node] = []
                for j in range(i + 1, len(nodes)):
                    node_j = nodes[j]
                    if not node_j.alive:
                        continue
                    statistics.candidates_generated += 1
                    tids = node_i.tidset & node_j.tidset
                    if popcount(tids) < threshold:
                        continue
                    union = node_i.itemset.union(node_j.itemset)
                    if node_i.tidset == node_j.tidset:
                        # Property 1: Xi and Xj always occur together; fold
                        # Xj into Xi and drop Xj from further consideration.
                        node_j.alive = False
                        _absorb(node_i, children, union.difference(node_i.itemset))
                    elif node_i.tidset & node_j.tidset == node_i.tidset:
                        # Property 2: Xi's objects all contain Xj; extend Xi
                        # (and its children) but keep Xj for other branches.
                        _absorb(node_i, children, union.difference(node_i.itemset))
                    elif node_i.tidset & node_j.tidset == node_j.tidset:
                        # Property 3: Xj's objects all contain Xi; Xj cannot
                        # be closed on its own under this prefix, explore the
                        # union as a child of Xi.
                        node_j.alive = False
                        children.append(_Node(union, tids))
                    else:
                        # Property 4: genuinely new branch.
                        children.append(_Node(union, tids))
                if children:
                    children.sort(
                        key=lambda node: (popcount(node.tidset), node.itemset)
                    )
                    extend(children, depth + 1)
                record(node_i.itemset, node_i.tidset)

        extend(roots, 1)

        supports: dict[Itemset, int] = {}
        for bucket in closed_by_support.values():
            for itemset, tidset in bucket:
                supports[itemset] = popcount(tidset)
        return ClosedItemsetFamily(
            supports, n_objects=database.n_objects, minsup_count=threshold
        )


def _absorb(node: _Node, children: list[_Node], new_items: Itemset) -> None:
    """Fold *new_items* into *node* and into its already-created children.

    Used by CHARM properties 1 and 2: when every object of ``node`` also
    contains ``new_items``, those items belong to the closure of every
    itemset in the subtree rooted at ``node``, so they are added to the
    node itself and to the children generated so far.
    """
    if not new_items:
        return
    node.itemset = node.itemset.union(new_items)
    for child in children:
        child.itemset = child.itemset.union(new_items)
