"""Test-support utilities shipped with the library.

Two things live here because production code must be able to import
them (unlike ``tests/``):

* :mod:`repro.testing.faults` — the fault-injection seam the serving
  stack calls at its failure points (worker crash, slow handler,
  transient accept errors, reload-time store corruption), armed via the
  ``REPRO_FAULTS`` environment variable or programmatically;
* :func:`wait_until_healthy` — the bounded retry-until-``/healthz``
  loop every script and test uses instead of a fixed sleep when waiting
  for a daemon to come up.
"""

from __future__ import annotations

import http.client
import json
import time

from .faults import FaultInjector, clear_faults, get_injector, set_faults

__all__ = [
    "FaultInjector",
    "clear_faults",
    "get_injector",
    "set_faults",
    "wait_until_healthy",
]


def wait_until_healthy(
    host: str, port: int, timeout: float = 30.0, interval: float = 0.05
) -> dict:
    """Poll ``GET /healthz`` until the daemon answers 200, bounded by *timeout*.

    Parameters
    ----------
    host, port : str, int
        Address of the daemon.
    timeout : float
        Give up after this many seconds.
    interval : float
        Initial pause between attempts; grows 1.5x per retry, capped at
        one second, so a slow cold start is not hammered.

    Returns
    -------
    dict
        The decoded ``/healthz`` payload of the first successful probe.

    Raises
    ------
    TimeoutError
        When the daemon never answered 200 within *timeout* seconds.
    """
    deadline = time.monotonic() + timeout
    last_error: str = "no probe attempted"
    while time.monotonic() < deadline:
        connection = http.client.HTTPConnection(host, port, timeout=2)
        try:
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            payload = response.read()
            if response.status == 200:
                return json.loads(payload)
            last_error = f"HTTP {response.status}"
        except (OSError, http.client.HTTPException, ValueError) as exc:
            last_error = repr(exc)
        finally:
            connection.close()
        time.sleep(interval)
        interval = min(interval * 1.5, 1.0)
    raise TimeoutError(
        f"daemon at {host}:{port} not healthy after {timeout}s ({last_error})"
    )
