"""Fault injection for the serving stack's chaos tests.

Robustness claims need proof: "the supervisor restarts crashed workers"
is only true if something actually crashes a worker during a test.  This
module is that something — a tiny registry of named injection points the
production code fires at its failure seams, and a parser for the
``REPRO_FAULTS`` environment variable that arms them.  With the variable
unset (the production default), every fire is a no-op costing one
attribute load and an ``is None`` check.

Injection points and the actions they accept::

    serve.request   crash:N   os._exit(1) on every N-th fired request
                    slow:S    sleep S seconds on every fired request
    serve.accept    error:N   raise OSError for the first N accepts
    store.load      truncate  truncate the store file to half (one-shot)
                    bitflip   flip one byte mid-file (one-shot)
    worker.start    crash     os._exit(1) as the worker boots

Specs are comma-separated ``point:action[:arg]`` entries, e.g.::

    REPRO_FAULTS="serve.request:crash:25" repro serve --store run.npz \
        --processes 4

kills every worker on its 25th request — the chaos suite's worker-churn
scenario.  Counters are per-process: a forked worker starts counting at
the fork-time value (zero for supervisor children, which never serve
requests themselves), so "every N-th request" means every N-th request
*of that worker*.

Programmatic use (in-process tests): :func:`set_faults` /
:func:`clear_faults` replace the environment-derived injector.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

__all__ = [
    "ENV_VAR",
    "FaultInjector",
    "clear_faults",
    "get_injector",
    "set_faults",
]

#: Environment variable holding the fault spec.
ENV_VAR = "REPRO_FAULTS"

#: Known ``point:action`` combinations (validated at parse time so a
#: typo in a chaos test arms loudly instead of silently doing nothing).
_VALID = {
    ("serve.request", "crash"),
    ("serve.request", "slow"),
    ("serve.accept", "error"),
    ("store.load", "truncate"),
    ("store.load", "bitflip"),
    ("worker.start", "crash"),
}


class FaultInjector:
    """Armed faults keyed by injection point, with per-process counters.

    Parameters
    ----------
    spec : str or None
        Comma-separated ``point:action[:arg]`` entries; ``None`` or an
        empty string arms nothing.

    Raises
    ------
    ValueError
        On an entry whose point/action combination is unknown or whose
        argument does not parse.
    """

    def __init__(self, spec: str | None) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._faults: dict[str, tuple[str, float]] = {}
        for entry in (spec or "").split(","):
            entry = entry.strip()
            if not entry:
                continue
            parts = entry.split(":")
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"fault entry {entry!r} is not point:action[:arg]"
                )
            point, action = parts[0], parts[1]
            if (point, action) not in _VALID:
                valid = ", ".join(sorted(f"{p}:{a}" for p, a in _VALID))
                raise ValueError(
                    f"unknown fault {point}:{action} (valid: {valid})"
                )
            try:
                arg = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError:
                raise ValueError(
                    f"fault argument of {entry!r} must be a number"
                ) from None
            self._faults[point] = (action, arg)

    def __bool__(self) -> bool:
        """Whether any fault is armed."""
        return bool(self._faults)

    def fire(self, point: str, path: str | Path | None = None) -> None:
        """Trigger the fault armed at *point*, if any.

        Parameters
        ----------
        point : str
            Injection-point name (``"serve.request"``, ...).
        path : str or Path, optional
            The file the ``store.load`` corruption actions mutate.
        """
        fault = self._faults.get(point)
        if fault is None:
            return
        action, arg = fault
        with self._lock:
            self._counts[point] = count = self._counts.get(point, 0) + 1
        if action == "crash":
            if point == "worker.start" or count % max(int(arg), 1) == 0:
                os._exit(1)
        elif action == "slow":
            time.sleep(arg)
        elif action == "error":
            if count <= int(arg):
                raise OSError(f"injected accept error {count}/{int(arg)}")
        elif action in ("truncate", "bitflip") and path is not None:
            with self._lock:
                armed = point in self._faults
                self._faults.pop(point, None)  # one-shot
            if armed:
                _corrupt_file(Path(path), action)


def _corrupt_file(path: Path, action: str) -> None:
    """Truncate *path* to half or flip one mid-file byte, in place."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    if not data:
        return
    if action == "truncate":
        path.write_bytes(data[: len(data) // 2])
    else:
        mutated = bytearray(data)
        mutated[len(mutated) // 2] ^= 0x01
        path.write_bytes(bytes(mutated))


_injector: FaultInjector | None = None
_injector_lock = threading.Lock()


def get_injector() -> FaultInjector:
    """Return the process-wide injector (parsed once from the environment)."""
    global _injector
    if _injector is None:
        with _injector_lock:
            if _injector is None:
                _injector = FaultInjector(os.environ.get(ENV_VAR))
    return _injector


def set_faults(spec: str | None) -> FaultInjector:
    """Arm *spec* programmatically, replacing the current injector."""
    global _injector
    with _injector_lock:
        _injector = FaultInjector(spec)
    return _injector


def clear_faults() -> None:
    """Disarm everything (the next :func:`get_injector` re-reads the env)."""
    global _injector
    with _injector_lock:
        _injector = FaultInjector(None)
