"""Redundancy analysis of association rule sets.

The motivation of the paper is that the classical "all valid rules" output
is huge and highly redundant.  This module quantifies that claim:

* :func:`reduction_report` compares the full rule sets against the bases
  and computes the reduction factors reported in the experiment tables;
* :func:`redundant_exact_rules` identifies exact rules that are derivable
  from other exact rules (via the implication closure);
* :func:`minimal_cover_check` verifies that a candidate basis really
  generates a target rule set (used by tests and by the T5 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

from .dg_basis import DuquenneGuiguesBasis
from .itemset import Itemset
from .rules import AssociationRule, RuleSet

__all__ = [
    "ReductionReport",
    "reduction_report",
    "redundant_exact_rules",
    "implication_closure",
]


def implication_closure(itemset: Itemset, rules: RuleSet) -> Itemset:
    """Closure of *itemset* under a set of exact rules (Armstrong inference).

    Repeatedly applies every rule whose antecedent is contained in the
    current itemset, adding the consequent, until a fixpoint is reached.
    Only exact rules participate; approximate rules are ignored since they
    are not implications.
    """
    current = Itemset.coerce(itemset)
    exact = [rule for rule in rules if rule.is_exact]
    changed = True
    while changed:
        changed = False
        for rule in exact:
            if rule.antecedent.issubset(current) and not rule.consequent.issubset(
                current
            ):
                current = current.union(rule.consequent)
                changed = True
    return current


def redundant_exact_rules(rules: RuleSet) -> RuleSet:
    """Return the exact rules of *rules* that are derivable from the others.

    A rule ``X → Y`` is redundant when ``Y`` is contained in the closure of
    ``X`` under the remaining exact rules.  The returned set is a witness
    of the redundancy the paper sets out to remove; on correlated data it
    contains the overwhelming majority of the exact rules.
    """
    redundant = RuleSet()
    exact_rules = list(rules.exact_rules())
    for index, rule in enumerate(exact_rules):
        others = RuleSet(
            other for position, other in enumerate(exact_rules) if position != index
        )
        if rule.consequent.issubset(implication_closure(rule.antecedent, others)):
            redundant.add(rule)
    return redundant


@dataclass(frozen=True)
class ReductionReport:
    """Size comparison between the naive rule sets and the bases.

    Attributes mirror one row of the paper-style reduction tables.
    """

    dataset: str
    minsup: float
    minconf: float
    all_exact_rules: int
    dg_basis_size: int
    all_approximate_rules: int
    luxenburger_full_size: int
    luxenburger_reduced_size: int

    @property
    def all_rules(self) -> int:
        """Total number of valid rules (exact + approximate)."""
        return self.all_exact_rules + self.all_approximate_rules

    @property
    def bases_total(self) -> int:
        """Total number of rules in the union of the two (reduced) bases."""
        return self.dg_basis_size + self.luxenburger_reduced_size

    @property
    def exact_reduction_factor(self) -> float:
        """``all exact rules / DG basis size`` (1.0 when the basis is empty)."""
        if self.dg_basis_size == 0:
            return 1.0 if self.all_exact_rules == 0 else float("inf")
        return self.all_exact_rules / self.dg_basis_size

    @property
    def approximate_reduction_factor(self) -> float:
        """``all approximate rules / reduced Luxenburger size``."""
        if self.luxenburger_reduced_size == 0:
            return 1.0 if self.all_approximate_rules == 0 else float("inf")
        return self.all_approximate_rules / self.luxenburger_reduced_size

    @property
    def total_reduction_factor(self) -> float:
        """``all rules / (DG + reduced Luxenburger)``."""
        if self.bases_total == 0:
            return 1.0 if self.all_rules == 0 else float("inf")
        return self.all_rules / self.bases_total


def reduction_report(
    dataset: str,
    minsup: float,
    minconf: float,
    all_exact: RuleSet,
    dg_basis: DuquenneGuiguesBasis,
    all_approximate: RuleSet,
    luxenburger_full: RuleSet,
    luxenburger_reduced: RuleSet,
) -> ReductionReport:
    """Assemble a :class:`ReductionReport` from already-computed rule sets."""
    return ReductionReport(
        dataset=dataset,
        minsup=minsup,
        minconf=minconf,
        all_exact_rules=len(all_exact),
        dg_basis_size=len(dg_basis),
        all_approximate_rules=len(all_approximate),
        luxenburger_full_size=len(luxenburger_full),
        luxenburger_reduced_size=len(luxenburger_reduced),
    )


def minimal_cover_check(
    basis: RuleSet, target: RuleSet, derive: "callable"
) -> list[AssociationRule]:
    """Return the rules of *target* that *derive* fails to reconstruct.

    Parameters
    ----------
    basis:
        The candidate generating set (unused directly, documented for
        intent; the closure semantics live in *derive*).
    target:
        The rule set the basis is supposed to generate.
    derive:
        Callable ``(antecedent, consequent) -> bool`` implementing
        derivability from the basis.

    Returns
    -------
    list[AssociationRule]
        Rules of *target* that are **not** derivable — empty when the basis
        really is a generating set.
    """
    missing = [
        rule for rule in target if not derive(rule.antecedent, rule.consequent)
    ]
    return sorted(missing)
