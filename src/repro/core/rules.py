"""Association rules and rule collections.

An association rule is a conditional implication ``X → Y`` between two
disjoint itemsets, weighted by its *support* (relative frequency of
``X ∪ Y``) and its *confidence* (``support(X ∪ Y) / support(X)``).  Rules
with confidence exactly 1 are *exact* rules; all others are *approximate*
rules.  The bases built by this library (Duquenne-Guigues for exact rules,
Luxenburger for approximate rules) are particular, minimal sets of such
rules from which every other rule can be deduced.

:class:`AssociationRule` is an immutable value object.  :class:`RuleSet`
is an order-preserving, duplicate-free collection with the filtering and
comparison helpers used by the experiments.  A ``RuleSet`` built with
:meth:`RuleSet.from_arrays` is a *lazy view* over a columnar
:class:`~repro.core.rulearrays.RuleArrays`: sizes, filters, statistics
and set operations run vectorised on the columns, and Python rule
objects are only materialised when a caller actually iterates them.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Callable

from ..errors import InconsistentRuleError
from .constants import EPSILON
from .itemset import Item, Itemset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .rulearrays import RuleArrays

__all__ = ["AssociationRule", "RuleSet"]


class AssociationRule:
    """An immutable association rule ``antecedent → consequent``.

    Parameters
    ----------
    antecedent:
        The left-hand side ``X`` (may be empty: the Duquenne-Guigues basis
        legitimately contains rules whose antecedent is the empty itemset
        when the closure of the empty set is not empty).
    consequent:
        The right-hand side ``Y``; must be non-empty and disjoint from the
        antecedent.
    support:
        Relative support of ``X ∪ Y`` in ``[0, 1]``.
    confidence:
        ``support(X ∪ Y) / support(X)`` in ``(0, 1]``.
    support_count:
        Optional absolute support of ``X ∪ Y`` (number of objects).

    Examples
    --------
    >>> rule = AssociationRule(Itemset("a"), Itemset("bc"), support=0.4,
    ...                        confidence=2 / 3)
    >>> rule.is_exact
    False
    >>> print(rule)
    {a} -> {b, c} (support=0.400, confidence=0.667)
    """

    __slots__ = ("_antecedent", "_consequent", "_support", "_confidence", "_count")

    def __init__(
        self,
        antecedent: Itemset | Iterable[Item],
        consequent: Itemset | Iterable[Item],
        support: float,
        confidence: float,
        support_count: int | None = None,
    ) -> None:
        antecedent = Itemset.coerce(antecedent)
        consequent = Itemset.coerce(consequent)
        if not consequent:
            raise InconsistentRuleError("a rule must have a non-empty consequent")
        if not antecedent.isdisjoint(consequent):
            raise InconsistentRuleError(
                f"antecedent {antecedent} and consequent {consequent} overlap"
            )
        if not (0.0 - EPSILON) <= support <= (1.0 + EPSILON):
            raise InconsistentRuleError(f"support {support} outside [0, 1]")
        if confidence <= 0.0 or confidence > 1.0 + EPSILON:
            raise InconsistentRuleError(f"confidence {confidence} outside (0, 1]")
        object.__setattr__(self, "_antecedent", antecedent)
        object.__setattr__(self, "_consequent", consequent)
        object.__setattr__(self, "_support", float(min(max(support, 0.0), 1.0)))
        object.__setattr__(self, "_confidence", float(min(confidence, 1.0)))
        object.__setattr__(self, "_count", support_count)

    # ------------------------------------------------------------------
    # Attributes
    # ------------------------------------------------------------------
    @property
    def antecedent(self) -> Itemset:
        """The rule's left-hand side ``X``."""
        return self._antecedent

    @property
    def consequent(self) -> Itemset:
        """The rule's right-hand side ``Y``."""
        return self._consequent

    @property
    def support(self) -> float:
        """Relative support of ``X ∪ Y``."""
        return self._support

    @property
    def confidence(self) -> float:
        """Confidence ``support(X ∪ Y) / support(X)``."""
        return self._confidence

    @property
    def support_count(self) -> int | None:
        """Absolute support of ``X ∪ Y`` when known, else ``None``."""
        return self._count

    @property
    def itemset(self) -> Itemset:
        """The underlying frequent itemset ``X ∪ Y``."""
        return self._antecedent.union(self._consequent)

    @property
    def is_exact(self) -> bool:
        """``True`` for 100 %-confidence (exact) rules."""
        return self._confidence >= 1.0 - EPSILON

    @property
    def is_approximate(self) -> bool:
        """``True`` for rules with confidence strictly below 1."""
        return not self.is_exact

    def antecedent_support(self) -> float:
        """Relative support of the antecedent, recovered as ``supp/conf``."""
        return self._support / self._confidence

    # ------------------------------------------------------------------
    # Identity: a rule is identified by its two sides only.  Support and
    # confidence are functions of the sides in a fixed database, so two
    # objects describing the same implication compare equal even if one of
    # them was built without the absolute count.
    # ------------------------------------------------------------------
    def key(self) -> tuple[Itemset, Itemset]:
        """Return the ``(antecedent, consequent)`` identity of the rule."""
        return (self._antecedent, self._consequent)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssociationRule):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __lt__(self, other: "AssociationRule") -> bool:
        if not isinstance(other, AssociationRule):
            return NotImplemented
        return self.key() < other.key()

    def same_statistics(self, other: "AssociationRule", tol: float = 1e-9) -> bool:
        """Return ``True`` if *other* has the same sides, support and confidence."""
        return (
            self.key() == other.key()
            and math.isclose(self._support, other._support, abs_tol=tol)
            and math.isclose(self._confidence, other._confidence, abs_tol=tol)
        )

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"AssociationRule({self._antecedent!r}, {self._consequent!r}, "
            f"support={self._support:.6f}, confidence={self._confidence:.6f})"
        )

    def __str__(self) -> str:
        return (
            f"{self._antecedent} -> {self._consequent} "
            f"(support={self._support:.3f}, confidence={self._confidence:.3f})"
        )


class RuleSet:
    """An order-preserving, duplicate-free collection of association rules.

    Duplicates (same antecedent and consequent) are silently collapsed; the
    first occurrence wins.  Iteration order is insertion order, which keeps
    reports stable, while :meth:`sorted_rules` gives the canonical order
    used in the documentation and the tests.

    Array-backed sets (:meth:`from_arrays`) keep the columnar storage
    around: ``len``, the confidence/support filters, the exact/approximate
    splits, the summary statistics and the set operations all answer from
    the columns without building a single rule object.  Any mutation
    first materialises the object view and then drops the (now stale)
    columns.
    """

    def __init__(self, rules: Iterable[AssociationRule] = ()) -> None:
        self._materialized: dict[tuple[Itemset, Itemset], AssociationRule] | None = {}
        self._arrays: RuleArrays | None = None
        for rule in rules:
            self.add(rule)

    # ------------------------------------------------------------------
    # Columnar construction and access
    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls, arrays: "RuleArrays", *, assume_unique: bool = False
    ) -> "RuleSet":
        """Wrap a :class:`RuleArrays` as a lazy rule set.

        The columns are deduplicated on the ``(antecedent, consequent)``
        key (first row wins, matching :meth:`add` semantics) so that the
        array length and the materialised length always agree.  No rule
        object is built until the set is iterated.  ``assume_unique``
        skips the dedup pass for arrays whose keys are unique by
        construction — row subsets of an already wrapped set, or the
        output of the array set operations — so the derived views below
        stay O(selection) instead of paying a key sort each.
        """
        ruleset = cls.__new__(cls)
        ruleset._materialized = None
        ruleset._arrays = arrays if assume_unique else arrays.deduplicated()
        return ruleset

    def to_arrays(self) -> "RuleArrays":
        """The columnar form of the set (cached until the set mutates)."""
        if self._arrays is None:
            from .rulearrays import RuleArrays

            self._arrays = RuleArrays.from_rules(self._rules.values())
        return self._arrays

    @property
    def _rules(self) -> dict[tuple[Itemset, Itemset], AssociationRule]:
        """The object view, materialised from the columns on first use."""
        if self._materialized is None:
            assert self._arrays is not None
            self._materialized = {
                rule.key(): rule for rule in self._arrays.iter_rules()
            }
        return self._materialized

    def is_materialized(self) -> bool:
        """Whether the per-rule Python objects have been built."""
        return self._materialized is not None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, rule: AssociationRule) -> bool:
        """Add a rule; return ``True`` if it was not already present."""
        key = rule.key()
        rules = self._rules
        if key in rules:
            return False
        rules[key] = rule
        self._arrays = None  # the columns no longer describe the set
        return True

    def update(self, rules: Iterable[AssociationRule]) -> int:
        """Add several rules; return how many were new."""
        return sum(1 for rule in rules if self.add(rule))

    def discard(self, rule: AssociationRule) -> bool:
        """Remove a rule if present; return whether it was present."""
        removed = self._rules.pop(rule.key(), None) is not None
        if removed:
            self._arrays = None
        return removed

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._materialized is None:
            return len(self._arrays)
        return len(self._materialized)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules.values())

    def __contains__(self, rule: object) -> bool:
        if isinstance(rule, AssociationRule):
            return rule.key() in self._rules
        if isinstance(rule, tuple) and len(rule) == 2:
            return (Itemset.coerce(rule[0]), Itemset.coerce(rule[1])) in self._rules
        return False

    def __bool__(self) -> bool:
        return len(self) > 0

    def __repr__(self) -> str:
        return f"RuleSet({len(self)} rules)"

    def get(
        self,
        antecedent: Itemset | Iterable[Item],
        consequent: Itemset | Iterable[Item],
    ) -> AssociationRule | None:
        """Return the stored rule with the given sides, or ``None``."""
        key = (Itemset.coerce(antecedent), Itemset.coerce(consequent))
        return self._rules.get(key)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def sorted_rules(self) -> list[AssociationRule]:
        """Return the rules sorted by ``(antecedent, consequent)``."""
        return sorted(self._rules.values())

    def keys(self) -> set[tuple[Itemset, Itemset]]:
        """Return the set of ``(antecedent, consequent)`` identities."""
        return set(self._rules.keys())

    def exact_rules(self) -> "RuleSet":
        """Return the sub-collection of 100 %-confidence rules."""
        if self._arrays is not None:
            return RuleSet.from_arrays(self._arrays.exact(), assume_unique=True)
        return self.filter(lambda r: r.is_exact)

    def approximate_rules(self) -> "RuleSet":
        """Return the sub-collection of rules with confidence < 1."""
        if self._arrays is not None:
            return RuleSet.from_arrays(self._arrays.approximate(), assume_unique=True)
        return self.filter(lambda r: r.is_approximate)

    def filter(self, predicate: Callable[[AssociationRule], bool]) -> "RuleSet":
        """Return a new :class:`RuleSet` with the rules matching *predicate*."""
        return RuleSet(rule for rule in self if predicate(rule))

    def with_min_confidence(self, minconf: float) -> "RuleSet":
        """Return the rules whose confidence is at least *minconf*."""
        if self._arrays is not None:
            return RuleSet.from_arrays(
                self._arrays.with_min_confidence(minconf), assume_unique=True
            )
        return self.filter(lambda r: r.confidence >= minconf - EPSILON)

    def with_min_support(self, minsup: float) -> "RuleSet":
        """Return the rules whose support is at least *minsup*."""
        if self._arrays is not None:
            return RuleSet.from_arrays(
                self._arrays.with_min_support(minsup), assume_unique=True
            )
        return self.filter(lambda r: r.support >= minsup - EPSILON)

    # ------------------------------------------------------------------
    # Set comparison (by rule identity)
    # ------------------------------------------------------------------
    def union(self, other: "RuleSet") -> "RuleSet":
        """Return the union of the two rule sets (self's duplicates win)."""
        if self._arrays is not None and other._arrays is not None:
            return RuleSet.from_arrays(
                self._arrays.union(other._arrays), assume_unique=True
            )
        merged = RuleSet(self)
        merged.update(other)
        return merged

    def difference(self, other: "RuleSet") -> "RuleSet":
        """Return the rules of *self* not present in *other*."""
        if self._arrays is not None and other._arrays is not None:
            return RuleSet.from_arrays(
                self._arrays.difference(other._arrays), assume_unique=True
            )
        return self.filter(lambda r: r not in other)

    def intersection(self, other: "RuleSet") -> "RuleSet":
        """Return the rules present in both rule sets."""
        if self._arrays is not None and other._arrays is not None:
            return RuleSet.from_arrays(
                self._arrays.intersection(other._arrays), assume_unique=True
            )
        return self.filter(lambda r: r in other)

    def same_rules(self, other: "RuleSet") -> bool:
        """Return ``True`` if both sets contain exactly the same implications."""
        return self.keys() == other.keys()

    def same_rules_and_statistics(self, other: "RuleSet", tol: float = 1e-9) -> bool:
        """Return ``True`` if both sets match, including support/confidence."""
        if not self.same_rules(other):
            return False
        for rule in self:
            twin = other.get(rule.antecedent, rule.consequent)
            if twin is None or not rule.same_statistics(twin, tol=tol):
                return False
        return True

    # ------------------------------------------------------------------
    # Summary statistics used by the experiment reports
    # ------------------------------------------------------------------
    def count_exact(self) -> int:
        """Number of exact rules in the collection."""
        if self._arrays is not None:
            return self._arrays.count_exact()
        return sum(1 for rule in self if rule.is_exact)

    def count_approximate(self) -> int:
        """Number of approximate rules in the collection."""
        if self._arrays is not None:
            return self._arrays.count_approximate()
        return sum(1 for rule in self if rule.is_approximate)

    def average_confidence(self) -> float:
        """Mean confidence over the collection (0 for an empty collection)."""
        if self._arrays is not None:
            return self._arrays.average_confidence()
        if not self._rules:
            return 0.0
        return sum(rule.confidence for rule in self) / len(self._rules)

    def average_support(self) -> float:
        """Mean support over the collection (0 for an empty collection)."""
        if self._arrays is not None:
            return self._arrays.average_support()
        if not self._rules:
            return 0.0
        return sum(rule.support for rule in self) / len(self._rules)
