"""The Luxenburger basis for approximate association rules (Theorem 2).

Luxenburger (1991) studied *partial implications* between closed sets of a
context.  Adapted to frequent itemsets, the paper's Theorem 2 states that
the set of rules

    ``C1 → C2 \\ C1``   for frequent closed itemsets ``C1 ⊂ C2``,

with support ``supp(C2)`` and confidence ``supp(C2) / supp(C1)``, is a
basis for all approximate (confidence < 1) association rules.  Moreover
its *transitive reduction* — keeping only the pairs ``C1 ⊂ C2`` with no
frequent closed itemset strictly in between, i.e. the Hasse edges of the
iceberg lattice — is still a basis, because the confidence of any
closed-set pair is the product of the edge confidences along a path.

This module builds both variants directly from the lattice's precomputed
edge and confidence arrays: one vectorised threshold pass selects the
surviving pairs, and the rules themselves are assembled as a columnar
:class:`~repro.core.rulearrays.RuleArrays` by gathering antecedent /
consequent mask rows straight from the lattice's packed member masks —
no per-rule Python object is built unless a caller iterates the rule
set.  The pre-columnar per-pair loop is kept as
:meth:`LuxenburgerBasis.iter_rules_reference`, the oracle the
equivalence tests and the rule-materialisation benchmark compare
against.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import InvalidParameterError
from .bitmatrix import BitMatrix
from .families import ClosedItemsetFamily
from .itemset import Itemset
from .lattice import IcebergLattice
from .parallel import get_executor
from .rulearrays import RuleArrays, relative_supports, resolve_block_rows
from .rules import AssociationRule, RuleSet

__all__ = ["LuxenburgerBasis", "build_luxenburger_basis"]


class LuxenburgerBasis:
    """The Luxenburger basis (full or transitively reduced) of a context.

    Parameters
    ----------
    closed:
        The frequent closed itemset family.
    minconf:
        Minimum confidence threshold; only rules at or above it are kept.
        (Rules below the threshold carry no information for the target
        rule set: any derivable rule with confidence ``≥ minconf`` only
        traverses edges with confidence ``≥ minconf``, since every edge
        confidence on a path is at least the product.)
    transitive_reduction:
        When ``True`` (the reduced basis of Theorem 2), keep only the Hasse
        edges of the iceberg lattice; when ``False``, keep every comparable
        pair of closed itemsets.
    lattice:
        Optional pre-built iceberg lattice of *closed*; pass one to share
        the (vectorised, but not free) lattice construction between the
        bases built from the same closed family.
    lattice_strategy:
        Order-core strategy used when the basis builds its own lattice
        (ignored when ``lattice`` is given); see
        :class:`~repro.core.lattice.IcebergLattice`.
    block_rows:
        Row-block size of the streamed column assembly.  ``None`` (the
        default) sizes the blocks from the shared working-set budget so
        peak *mask* memory beyond the finished columns stays constant
        however many rules the basis holds; any positive integer forces
        that block size.  The streamed build is byte-identical to the
        kept one-shot path (:meth:`_build_arrays_materialized`).
    workers:
        Worker count for the sharded block assembly (and the lattice
        construction when the basis builds its own lattice); ``None``
        defers to the ``REPRO_NUM_WORKERS`` environment variable, else
        serial.  Blocks are consumed in submission order with bounded
        prefetch, so the built basis is byte-identical for any worker
        count and the streamed-memory bound still holds.
    """

    def __init__(
        self,
        closed: ClosedItemsetFamily,
        minconf: float,
        transitive_reduction: bool = True,
        lattice: IcebergLattice | None = None,
        lattice_strategy: str = "auto",
        block_rows: int | None = None,
        workers: int | None = None,
    ) -> None:
        if not 0.0 <= minconf <= 1.0:
            raise InvalidParameterError(f"minconf must lie in [0, 1], got {minconf}")
        if lattice is not None and lattice.closed_family is not closed:
            raise InvalidParameterError(
                "the provided lattice was built from a different closed family"
            )
        self._closed = closed
        self._minconf = minconf
        self._reduced = transitive_reduction
        self._block_rows = block_rows
        self._workers = workers
        self._lattice = (
            lattice
            if lattice is not None
            else IcebergLattice(closed, strategy=lattice_strategy, workers=workers)
        )
        # Rows are unique by construction: the antecedent is a closed
        # member's mask and the consequent union the antecedent is the
        # ancestor closure, so distinct (member, ancestor) order pairs
        # can never collide on the (antecedent, consequent) key.  See the
        # matching note in InformativeBasis.__init__.
        self._rules = RuleSet.from_arrays(self._build_arrays(), assume_unique=True)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_arrays(self) -> RuleArrays:
        """Assemble the basis as columns, streamed in bounded row blocks.

        The surviving ``(smaller, larger)`` pairs are expanded in blocks
        of ``block_rows`` rules: each block gathers its antecedent rows
        from the lattice's packed member masks, AND-NOTs the larger
        members' masks into consequents, and is written straight into the
        preallocated output columns — beyond the finished columns only
        one block of mask temporaries is ever live.
        """
        lattice = self._lattice
        universe = lattice.item_universe
        rows, cols, confidences = lattice.confidence_window_pairs(
            self._minconf, reduced=self._reduced
        )
        block = resolve_block_rows(self._block_rows, lattice.member_masks().shape[1])
        executor = get_executor(self._workers)

        def assemble(start: int) -> RuleArrays:
            return self._array_block(rows, cols, confidences, start, block)

        # Ordered imap with bounded prefetch: workers assemble blocks
        # ahead of the consumer while from_blocks writes them in
        # submission order — byte-identical to the serial stream.
        return RuleArrays.from_blocks(
            executor.imap(assemble, range(0, len(rows), block)),
            universe,
            n_rows=len(rows),
        )

    def _array_block(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        confidences: np.ndarray,
        start: int,
        block_rows: int,
    ) -> RuleArrays:
        """One bounded row block of the basis columns.

        Reads only shared immutable inputs, so blocks can be assembled
        on any worker in any order; the consumer reassembles them by
        submission order.
        """
        lattice = self._lattice
        masks = lattice.member_masks()
        universe = lattice.item_universe
        counts = lattice.support_counts()
        n_objects = self._closed.n_objects
        sl = slice(start, start + block_rows)
        antecedents = masks[rows[sl]]
        consequents = masks[cols[sl]] & ~antecedents
        larger_counts = counts[cols[sl]]
        return RuleArrays(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            relative_supports(larger_counts, n_objects),
            confidences[sl].copy(),
            larger_counts,
        )

    def _build_arrays_materialized(self) -> RuleArrays:
        """The pre-streaming one-shot column assembly (oracle for tests).

        Gathers every antecedent/consequent row in one shot; kept so the
        equivalence tests can assert the streamed build byte-identical.
        """
        lattice = self._lattice
        rows, cols, confidences = lattice.confidence_window_pairs(
            self._minconf, reduced=self._reduced
        )
        masks = lattice.member_masks()
        universe = lattice.item_universe
        antecedents = masks[rows]
        consequents = masks[cols] & ~antecedents
        larger_counts = lattice.support_counts()[cols]
        return RuleArrays(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            relative_supports(larger_counts, self._closed.n_objects),
            confidences,
            larger_counts,
        )

    def iter_rules_reference(self) -> Iterator[AssociationRule]:
        """The pre-columnar per-rule object pipeline, kept as the oracle.

        Yields exactly the rules of :attr:`rules`, each materialised the
        old way (one :class:`AssociationRule` and two Itemset set
        operations per pair).  Used by the equivalence tests and as the
        baseline of the rule-materialisation microbenchmark.
        """
        lattice = self._lattice
        rows, cols, confidences = lattice.confidence_window_pairs(
            self._minconf, reduced=self._reduced
        )
        members = lattice.members
        supports = lattice.support_counts()
        n_objects = self._closed.n_objects
        for row, col, confidence in zip(rows, cols, confidences):
            smaller = members[row]
            larger = members[col]
            larger_count = int(supports[col])
            yield AssociationRule(
                antecedent=smaller,
                consequent=larger.difference(smaller),
                support=larger_count / n_objects if n_objects else 0.0,
                confidence=float(confidence),
                support_count=larger_count,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def closed_family(self) -> ClosedItemsetFamily:
        """The frequent closed itemset family the basis was built from."""
        return self._closed

    @property
    def lattice(self) -> IcebergLattice:
        """The iceberg lattice of the closed family (shared with derivation)."""
        return self._lattice

    @property
    def minconf(self) -> float:
        """Minimum confidence threshold applied to the basis rules."""
        return self._minconf

    @property
    def is_transitive_reduction(self) -> bool:
        """``True`` when only Hasse edges are kept (the reduced basis)."""
        return self._reduced

    @property
    def rules(self) -> RuleSet:
        """The basis rules as a :class:`~repro.core.rules.RuleSet`."""
        return self._rules

    @property
    def metadata(self) -> dict[str, object]:
        """Shape metadata for the reduction reports."""
        return {
            "transitive_reduction": self._reduced,
            "minconf": self._minconf,
            "lattice_nodes": len(self._lattice),
            "lattice_edges": self._lattice.edge_count(),
        }

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        kind = "reduced" if self._reduced else "full"
        return (
            f"LuxenburgerBasis({len(self._rules)} rules, {kind}, "
            f"minconf={self._minconf})"
        )

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def edge_confidence(self, smaller: Itemset, larger: Itemset) -> float | None:
        """Confidence of the basis rule between two closed itemsets, if present."""
        rule = self._rules.get(smaller, larger.difference(smaller))
        return None if rule is None else rule.confidence

    def path_confidence(self, smaller: Itemset, larger: Itemset) -> float | None:
        """Confidence between two comparable closed itemsets via the lattice.

        For the reduced basis the confidence of ``smaller → larger`` is the
        product of the edge confidences along *any* path from ``smaller``
        to ``larger`` in the Hasse diagram; all paths give the same
        product, namely ``supp(larger) / supp(smaller)``, which the
        lattice's containment arrays answer directly without walking a
        path.  Returns ``None`` when the two itemsets are not comparable
        in the lattice.
        """
        smaller = Itemset.coerce(smaller)
        larger = Itemset.coerce(larger)
        return self._lattice.confidence_between(smaller, larger)


def build_luxenburger_basis(
    closed: ClosedItemsetFamily,
    minconf: float,
    transitive_reduction: bool = True,
    lattice: IcebergLattice | None = None,
    lattice_strategy: str = "auto",
    block_rows: int | None = None,
    workers: int | None = None,
) -> LuxenburgerBasis:
    """Build the Luxenburger basis (reduced by default) of a closed family."""
    return LuxenburgerBasis(
        closed,
        minconf=minconf,
        transitive_reduction=transitive_reduction,
        lattice=lattice,
        lattice_strategy=lattice_strategy,
        block_rows=block_rows,
        workers=workers,
    )
