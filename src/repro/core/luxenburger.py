"""The Luxenburger basis for approximate association rules (Theorem 2).

Luxenburger (1991) studied *partial implications* between closed sets of a
context.  Adapted to frequent itemsets, the paper's Theorem 2 states that
the set of rules

    ``C1 → C2 \\ C1``   for frequent closed itemsets ``C1 ⊂ C2``,

with support ``supp(C2)`` and confidence ``supp(C2) / supp(C1)``, is a
basis for all approximate (confidence < 1) association rules.  Moreover
its *transitive reduction* — keeping only the pairs ``C1 ⊂ C2`` with no
frequent closed itemset strictly in between, i.e. the Hasse edges of the
iceberg lattice — is still a basis, because the confidence of any
closed-set pair is the product of the edge confidences along a path.

This module builds both variants and exposes the structure (which rule
corresponds to which lattice edge) needed by the derivation engine and by
the experiments.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from ..errors import InvalidParameterError
from .families import ClosedItemsetFamily
from .itemset import Itemset
from .lattice import IcebergLattice
from .rules import AssociationRule, RuleSet

__all__ = ["LuxenburgerBasis", "build_luxenburger_basis"]

_EPSILON = 1e-12


@dataclass(frozen=True)
class _ClosedPair:
    """A comparable pair of frequent closed itemsets ``smaller ⊂ larger``."""

    smaller: Itemset
    larger: Itemset
    smaller_count: int
    larger_count: int

    @property
    def confidence(self) -> float:
        return self.larger_count / self.smaller_count if self.smaller_count else 0.0


class LuxenburgerBasis:
    """The Luxenburger basis (full or transitively reduced) of a context.

    Parameters
    ----------
    closed:
        The frequent closed itemset family.
    minconf:
        Minimum confidence threshold; only rules at or above it are kept.
        (Rules below the threshold carry no information for the target
        rule set: any derivable rule with confidence ``≥ minconf`` only
        traverses edges with confidence ``≥ minconf``, since every edge
        confidence on a path is at least the product.)
    transitive_reduction:
        When ``True`` (the reduced basis of Theorem 2), keep only the Hasse
        edges of the iceberg lattice; when ``False``, keep every comparable
        pair of closed itemsets.
    """

    def __init__(
        self,
        closed: ClosedItemsetFamily,
        minconf: float,
        transitive_reduction: bool = True,
    ) -> None:
        if not 0.0 <= minconf <= 1.0:
            raise InvalidParameterError(f"minconf must lie in [0, 1], got {minconf}")
        self._closed = closed
        self._minconf = minconf
        self._reduced = transitive_reduction
        self._lattice = IcebergLattice(closed)
        self._pairs = list(self._enumerate_pairs())
        self._rules = RuleSet(self._build_rules())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _enumerate_pairs(self) -> Iterator[_ClosedPair]:
        if self._reduced:
            edges = self._lattice.hasse_edges()
        else:
            edges = self._lattice.comparable_pairs()
        for smaller, larger in edges:
            yield _ClosedPair(
                smaller=smaller,
                larger=larger,
                smaller_count=self._closed.support_count(smaller),
                larger_count=self._closed.support_count(larger),
            )

    def _build_rules(self) -> Iterator[AssociationRule]:
        n_objects = self._closed.n_objects
        for pair in self._pairs:
            confidence = pair.confidence
            if confidence >= 1.0 - _EPSILON:
                # Two distinct closed itemsets always have distinct supports
                # along a subset chain; a confidence of 1 would mean the
                # smaller one is not closed.  Guarded for malformed input.
                continue
            if confidence < self._minconf - _EPSILON:
                continue
            support = pair.larger_count / n_objects if n_objects else 0.0
            yield AssociationRule(
                antecedent=pair.smaller,
                consequent=pair.larger.difference(pair.smaller),
                support=support,
                confidence=confidence,
                support_count=pair.larger_count,
            )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def closed_family(self) -> ClosedItemsetFamily:
        """The frequent closed itemset family the basis was built from."""
        return self._closed

    @property
    def lattice(self) -> IcebergLattice:
        """The iceberg lattice of the closed family (shared with derivation)."""
        return self._lattice

    @property
    def minconf(self) -> float:
        """Minimum confidence threshold applied to the basis rules."""
        return self._minconf

    @property
    def is_transitive_reduction(self) -> bool:
        """``True`` when only Hasse edges are kept (the reduced basis)."""
        return self._reduced

    @property
    def rules(self) -> RuleSet:
        """The basis rules as a :class:`~repro.core.rules.RuleSet`."""
        return self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        kind = "reduced" if self._reduced else "full"
        return (
            f"LuxenburgerBasis({len(self._rules)} rules, {kind}, "
            f"minconf={self._minconf})"
        )

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------
    def edge_confidence(self, smaller: Itemset, larger: Itemset) -> float | None:
        """Confidence of the basis rule between two closed itemsets, if present."""
        rule = self._rules.get(smaller, larger.difference(smaller))
        return None if rule is None else rule.confidence

    def path_confidence(self, smaller: Itemset, larger: Itemset) -> float | None:
        """Confidence between two comparable closed itemsets via lattice paths.

        For the reduced basis the confidence of ``smaller → larger`` is the
        product of the edge confidences along *any* path from ``smaller``
        to ``larger`` in the Hasse diagram (all paths give the same
        product, namely ``supp(larger) / supp(smaller)``).  Returns ``None``
        when the two itemsets are not comparable in the lattice.
        """
        smaller = Itemset.coerce(smaller)
        larger = Itemset.coerce(larger)
        if smaller == larger:
            return 1.0
        path = self._lattice.path_between(smaller, larger)
        if path is None:
            return None
        confidence = 1.0
        for lower, upper in zip(path, path[1:]):
            confidence *= self._closed.support_count(
                upper
            ) / self._closed.support_count(lower)
        return confidence


def build_luxenburger_basis(
    closed: ClosedItemsetFamily,
    minconf: float,
    transitive_reduction: bool = True,
) -> LuxenburgerBasis:
    """Build the Luxenburger basis (reduced by default) of a closed family."""
    return LuxenburgerBasis(
        closed, minconf=minconf, transitive_reduction=transitive_reduction
    )
