"""The generic and informative bases (minimal generator based) — extension.

The same research group followed the ICDE 2000 paper with bases whose
antecedents are *minimal generators* instead of pseudo-closed itemsets
(Bastide, Pasquier, Taouil, Stumme, Lakhal — "Mining minimal non-redundant
association rules using frequent closed itemsets", CL 2000).  They are
included here as a documented extension because they share all the
machinery (closed itemsets, generators, lattice) and provide a useful
ablation point: the generic basis is usually somewhat larger than the
Duquenne-Guigues basis (which is provably minimum) but every one of its
rules has a minimal antecedent and a maximal consequent, which users often
find more directly actionable.

* **Generic basis** (exact rules): ``G → h(G) \\ G`` for every frequent
  minimal generator ``G`` with ``G ≠ h(G)``; confidence 1, support
  ``supp(h(G))``.
* **Informative basis** (approximate rules): ``G → C \\ G`` for every
  frequent minimal generator ``G`` (with closure ``h(G)``) and every
  frequent closed itemset ``C ⊃ h(G)``; confidence
  ``supp(C)/supp(h(G))``, kept when at least ``minconf``.  The *reduced*
  variant restricts ``C`` to the immediate successors of ``h(G)`` in the
  iceberg lattice.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import InvalidParameterError
from .bitmatrix import BitMatrix
from .constants import EPSILON
from .generators import GeneratorFamily
from .lattice import IcebergLattice
from .parallel import get_executor
from .rulearrays import (
    RuleArrays,
    pack_itemsets_into,
    relative_supports,
    resolve_block_rows,
)
from .rules import AssociationRule, RuleSet

__all__ = ["GenericBasis", "InformativeBasis"]


class GenericBasis:
    """The generic basis for exact rules, built from minimal generators.

    The rules are assembled as a columnar
    :class:`~repro.core.rulearrays.RuleArrays`: one packed-mask gather
    per column instead of one Python object per rule.  The pre-columnar
    loop survives as :meth:`iter_rules_reference` (the test oracle).
    """

    def __init__(self, generators: GeneratorFamily) -> None:
        self._generators = generators
        self._closed = generators.closed_family
        self._rules = RuleSet.from_arrays(self._build_arrays())

    def _build_arrays(self) -> RuleArrays:
        gen_matrix, closures, universe = self._generators.packed_masks()
        unique_closures = self._generators.closed_itemsets()
        position = {closed: index for index, closed in enumerate(unique_closures)}
        closure_matrix = pack_itemsets_into(unique_closures, universe)
        counts = np.array(
            [self._closed.support_count(closed) for closed in unique_closures],
            dtype=np.int64,
        )
        closure_index = np.array(
            [position[closed] for closed in closures], dtype=np.int64
        )
        antecedents = gen_matrix.words
        consequents = closure_matrix.words[closure_index] & ~antecedents
        # A generator equal to its closure packs to an empty consequent —
        # those pairs produce no exact rule (the proper_generators_of
        # condition of the object pipeline).
        keep = np.any(consequents != 0, axis=1)
        support_counts = counts[closure_index]
        arrays = RuleArrays(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            relative_supports(support_counts, self._closed.n_objects),
            np.ones(len(closures), dtype=np.float64),
            support_counts,
        )
        return arrays.select(keep)

    def iter_rules_reference(self) -> Iterator[AssociationRule]:
        """The pre-columnar object pipeline (oracle for tests/benchmarks)."""
        n_objects = self._closed.n_objects
        for closed in self._generators.closed_itemsets():
            count = self._closed.support_count(closed)
            for generator in self._generators.proper_generators_of(closed):
                consequent = closed.difference(generator)
                if not consequent:
                    continue
                yield AssociationRule(
                    antecedent=generator,
                    consequent=consequent,
                    support=count / n_objects if n_objects else 0.0,
                    confidence=1.0,
                    support_count=count,
                )

    @property
    def rules(self) -> RuleSet:
        """The generic-basis rules."""
        return self._rules

    @property
    def metadata(self) -> dict[str, object]:
        """Shape metadata for the reduction reports."""
        return {
            "closed_itemsets": len(self._closed),
            "generator_closures": len(self._generators),
        }

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        return f"GenericBasis({len(self._rules)} rules)"


class InformativeBasis:
    """The informative basis for approximate rules, built from generators.

    Parameters
    ----------
    generators:
        Minimal generators grouped by their closures.
    minconf:
        Minimum confidence threshold.
    reduced:
        When ``True``, only pair each generator's closure with its
        immediate successors in the iceberg lattice (the reduced
        informative basis); when ``False``, with every larger closed set.
    lattice:
        Optional pre-built iceberg lattice of the generators' closed
        family, to share the lattice construction between bases.
    lattice_strategy:
        Order-core strategy used when the basis builds its own lattice
        (ignored when ``lattice`` is given); see
        :class:`~repro.core.lattice.IcebergLattice`.
    block_rows:
        Row-block size of the streamed CSR expansion.  ``None`` (the
        default) sizes the blocks from the shared working-set budget so
        peak *mask* memory beyond the finished columns stays constant
        however many rules the basis holds; any positive integer forces
        that block size.  The streamed build is byte-identical to the
        kept one-shot path (:meth:`_build_arrays_materialized`).
    workers:
        Worker count for the sharded block expansion (and the lattice
        construction when the basis builds its own lattice); ``None``
        defers to the ``REPRO_NUM_WORKERS`` environment variable, else
        serial.  Blocks are consumed in submission order with bounded
        prefetch, so the built basis is byte-identical for any worker
        count and the streamed-memory bound still holds.
    """

    def __init__(
        self,
        generators: GeneratorFamily,
        minconf: float,
        reduced: bool = True,
        lattice: IcebergLattice | None = None,
        lattice_strategy: str = "auto",
        block_rows: int | None = None,
        workers: int | None = None,
    ) -> None:
        if not 0.0 <= minconf <= 1.0:
            raise InvalidParameterError(f"minconf must lie in [0, 1], got {minconf}")
        self._generators = generators
        self._closed = generators.closed_family
        if lattice is not None and lattice.closed_family is not self._closed:
            raise InvalidParameterError(
                "the provided lattice was built from a different closed family"
            )
        self._minconf = minconf
        self._reduced = reduced
        self._block_rows = block_rows
        self._workers = workers
        self._lattice = (
            lattice
            if lattice is not None
            else IcebergLattice(
                self._closed, strategy=lattice_strategy, workers=workers
            )
        )
        # Rows are unique by construction: the antecedent is the generator
        # mask and the consequent union the antecedent reconstructs the
        # ancestor closure (generator <= closure(ancestor)), so distinct
        # (generator, ancestor) expansion pairs can never collide on the
        # (antecedent, consequent) key.  Skipping the dedup pass avoids an
        # O(rules) multiword key sort that dominates rule-dense builds;
        # the analytic-count and reference-oracle tests would catch any
        # emitter bug that started producing duplicates.
        self._rules = RuleSet.from_arrays(self._build_arrays(), assume_unique=True)

    def _expansion_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, "BitMatrix", np.ndarray, np.ndarray, np.ndarray]:
        """The CSR shape of the (generator × closed-pair) expansion.

        Returns ``(cols, confidences, gen_matrix, closure_index, repeats,
        offsets)``: the confidence-filtered pair arrays grouped by their
        smaller member, the packed generator rows, each generator's
        closure position, how many pairs each generator expands into and
        the CSR offsets of each closure's contiguous pair slice.  Shared
        by the streamed and the one-shot assembly so both expand exactly
        the same row sequence.
        """
        lattice = self._lattice
        universe = lattice.item_universe
        rows, cols, confidences = lattice.confidence_window_pairs(
            self._minconf, reduced=self._reduced
        )
        n_members = len(lattice.members)
        row_counts = np.bincount(rows, minlength=n_members)
        offsets = np.concatenate(([0], np.cumsum(row_counts)))
        gen_matrix, closures, _ = self._generators.packed_masks(universe)
        closure_index = np.array(
            [lattice.member_index(closed) for closed in closures], dtype=np.int64
        )
        if len(closures):
            repeats = row_counts[closure_index]
        else:
            repeats = np.zeros(0, dtype=np.int64)
        return cols, confidences, gen_matrix, closure_index, repeats, offsets

    def _build_arrays(self) -> RuleArrays:
        """Expand (generator, closed-pair) combinations in bounded blocks.

        The expansion is addressed as one flat row space of
        ``repeats.sum()`` rules; each block of ``block_rows`` consecutive
        rows recovers its generator via a ``searchsorted`` over the
        expansion boundaries, gathers its antecedent/target masks, and is
        written straight into the preallocated output columns — beyond
        the finished columns only one block of mask temporaries (and
        ``O(pairs)`` index arrays) is ever live.
        """
        lattice = self._lattice
        universe = lattice.item_universe
        cols, confidences, gen_matrix, closure_index, repeats, offsets = (
            self._expansion_arrays()
        )
        total = int(repeats.sum())
        block = resolve_block_rows(self._block_rows, lattice.member_masks().shape[1])
        executor = get_executor(self._workers)
        boundaries = np.cumsum(repeats)
        starts = boundaries - repeats

        def expand(lo: int) -> RuleArrays:
            return self._array_block(
                lo,
                min(lo + block, total),
                cols,
                confidences,
                gen_matrix,
                closure_index,
                boundaries,
                starts,
                offsets,
            )

        # Ordered imap with bounded prefetch: workers expand blocks ahead
        # of the consumer while from_blocks writes them in submission
        # order — byte-identical to the serial stream, still bounded.
        return RuleArrays.from_blocks(
            executor.imap(expand, range(0, total, block)),
            universe,
            n_rows=total,
        )

    def _array_block(
        self,
        lo: int,
        hi: int,
        cols: np.ndarray,
        confidences: np.ndarray,
        gen_matrix: "BitMatrix",
        closure_index: np.ndarray,
        boundaries: np.ndarray,
        starts: np.ndarray,
        offsets: np.ndarray,
    ) -> RuleArrays:
        """One bounded block ``[lo, hi)`` of the expanded basis columns.

        Reads only shared immutable inputs, so blocks can be expanded on
        any worker in any order; the consumer reassembles them by
        submission order.
        """
        lattice = self._lattice
        universe = lattice.item_universe
        masks = lattice.member_masks()
        counts = lattice.support_counts()
        n_objects = self._closed.n_objects
        flat = np.arange(lo, hi)
        generator_rows = np.searchsorted(boundaries, flat, side="right")
        within = flat - starts[generator_rows]
        pair_positions = offsets[closure_index[generator_rows]] + within
        targets = cols[pair_positions]
        antecedents = gen_matrix.words[generator_rows]
        consequents = masks[targets] & ~antecedents
        support_counts = counts[targets]
        arrays = RuleArrays(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            relative_supports(support_counts, n_objects),
            confidences[pair_positions],
            support_counts,
        )
        # target ⊃ closure ⊇ generator makes an empty consequent
        # impossible for well-formed input; the guard mirrors the
        # object pipeline's defence against malformed families.
        keep = np.any(consequents != 0, axis=1)
        return arrays if bool(keep.all()) else arrays.select(keep)

    def _build_arrays_materialized(self) -> RuleArrays:
        """The pre-streaming one-shot CSR expansion (oracle for tests).

        Materialises every expanded row in one gather; kept so the
        equivalence tests can assert the streamed build byte-identical.
        """
        lattice = self._lattice
        universe = lattice.item_universe
        cols, confidences, gen_matrix, closure_index, repeats, offsets = (
            self._expansion_arrays()
        )
        total = int(repeats.sum())
        generator_rows = np.repeat(np.arange(len(closure_index)), repeats)
        # Per-expanded-row position into the pair arrays: each generator
        # walks its closure's contiguous pair slice from the start.
        within = np.arange(total) - np.repeat(np.cumsum(repeats) - repeats, repeats)
        pair_positions = np.repeat(offsets[closure_index], repeats) + within
        targets = cols[pair_positions]

        masks = lattice.member_masks()
        antecedents = gen_matrix.words[generator_rows]
        consequents = masks[targets] & ~antecedents
        support_counts = lattice.support_counts()[targets]
        arrays = RuleArrays(
            BitMatrix(antecedents, len(universe)),
            BitMatrix(consequents, len(universe)),
            universe,
            relative_supports(support_counts, self._closed.n_objects),
            confidences[pair_positions],
            support_counts,
        )
        # target ⊃ closure ⊇ generator makes an empty consequent
        # impossible for well-formed input; the guard mirrors the object
        # pipeline's defence against malformed generator families.
        return arrays.select(np.any(consequents != 0, axis=1))

    def iter_rules_reference(self) -> Iterator[AssociationRule]:
        """The pre-columnar object pipeline (oracle for tests/benchmarks)."""
        n_objects = self._closed.n_objects
        lattice = self._lattice
        for closed in self._generators.closed_itemsets():
            lower_count = self._closed.support_count(closed)
            if self._reduced:
                targets = lattice.children_of(closed)
            else:
                # The lattice's containment row answers "every larger
                # closed set" without re-scanning the whole family.
                targets = lattice.proper_supersets(closed)
            for target in targets:
                upper_count = self._closed.support_count(target)
                confidence = upper_count / lower_count if lower_count else 0.0
                if confidence < self._minconf - EPSILON:
                    continue
                if confidence >= 1.0 - EPSILON:
                    continue
                for generator in self._generators.generators_of(closed):
                    consequent = target.difference(generator)
                    if not consequent:
                        continue
                    yield AssociationRule(
                        antecedent=generator,
                        consequent=consequent,
                        support=upper_count / n_objects if n_objects else 0.0,
                        confidence=confidence,
                        support_count=upper_count,
                    )

    @property
    def rules(self) -> RuleSet:
        """The informative-basis rules."""
        return self._rules

    @property
    def minconf(self) -> float:
        """Minimum confidence threshold used when building the basis."""
        return self._minconf

    @property
    def is_reduced(self) -> bool:
        """``True`` when restricted to lattice-adjacent closed pairs."""
        return self._reduced

    @property
    def lattice(self) -> IcebergLattice:
        """The iceberg lattice the basis pairs were read from."""
        return self._lattice

    @property
    def metadata(self) -> dict[str, object]:
        """Shape metadata for the reduction reports."""
        return {
            "reduced": self._reduced,
            "minconf": self._minconf,
            "lattice_nodes": len(self._lattice),
            "lattice_edges": self._lattice.edge_count(),
        }

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self) -> Iterator[AssociationRule]:
        return iter(self._rules)

    def __repr__(self) -> str:
        kind = "reduced" if self._reduced else "full"
        return f"InformativeBasis({len(self._rules)} rules, {kind}, minconf={self._minconf})"
