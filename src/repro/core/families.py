"""Families of (closed) frequent itemsets with their supports.

The mining algorithms of :mod:`repro.algorithms` all return one of the two
collection types defined here:

* :class:`ItemsetFamily` — a set of frequent itemsets together with their
  absolute supports (what Apriori produces);
* :class:`ClosedItemsetFamily` — the same, restricted to *closed* itemsets
  (what Close, A-Close and CHARM produce).

A :class:`ClosedItemsetFamily` is the "minimal non-redundant generating
set" of the paper: the support of *any* frequent itemset can be recovered
from it as the support of the smallest closed itemset containing it
(:meth:`ClosedItemsetFamily.inferred_support_count`).  That recovery rule
is the keystone of the whole bases construction and is verified by the
property-based tests.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Iterator, Mapping

import numpy as np

from ..errors import InvalidParameterError
from .itemset import Item, Itemset

__all__ = ["ItemsetFamily", "ClosedItemsetFamily"]


class ItemsetFamily:
    """A finite family of itemsets with absolute support counts.

    Parameters
    ----------
    supports:
        Mapping from itemset to absolute support (number of objects).
    n_objects:
        Total number of objects in the originating database; needed to
        convert absolute counts into relative supports.
    minsup_count:
        The absolute support threshold that was used to mine the family.
        Stored for provenance and used by reports.
    """

    def __init__(
        self,
        supports: Mapping[Itemset, int] | Iterable[tuple[Itemset, int]],
        n_objects: int,
        minsup_count: int = 1,
    ) -> None:
        if n_objects < 0:
            raise InvalidParameterError("n_objects cannot be negative")
        if minsup_count < 1:
            raise InvalidParameterError("minsup_count must be at least 1")
        items = supports.items() if isinstance(supports, Mapping) else supports
        self._supports: dict[Itemset, int] = {}
        for itemset, count in items:
            itemset = Itemset.coerce(itemset)
            count = int(count)
            if count < 0 or count > n_objects:
                raise InvalidParameterError(
                    f"support count {count} of {itemset} outside [0, {n_objects}]"
                )
            self._supports[itemset] = count
        self._n_objects = n_objects
        self._minsup_count = minsup_count

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        """Number of objects of the originating database."""
        return self._n_objects

    @property
    def minsup_count(self) -> int:
        """Absolute support threshold used for mining."""
        return self._minsup_count

    @property
    def minsup(self) -> float:
        """Relative support threshold used for mining."""
        if self._n_objects == 0:
            return 0.0
        return self._minsup_count / self._n_objects

    def __len__(self) -> int:
        return len(self._supports)

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self._supports)

    def __contains__(self, itemset: object) -> bool:
        if isinstance(itemset, Itemset):
            return itemset in self._supports
        if isinstance(itemset, (frozenset, set, tuple, list)):
            return Itemset(itemset) in self._supports
        return False

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self._supports)} itemsets, "
            f"n_objects={self._n_objects}, minsup_count={self._minsup_count})"
        )

    def itemsets(self) -> list[Itemset]:
        """Return the itemsets sorted in the canonical (size, lexicographic) order."""
        return sorted(self._supports)

    def items_with_supports(self) -> Iterator[tuple[Itemset, int]]:
        """Yield ``(itemset, absolute support)`` pairs in canonical order."""
        for itemset in self.itemsets():
            yield itemset, self._supports[itemset]

    def to_dict(self) -> dict[Itemset, int]:
        """Return a copy of the underlying ``itemset -> count`` mapping."""
        return dict(self._supports)

    # ------------------------------------------------------------------
    # Support queries
    # ------------------------------------------------------------------
    def support_count(self, itemset: Itemset | Iterable[Item]) -> int:
        """Absolute support of a member itemset; raises ``KeyError`` if absent."""
        return self._supports[Itemset.coerce(itemset)]

    def support(self, itemset: Itemset | Iterable[Item]) -> float:
        """Relative support of a member itemset."""
        if self._n_objects == 0:
            return 0.0
        return self.support_count(itemset) / self._n_objects

    def get(self, itemset: Itemset | Iterable[Item], default: int | None = None):
        """Absolute support of *itemset*, or *default* when absent."""
        return self._supports.get(Itemset.coerce(itemset), default)

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def by_size(self) -> dict[int, list[Itemset]]:
        """Group the itemsets by cardinality (used by level-wise reports)."""
        grouped: dict[int, list[Itemset]] = {}
        for itemset in self.itemsets():
            grouped.setdefault(len(itemset), []).append(itemset)
        return grouped

    def max_size(self) -> int:
        """Cardinality of the largest itemset in the family (0 when empty)."""
        return max((len(itemset) for itemset in self._supports), default=0)

    def maximal_itemsets(self) -> list[Itemset]:
        """Return the itemsets that have no proper superset in the family."""
        ordered = sorted(self._supports, key=len, reverse=True)
        maximal: list[Itemset] = []
        for itemset in ordered:
            if not any(itemset.is_proper_subset(m) for m in maximal):
                maximal.append(itemset)
        return sorted(maximal)

    def restricted_to_max_size(self, size: int) -> "ItemsetFamily":
        """Return a copy keeping only itemsets of cardinality ``<= size``."""
        return type(self)(
            {i: c for i, c in self._supports.items() if len(i) <= size},
            n_objects=self._n_objects,
            minsup_count=self._minsup_count,
        )

    def same_contents(self, other: "ItemsetFamily") -> bool:
        """Return ``True`` iff both families hold the same itemsets and counts."""
        return (
            self._n_objects == other._n_objects
            and self.to_dict() == other.to_dict()
        )


class ClosedItemsetFamily(ItemsetFamily):
    """A family of frequent *closed* itemsets with their supports.

    Beyond the plain family interface this class implements the inference
    machinery of the paper: the closure of any frequent itemset is the
    smallest member containing it, and its support is the support of that
    member.
    """

    #: Lazily built packed-containment index (see :meth:`_closure_lookup`).
    _closure_index: tuple | None = None

    #: Guards the lazy index build: the threaded serve daemon and the
    #: parallel closure path may fire concurrent first lookups at the
    #: same family.  Class-wide (the build is cheap and idempotent), so
    #: no per-instance mutable state is needed before first use.
    _closure_index_lock = threading.Lock()

    def _closure_lookup(self) -> tuple:
        """Size-bucketed packed-containment index over the members.

        Built once on first use (families are immutable after
        construction): the members stable-sorted by cardinality, their
        packed item-mask rows, and the aligned size / support columns.
        A :meth:`closure_of` query then tests one size bucket at a time
        with a vectorised masked compare instead of scanning the whole
        family per lookup.  Thread-safe: concurrent first lookups build
        the index under :data:`_closure_index_lock`.
        """
        if self._closure_index is None:
            with self._closure_index_lock:
                if self._closure_index is not None:
                    return self._closure_index
                from .rulearrays import pack_itemsets_into, sorted_universe

                members = sorted(self._supports, key=len)  # stable order kept
                universe = sorted_universe(
                    item for member in members for item in member
                )
                item_position = {item: pos for pos, item in enumerate(universe)}
                matrix = pack_itemsets_into(members, universe)
                sizes = np.array([len(member) for member in members], dtype=np.int64)
                counts = np.array(
                    [self._supports[member] for member in members], dtype=np.int64
                )
                self._closure_index = (members, matrix, sizes, counts, item_position)
        return self._closure_index

    def closure_of(self, itemset: Itemset | Iterable[Item]) -> Itemset | None:
        """Return the smallest closed itemset of the family containing *itemset*.

        Returns ``None`` when no member contains *itemset* (then *itemset*
        is not frequent at the family's threshold).  When several members
        contain *itemset*, the smallest one is unique because closed sets
        are stable under intersection; we nevertheless resolve ties by
        minimal support to stay robust if the family was built with a
        non-closed member injected by hand.

        Lookups go through the size-bucketed packed index: buckets of
        cardinality below the target are never touched, and the first
        bucket with a containing member answers (minimal support wins
        inside the bucket, earliest-inserted member on support ties —
        exactly the strictly-better-replaces semantics of the original
        linear scan).
        """
        target = Itemset.coerce(itemset)
        if not self._supports:
            return None
        members, matrix, sizes, counts, item_position = self._closure_lookup()
        if any(item not in item_position for item in target):
            return None  # some item appears in no member at all
        from .rulearrays import pack_itemset_words

        words = pack_itemset_words(target, item_position, matrix.n_words)
        start = int(np.searchsorted(sizes, len(target), side="left"))
        n = len(members)
        while start < n:
            stop = int(np.searchsorted(sizes, sizes[start], side="right"))
            block = matrix.words[start:stop]
            hits = np.nonzero(np.all((block & words) == words, axis=1))[0]
            if hits.size:
                best = hits[np.argmin(counts[start:stop][hits])]
                return members[start + int(best)]
            start = stop
        return None

    def bottom_closure(self) -> Itemset:
        """Return ``h(∅)``, the unique minimal closed itemset of the context.

        ``h(∅)`` is the set of items present in *every* object.  The mining
        algorithms never list it explicitly unless it is the closure of some
        single item, but it is recoverable from the family alone: an item
        belongs to ``h(∅)`` iff its (inferred) support equals the number of
        objects.  The Duquenne-Guigues construction needs this value to
        decide whether the empty itemset is pseudo-closed.
        """
        universe: set = set()
        for member in self._supports:
            universe.update(member.as_frozenset())
        bottom_items = [
            item
            for item in universe
            if self.inferred_support_count(Itemset.of(item)) == self._n_objects
        ]
        return Itemset(bottom_items)

    def inferred_support_count(self, itemset: Itemset | Iterable[Item]) -> int | None:
        """Support of an arbitrary frequent itemset, inferred from the family.

        ``support(X) = support(h(X))`` and ``h(X)`` is the smallest closed
        superset of ``X``; so the inferred support is the support of
        :meth:`closure_of`.  Returns ``None`` for itemsets not covered by
        the family (i.e. infrequent ones).
        """
        closure = self.closure_of(itemset)
        if closure is None:
            return None
        return self._supports[closure]

    def inferred_support(self, itemset: Itemset | Iterable[Item]) -> float | None:
        """Relative version of :meth:`inferred_support_count`."""
        count = self.inferred_support_count(itemset)
        if count is None:
            return None
        if self._n_objects == 0:
            return 0.0
        return count / self._n_objects

    def is_member_closed_in_family(self, itemset: Itemset | Iterable[Item]) -> bool:
        """Check that a member is minimal among members containing it.

        Used by validation code: in a well-formed closed family every
        member is its own ``closure_of``.
        """
        target = Itemset.coerce(itemset)
        if target not in self._supports:
            return False
        return self.closure_of(target) == target

    def frequent_supersets(self, itemset: Itemset | Iterable[Item]) -> list[Itemset]:
        """Return every member that is a proper superset of *itemset*."""
        target = Itemset.coerce(itemset)
        return sorted(
            member
            for member in self._supports
            if target.is_proper_subset(member)
        )

    def expand_to_frequent_itemsets(self) -> ItemsetFamily:
        """Materialise every frequent itemset (with support) from the closed family.

        Every frequent itemset is a subset of at least one frequent closed
        itemset, and its support is inferred by the smallest-closed-superset
        rule.  This expansion demonstrates the "generating set" property of
        Definition 1 and serves as an oracle in tests; it is exponential in
        the size of the largest closed itemset, so it is only meant for
        small or strongly-thresholded families.
        """
        supports: dict[Itemset, int] = {}
        for member in sorted(self._supports, key=len):
            count = self._supports[member]
            for size in range(len(member) + 1):
                for subset in member.subsets_of_size(size):
                    existing = supports.get(subset)
                    if existing is None or count > existing:
                        supports[subset] = count
        # The empty itemset is technically frequent (support |O|) but the
        # frequent-itemset families produced by Apriori never include it;
        # drop it for comparability.
        supports.pop(Itemset.empty(), None)
        return ItemsetFamily(
            supports, n_objects=self._n_objects, minsup_count=self._minsup_count
        )
