"""Containment order cores over a family of itemsets — the strategy seam.

This module is the numeric core of the iceberg-lattice construction: given
a family of itemsets it packs each member into a row of uint64 item-masks
(the same little-endian ``np.packbits`` layout as the integer bitsets of
:mod:`repro.engine.bitops`), computes the full strict-containment relation,
and derives the Hasse diagram by boolean-matrix transitive reduction.

The containment relation of a family of *distinct* sets is a strict
partial order and hence already transitively closed, so the Hasse edges
are exactly ``proper & ~(proper @ proper)`` — a pair is immediate iff no
third member lies strictly in between.

Three interchangeable **order cores** answer the order queries the
lattice needs, each with a different memory/speed point:

* :class:`DenseOrderCore` — one dense ``n x n`` bool containment matrix
  (``n**2`` bytes) and a float32-BLAS transitive reduction; fastest
  through ~10k nodes.
* :class:`PackedOrderCore` — the bit-packed
  :class:`~repro.core.bitmatrix.BitMatrix` order (``n**2 / 8`` bytes, one
  uint64 word per 64 members) with blocked construction, popcount
  degrees, and a gather/OR-reduce transitive reduction; breaks the dense
  memory wall for families of 50k+ closed itemsets.
* :class:`ReferenceOrderCore` — the pre-vectorisation per-pair builder's
  edges plus mask-probing containment queries; ``O(n x words)`` memory,
  kept as the oracle the other two are checked against.

:func:`resolve_strategy` picks a core by family size (dense below
:data:`DENSE_NODE_LIMIT` nodes, packed above); the
``REPRO_LATTICE_STRATEGY`` environment variable or an explicit
``strategy=`` argument to :class:`~repro.core.lattice.IcebergLattice`
forces one.  All functions and cores operate on plain numpy arrays; the
lattice wrapper attaches itemset semantics (members, supports, accessors)
on top.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

import numpy as np

from ..errors import InvalidParameterError
from .bitmatrix import _BLOCK_CELLS as _PACKED_BLOCK_CELLS
from .bitmatrix import BitMatrix, packed_containment, packed_hasse_reduction
from .itemset import Itemset, _sort_key
from .parallel import get_executor

__all__ = [
    "pack_itemset_masks",
    "containment_matrix",
    "hasse_reduction",
    "containment_and_hasse",
    "resolve_strategy",
    "build_order_core",
    "OrderCore",
    "DenseOrderCore",
    "PackedOrderCore",
    "ReferenceOrderCore",
    "STRATEGIES",
    "DENSE_NODE_LIMIT",
    "STRATEGY_ENV_VAR",
]

#: Valid values for the lattice ``strategy=`` parameter.
STRATEGIES = ("auto", "dense", "packed", "reference")

#: ``auto`` switches from the dense to the packed core at this node
#: count: below it the two dense matrices fit comfortably (~200 MB at
#: 10k nodes) and the BLAS reduction wins on speed; above it the packed
#: core's 16x smaller footprint matters more.
DENSE_NODE_LIMIT = 10_000

#: Environment variable that overrides the ``auto`` strategy choice
#: process-wide (e.g. ``REPRO_LATTICE_STRATEGY=packed repro bases ...``).
STRATEGY_ENV_VAR = "REPRO_LATTICE_STRATEGY"


def resolve_strategy(n_nodes: int, strategy: str | None = "auto") -> str:
    """Resolve a lattice order strategy to ``dense``/``packed``/``reference``.

    ``auto`` (or ``None``) consults :data:`STRATEGY_ENV_VAR` first, then
    falls back to the size threshold: dense below
    :data:`DENSE_NODE_LIMIT` nodes, packed at or above it.  Explicit
    strategies pass through unchanged; unknown names raise.
    """
    if strategy is None:
        strategy = "auto"
    if strategy not in STRATEGIES:
        raise InvalidParameterError(
            f"unknown lattice strategy {strategy!r}; expected one of "
            f"{', '.join(STRATEGIES)}"
        )
    if strategy != "auto":
        return strategy
    forced = os.environ.get(STRATEGY_ENV_VAR, "").strip().lower()
    if forced and forced != "auto":
        if forced not in STRATEGIES:
            raise InvalidParameterError(
                f"invalid {STRATEGY_ENV_VAR}={forced!r}; expected one of "
                f"{', '.join(STRATEGIES)}"
            )
        return forced
    return "dense" if n_nodes < DENSE_NODE_LIMIT else "packed"


#: Upper bound (in bools) on the temporary blocks used by the chunked
#: containment / reduction passes, so huge families do not allocate
#: several full n x n intermediates at once.  Shared with the packed
#: passes of :mod:`repro.core.bitmatrix` so both constructions honour
#: one working-set budget.
_BLOCK_CELLS = _PACKED_BLOCK_CELLS


def pack_itemset_masks(
    itemsets: Sequence[Itemset],
) -> tuple[np.ndarray, list[object]]:
    """Pack *itemsets* into a ``(n, n_words)`` uint64 item-mask matrix.

    Returns the packed matrix and the item universe in the canonical order
    used for bit positions: bit ``i`` of a row (little-endian across the
    uint64 words) is set iff the member contains ``universe[i]``.
    """
    universe_set = {item for member in itemsets for item in member}
    try:
        universe = sorted(universe_set)
    except TypeError:
        universe = sorted(universe_set, key=_sort_key)
    index = {item: position for position, item in enumerate(universe)}

    n = len(itemsets)
    presence = np.zeros((n, len(universe)), dtype=bool)
    for row, member in enumerate(itemsets):
        for item in member:
            presence[row, index[item]] = True
    packed = np.packbits(presence, axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(np.uint64), universe


def containment_matrix(masks: np.ndarray) -> np.ndarray:
    """Strict-containment matrix of a packed family of distinct itemsets.

    ``result[i, j]`` is ``True`` iff row ``i`` is a proper subset of row
    ``j``.  Rows must be pairwise distinct (guaranteed for the members of
    an :class:`~repro.core.families.ItemsetFamily`), so subset-and-equal
    only happens on the diagonal, which is cleared.
    """
    n, n_words = masks.shape
    proper = np.empty((n, n), dtype=bool)
    block = max(1, _BLOCK_CELLS // max(1, n))
    for start in range(0, n, block):
        rows = masks[start : start + block]
        subset = np.ones((rows.shape[0], n), dtype=bool)
        for word in range(n_words):
            column = rows[:, word][:, None]
            subset &= (column & masks[None, :, word]) == column
        proper[start : start + block] = subset
    np.fill_diagonal(proper, False)
    return proper


def hasse_reduction(proper: np.ndarray) -> np.ndarray:
    """Transitive reduction of a strict partial order given as a bool matrix.

    Because a containment relation is transitive, a pair ``(i, j)`` has an
    intermediate element iff ``(proper @ proper)[i, j]`` is non-zero; the
    Hasse diagram keeps exactly the pairs without one.  The products run
    in float32 so they are dispatched to BLAS, but the cast happens block
    by block on both operands — only ``O(block * n)`` float temporaries
    ever exist, never a dense float copy of the whole matrix.
    """
    n = proper.shape[0]
    if n == 0:
        return proper.copy()
    hasse = np.empty_like(proper)
    block = max(1, _BLOCK_CELLS // max(1, n))
    for start in range(0, n, block):
        rows = proper[start : start + block]
        two_step = np.zeros(rows.shape, dtype=np.float32)
        for mid in range(0, n, block):
            two_step += rows[:, mid : mid + block].astype(np.float32) @ proper[
                mid : mid + block
            ].astype(np.float32)
        hasse[start : start + block] = rows & ~(two_step > 0.5)
    return hasse


def containment_and_hasse(
    itemsets: Sequence[Itemset],
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: pack, order and reduce a family in one call."""
    masks, _ = pack_itemset_masks(itemsets)
    proper = containment_matrix(masks)
    return proper, hasse_reduction(proper)


class OrderCore:
    """Strategy-agnostic order queries over an indexed family.

    Every core answers the same questions about the strict containment
    order of ``n`` family members (identified by their canonical index):
    the Hasse edge arrays, immediate successors/predecessors, degree
    vectors, full-order rows and single-pair ancestry tests.  The base
    class serves everything derivable from the edge index arrays alone
    (CSR-style adjacency, degrees); subclasses own the containment
    representation and the construction pass.

    Edge arrays are sorted row-major (by ``(smaller, larger)`` index) and
    frozen, so every strategy hands out byte-identical edge arrays for
    the same family.
    """

    #: Resolved strategy name, set by each subclass.
    strategy: str

    def __init__(self, hasse_rows: np.ndarray, hasse_cols: np.ndarray, n: int) -> None:
        hasse_rows = np.asarray(hasse_rows, dtype=np.int64)
        hasse_cols = np.asarray(hasse_cols, dtype=np.int64)
        order = np.lexsort((hasse_cols, hasse_rows))
        self._rows = hasse_rows[order]
        self._cols = hasse_cols[order]
        self._n = int(n)
        for array in (self._rows, self._cols):
            array.setflags(write=False)
        self._col_sorted: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n(self) -> int:
        """Number of family members the order is over."""
        return self._n

    @property
    def n_edges(self) -> int:
        """Number of Hasse edges."""
        return int(len(self._rows))

    def hasse_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Hasse edges as ``(smaller, larger)`` index arrays, row-major."""
        return self._rows, self._cols

    def successors(self, index: int) -> np.ndarray:
        """Immediate successors of member *index* (ascending indices)."""
        start, stop = np.searchsorted(self._rows, [index, index + 1])
        return self._cols[start:stop]

    def _by_column(self) -> tuple[np.ndarray, np.ndarray]:
        if self._col_sorted is None:
            order = np.lexsort((self._rows, self._cols))
            self._col_sorted = (self._cols[order], self._rows[order])
        return self._col_sorted

    def predecessors(self, index: int) -> np.ndarray:
        """Immediate predecessors of member *index* (ascending indices)."""
        cols, rows = self._by_column()
        start, stop = np.searchsorted(cols, [index, index + 1])
        return rows[start:stop]

    def in_degrees(self) -> np.ndarray:
        """Immediate-predecessor count per member."""
        return np.bincount(self._cols, minlength=self._n)

    def out_degrees(self) -> np.ndarray:
        """Immediate-successor count per member."""
        return np.bincount(self._rows, minlength=self._n)

    # -- containment queries, owned by each representation ---------------
    def is_ancestor(self, smaller: int, larger: int) -> bool:
        """``True`` iff member *smaller* is a proper subset of *larger*."""
        raise NotImplementedError

    def order_row(self, index: int) -> np.ndarray:
        """Indices of every member strictly containing member *index*."""
        raise NotImplementedError

    def containment_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Every comparable pair as ``(smaller, larger)`` index arrays."""
        raise NotImplementedError

    def packed_containment_matrix(self):
        """The strict-containment relation as a packed :class:`BitMatrix`.

        The representation-independent export format of the order core
        (what :mod:`repro.store` persists): ``n**2 / 8`` bytes whatever
        strategy built the core.  The packed core hands out its retained
        matrix; the dense core packs its bool matrix; the reference core
        recomputes containment from the member masks.
        """
        raise NotImplementedError


class DenseOrderCore(OrderCore):
    """Order core over one dense ``n x n`` bool containment matrix.

    The fastest core through ~:data:`DENSE_NODE_LIMIT` nodes: bulk
    AND/compare containment and a float32-BLAS transitive reduction.  The
    Hasse matrix itself is dropped once the edge arrays are extracted, so
    steady-state memory is one ``n**2`` bool matrix, not two.
    """

    strategy = "dense"

    def __init__(self, masks: np.ndarray) -> None:
        self._proper = containment_matrix(masks)
        hasse = hasse_reduction(self._proper)
        rows, cols = np.nonzero(hasse)
        super().__init__(rows, cols, self._proper.shape[0])
        self._proper.setflags(write=False)

    def is_ancestor(self, smaller: int, larger: int) -> bool:
        return bool(self._proper[smaller, larger])

    def order_row(self, index: int) -> np.ndarray:
        return np.nonzero(self._proper[index])[0]

    def containment_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return np.nonzero(self._proper)

    def packed_containment_matrix(self) -> BitMatrix:
        return BitMatrix.from_dense(self._proper)


class PackedOrderCore(OrderCore):
    """Order core over a bit-packed containment matrix.

    Peak memory is two packed matrices of ``n**2 / 8`` bytes (containment
    and, transiently, the reduction) plus bounded unpack/gather blocks —
    a 16x reduction against the two dense matrices, which is what lets
    50k+-node families load at all.  The packed Hasse matrix is dropped
    after the edge arrays are extracted; containment queries pop words
    out of the retained packed order.

    ``workers`` shards the two construction passes across the kernel
    executor of :mod:`repro.core.parallel` (``None`` = serial unless the
    ``REPRO_NUM_WORKERS`` environment variable says otherwise); the
    built core is byte-identical for any worker count.

    ``retain_containment=False`` is the CSR-only edge-store mode for
    query-only consumers (the ``repro serve`` warm start): the packed
    containment words are dropped once the Hasse edges are extracted,
    cutting steady-state memory from ``n**2 / 8`` bytes to the
    ``O(n x words)`` member masks plus the edge arrays.  Containment
    queries then re-probe the masks (the
    :class:`ReferenceOrderCore` pattern: one masked compare per
    ancestry test, one vectorised family pass per full-order row) and
    :meth:`packed_containment_matrix` recomputes the relation on demand.
    """

    strategy = "packed"

    def __init__(
        self,
        masks: np.ndarray,
        workers: int | None = None,
        retain_containment: bool = True,
    ) -> None:
        executor = get_executor(workers)
        self._masks = np.ascontiguousarray(masks, dtype=np.uint64)
        self._masks.setflags(write=False)
        proper = packed_containment(self._masks, executor=executor)
        hasse = packed_hasse_reduction(proper, executor=executor)
        rows, cols = hasse.nonzero()
        super().__init__(rows, cols, proper.n_rows)
        if retain_containment:
            proper.words.setflags(write=False)
            self._proper: BitMatrix | None = proper
        else:
            self._proper = None

    @classmethod
    def from_parts(
        cls,
        proper: BitMatrix,
        hasse_rows: np.ndarray,
        hasse_cols: np.ndarray,
    ) -> "PackedOrderCore":
        """Rehydrate a packed core from already computed parts.

        The load path of :mod:`repro.store`: the stored packed
        containment words and Hasse edge index arrays are adopted as-is,
        skipping both construction passes (the whole point of persisting
        a mined lattice).  *proper* must be square and the edges must
        index into it; deeper consistency (that the edges really are the
        transitive reduction of *proper*) is the saver's contract.
        """
        if proper.n_cols != proper.n_rows:
            raise InvalidParameterError(
                f"containment relation must be square, got {proper.shape}"
            )
        core = cls.__new__(cls)
        core._proper = proper
        core._masks = None
        OrderCore.__init__(core, hasse_rows, hasse_cols, proper.n_rows)
        proper.words.setflags(write=False)
        return core

    @classmethod
    def from_edges(
        cls,
        masks: np.ndarray,
        hasse_rows: np.ndarray,
        hasse_cols: np.ndarray,
    ) -> "PackedOrderCore":
        """Rehydrate a CSR-only core: Hasse edges plus member masks.

        The ``retain_containment=False`` counterpart of
        :meth:`from_parts`, used by the store's memory-lean load mode:
        no packed ``n**2 / 8``-byte relation is adopted (or even read);
        containment queries probe the ``O(n x words)`` masks instead.
        """
        masks = np.ascontiguousarray(masks, dtype=np.uint64)
        core = cls.__new__(cls)
        core._proper = None
        core._masks = masks
        core._masks.setflags(write=False)
        OrderCore.__init__(core, hasse_rows, hasse_cols, masks.shape[0])
        return core

    @property
    def retains_containment(self) -> bool:
        """``True`` when the packed ``n x n`` relation is held in memory."""
        return self._proper is not None

    def _mask_order_row(self, index: int) -> np.ndarray:
        row = self._masks[index]
        subset = np.all((row[None, :] & self._masks) == row[None, :], axis=1)
        subset[index] = False
        return np.nonzero(subset)[0]

    def is_ancestor(self, smaller: int, larger: int) -> bool:
        if self._proper is not None:
            return self._proper.get(smaller, larger)
        if smaller == larger:
            return False
        small = self._masks[smaller]
        return bool(np.all((small & self._masks[larger]) == small))

    def order_row(self, index: int) -> np.ndarray:
        if self._proper is not None:
            return self._proper.row_indices(index)
        return self._mask_order_row(index)

    def containment_indices(self) -> tuple[np.ndarray, np.ndarray]:
        return self.packed_containment_matrix().nonzero()

    def packed_containment_matrix(self) -> BitMatrix:
        if self._proper is not None:
            return self._proper
        return packed_containment(self._masks)


class ReferenceOrderCore(OrderCore):
    """Order core around externally supplied (oracle) Hasse edges.

    Stores only the packed item-masks (``O(n x words)`` — no pair matrix
    of any kind), so containment queries re-probe the masks: a single
    ancestry test is one masked compare over the word row, a full-order
    row one vectorised pass over the family.  Used by the ``reference``
    strategy, whose edges come from the per-pair
    :func:`~repro.core.lattice.hasse_edges_reference` builder.
    """

    strategy = "reference"

    def __init__(
        self, masks: np.ndarray, hasse_rows: np.ndarray, hasse_cols: np.ndarray
    ) -> None:
        self._masks = np.ascontiguousarray(masks, dtype=np.uint64)
        super().__init__(hasse_rows, hasse_cols, self._masks.shape[0])

    def is_ancestor(self, smaller: int, larger: int) -> bool:
        if smaller == larger:
            return False
        small = self._masks[smaller]
        return bool(np.all((small & self._masks[larger]) == small))

    def order_row(self, index: int) -> np.ndarray:
        row = self._masks[index]
        subset = np.all((row[None, :] & self._masks) == row[None, :], axis=1)
        subset[index] = False
        return np.nonzero(subset)[0]

    def containment_indices(self) -> tuple[np.ndarray, np.ndarray]:
        rows_parts: list[np.ndarray] = []
        cols_parts: list[np.ndarray] = []
        for index in range(self._n):
            cols = self.order_row(index)
            if cols.size:
                rows_parts.append(np.full(cols.size, index, dtype=np.int64))
                cols_parts.append(cols.astype(np.int64, copy=False))
        if not rows_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(rows_parts), np.concatenate(cols_parts)

    def packed_containment_matrix(self) -> BitMatrix:
        return packed_containment(self._masks)


def build_order_core(
    masks: np.ndarray,
    strategy: str,
    reference_edges: tuple[np.ndarray, np.ndarray] | None = None,
    workers: int | None = None,
    retain_containment: bool = True,
) -> OrderCore:
    """Construct the order core for an already *resolved* strategy.

    ``reference_edges`` supplies the oracle Hasse edge index arrays and is
    required (and only meaningful) for the ``reference`` strategy.
    ``workers`` shards the packed construction passes (the dense core's
    BLAS product and the reference oracle stay serial); the edges and
    matrices built are byte-identical for any worker count.
    ``retain_containment`` only affects the packed core (see
    :class:`PackedOrderCore`).
    """
    if strategy == "dense":
        return DenseOrderCore(masks)
    if strategy == "packed":
        return PackedOrderCore(
            masks, workers=workers, retain_containment=retain_containment
        )
    if strategy == "reference":
        if reference_edges is None:
            raise InvalidParameterError(
                "the reference strategy needs precomputed oracle edges"
            )
        return ReferenceOrderCore(masks, *reference_edges)
    raise InvalidParameterError(
        f"unresolved lattice strategy {strategy!r}; call resolve_strategy first"
    )
