"""Vectorised containment order over a family of itemsets.

This module is the numeric core of the iceberg-lattice construction: given
a family of itemsets it packs each member into a row of uint64 item-masks
(the same little-endian ``np.packbits`` layout as the integer bitsets of
:mod:`repro.engine.bitops`), computes the full strict-containment relation
with bulk AND/compare passes over the packed matrix, and derives the Hasse
diagram by boolean-matrix transitive reduction.

The containment relation of a family of *distinct* sets is a strict
partial order and hence already transitively closed, so the Hasse edges
are exactly ``proper & ~(proper @ proper)`` — a pair is immediate iff no
third member lies strictly in between — which one float32 matrix product
evaluates for the whole family at once.

All functions are pure and operate on plain numpy arrays; the
:class:`~repro.core.lattice.IcebergLattice` wrapper attaches itemset
semantics (members, supports, accessors) on top.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .itemset import Itemset, _sort_key

__all__ = [
    "pack_itemset_masks",
    "containment_matrix",
    "hasse_reduction",
    "containment_and_hasse",
]

#: Upper bound (in bools) on the temporary blocks used by the chunked
#: containment / reduction passes, so huge families do not allocate
#: several full n x n intermediates at once.
_BLOCK_CELLS = 1 << 24


def pack_itemset_masks(
    itemsets: Sequence[Itemset],
) -> tuple[np.ndarray, list[object]]:
    """Pack *itemsets* into a ``(n, n_words)`` uint64 item-mask matrix.

    Returns the packed matrix and the item universe in the canonical order
    used for bit positions: bit ``i`` of a row (little-endian across the
    uint64 words) is set iff the member contains ``universe[i]``.
    """
    universe_set = {item for member in itemsets for item in member}
    try:
        universe = sorted(universe_set)
    except TypeError:
        universe = sorted(universe_set, key=_sort_key)
    index = {item: position for position, item in enumerate(universe)}

    n = len(itemsets)
    presence = np.zeros((n, len(universe)), dtype=bool)
    for row, member in enumerate(itemsets):
        for item in member:
            presence[row, index[item]] = True
    packed = np.packbits(presence, axis=1, bitorder="little")
    pad = (-packed.shape[1]) % 8
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed).view(np.uint64), universe


def containment_matrix(masks: np.ndarray) -> np.ndarray:
    """Strict-containment matrix of a packed family of distinct itemsets.

    ``result[i, j]`` is ``True`` iff row ``i`` is a proper subset of row
    ``j``.  Rows must be pairwise distinct (guaranteed for the members of
    an :class:`~repro.core.families.ItemsetFamily`), so subset-and-equal
    only happens on the diagonal, which is cleared.
    """
    n, n_words = masks.shape
    proper = np.empty((n, n), dtype=bool)
    block = max(1, _BLOCK_CELLS // max(1, n))
    for start in range(0, n, block):
        rows = masks[start : start + block]
        subset = np.ones((rows.shape[0], n), dtype=bool)
        for word in range(n_words):
            column = rows[:, word][:, None]
            subset &= (column & masks[None, :, word]) == column
        proper[start : start + block] = subset
    np.fill_diagonal(proper, False)
    return proper


def hasse_reduction(proper: np.ndarray) -> np.ndarray:
    """Transitive reduction of a strict partial order given as a bool matrix.

    Because a containment relation is transitive, a pair ``(i, j)`` has an
    intermediate element iff ``(proper @ proper)[i, j]`` is non-zero; the
    Hasse diagram keeps exactly the pairs without one.  The products run
    in float32 so they are dispatched to BLAS, but the cast happens block
    by block on both operands — only ``O(block * n)`` float temporaries
    ever exist, never a dense float copy of the whole matrix.
    """
    n = proper.shape[0]
    if n == 0:
        return proper.copy()
    hasse = np.empty_like(proper)
    block = max(1, _BLOCK_CELLS // max(1, n))
    for start in range(0, n, block):
        rows = proper[start : start + block]
        two_step = np.zeros(rows.shape, dtype=np.float32)
        for mid in range(0, n, block):
            two_step += rows[:, mid : mid + block].astype(np.float32) @ proper[
                mid : mid + block
            ].astype(np.float32)
        hasse[start : start + block] = rows & ~(two_step > 0.5)
    return hasse


def containment_and_hasse(
    itemsets: Sequence[Itemset],
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper: pack, order and reduce a family in one call."""
    masks, _ = pack_itemset_masks(itemsets)
    proper = containment_matrix(masks)
    return proper, hasse_reduction(proper)
